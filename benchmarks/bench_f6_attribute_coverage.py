"""Bench F6: regenerate the attribute-coverage ablation."""


def test_f6_attribute_coverage(regenerate):
    output = regenerate("F6", days=20.0)
    coverages = sorted(k for k in output.data)
    identified = [output.data[c]["identified"] for c in coverages]
    true = output.data[coverages[-1]]["true"]
    # Identified end users grow monotonically with coverage, from zero to all.
    assert identified[0] == 0
    assert identified == sorted(identified)
    assert identified[-1] == true
    # Remainder community accounts vanish at full coverage.
    assert output.data[coverages[-1]]["remainder_accounts"] == 0
