"""Node failures interacting with maintenance drains.

A job killed by a node failure while the scheduler is draining toward a
PM window exercises both bookkeeping paths at once: the failure frees the
job's nodes, and the reservation must not free (or hold) them a second
time.  These tests pin the invariants: node accounting never goes out of
bounds, every terminal job yields exactly one usage record (the central DB
raises on duplicate job ids, so a double-emit cannot hide), and ledger
charges equal the sum of the records.
"""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import Job, JobState
from repro.infra.units import DAY, HOUR
from repro.sim import Simulator

TERMINAL = (
    JobState.COMPLETED,
    JobState.FAILED,
    JobState.KILLED_WALLTIME,
    JobState.CANCELLED,
)


def make_site(nodes=8, cores_per_node=4):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"u"})
    central = I.CentralAccountingDB()
    cluster = I.Cluster("mach", nodes=nodes, cores_per_node=cores_per_node)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    return sim, site, central, ledger


def job(cores=4, walltime=10 * HOUR, runtime=None):
    return Job(user="u", account="acct", cores=cores, walltime=walltime,
               true_runtime=walltime if runtime is None else runtime)


def run_flaky_maintained_site(seed):
    """A flaky machine with PM windows and a steady queue; returns the world."""
    sim, site, central, ledger = make_site()
    I.MaintenanceSchedule(
        sim, site.scheduler, period=2 * DAY, duration=6 * HOUR,
        first=12 * HOUR, lead=8 * HOUR,
    )
    injector = I.NodeFailureInjector(
        sim, site.scheduler, np.random.default_rng(seed),
        node_mtbf=30 * HOUR,  # flaky enough that kills land inside drains
        tick=0.25 * HOUR,
    )
    jobs = [job(cores=4, walltime=9 * HOUR) for _ in range(24)]

    def trickle(sim):
        for j in jobs:
            site.submit(j)
            yield sim.timeout(1.5 * HOUR)

    sim.process(trickle(sim))

    violations = []

    def monitor(sim):
        while True:
            free = site.scheduler.free_nodes
            if not 0 <= free <= site.cluster.nodes:
                violations.append((sim.now, free))
            yield sim.timeout(0.1 * HOUR)

    sim.process(monitor(sim))
    sim.run(until=8 * DAY)
    site.feed.drain()
    return injector, jobs, central, ledger, violations


def test_failures_during_drain_never_double_free():
    injector, jobs, central, ledger, violations = run_flaky_maintained_site(7)
    assert injector.failures_injected > 0, "scenario must actually inject"
    assert violations == [], f"free-node accounting out of bounds: {violations}"
    # Every job reached a terminal state: failures freed their nodes even
    # when they landed inside a drain, so nothing wedged the machine.
    assert all(j.state in TERMINAL for j in jobs)


def test_exactly_one_record_per_terminal_job():
    injector, jobs, central, ledger, _ = run_flaky_maintained_site(11)
    failed = [j for j in jobs if j.state is JobState.FAILED]
    assert failed, "scenario must kill at least one job"
    # ingest() raises on duplicate job ids, so reaching this point already
    # proves no job was emitted twice; check nothing was dropped either.
    records = central.all_records()
    assert len(records) == len(jobs)
    assert {r.job_id for r in records} == {j.job_id for j in jobs}


def test_charges_match_records_exactly():
    injector, jobs, central, ledger, _ = run_flaky_maintained_site(23)
    records = central.all_records()
    # A double-charged kill would show up as ledger > sum(records).
    assert ledger.total_charged() == pytest.approx(
        sum(r.charged_nu for r in records)
    )
    for record in records:
        if record.final_state is JobState.FAILED:
            assert record.charged_nu >= 0.0


def test_multiple_kills_in_one_tick():
    """Poisson strikes can fell several distinct jobs in a single tick."""
    sim, site, central, ledger = make_site(nodes=8)
    injector = I.NodeFailureInjector(
        sim, site.scheduler, np.random.default_rng(5),
        node_mtbf=2 * HOUR,  # expected strikes per tick ~ 4
        tick=1 * HOUR,
    )
    jobs = [job(cores=4, walltime=20 * HOUR) for _ in range(8)]
    for j in jobs:
        site.submit(j)
    sim.run(until=1.5 * HOUR)  # exactly one injector tick has elapsed
    failed = [j for j in jobs if j.state is JobState.FAILED]
    assert len(failed) >= 2, "one tick should strike more than one job"
    assert len(failed) == injector.failures_injected
    assert len({j.job_id for j in failed}) == len(failed)  # distinct victims


def test_injection_is_seed_stable():
    first = run_flaky_maintained_site(7)
    second = run_flaky_maintained_site(7)
    assert first[0].failures_injected == second[0].failures_injected
    assert [j.state for j in first[1]] == [j.state for j in second[1]]
    assert [j.end_time for j in first[1]] == [j.end_time for j in second[1]]


def test_no_strikes_on_nodes_inside_active_maintenance_window():
    """An active full-machine drain shields running work from node strikes.

    The drained slice is powered down for service, so its nodes cannot
    strike; with the whole machine behind an (emergency) maintenance
    reservation, a running job sees zero failures even at an absurd MTBF —
    and strikes resume the moment the window lifts.
    """
    sim, site, central, ledger = make_site(nodes=8)
    injector = I.NodeFailureInjector(
        sim, site.scheduler, np.random.default_rng(2),
        node_mtbf=0.1 * HOUR,  # ~10 expected strikes per node-hour
        tick=0.25 * HOUR,
    )
    victim = job(cores=8, walltime=30 * HOUR)  # 2 of 8 nodes busy
    site.submit(victim)
    sim.run(until=0.1 * HOUR)  # job is running before the window opens
    from repro.infra.scheduler.base import Reservation
    site.scheduler.add_reservation(
        Reservation(start=sim.now, end=10 * HOUR, nodes=8, access=None,
                    label="emergency-pm")
    )
    sim.run(until=9.9 * HOUR)  # stop just shy of the window-end tick
    assert victim.state is JobState.RUNNING
    assert injector.failures_injected == 0, (
        "nodes inside an active maintenance window must not strike"
    )
    sim.run(until=14 * HOUR)  # window over: exposure (and strikes) return
    assert injector.failures_injected > 0
    assert victim.state is JobState.FAILED
