"""DAG workflows over the federation.

A :class:`TaskGraph` is a directed acyclic graph of job specifications with
optional data products flowing along edges.  The :class:`WorkflowEngine`
executes one graph as a simulation process: a task becomes eligible when all
its predecessors finish, its inputs are staged across the WAN if the producer
ran at a different site, and every job is stamped with a shared
``workflow_id`` attribute — the instrumentation that lets the measurement
system see workflows as workflows rather than as unrelated jobs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.infra.job import AttributeKeys, Job, JobState
from repro.infra.metascheduler import Metascheduler, NoEligibleSiteError
from repro.infra.network import Network
from repro.sim import AllOf, Simulator

__all__ = ["TaskGraph", "TaskSpec", "WorkflowEngine", "WorkflowResult"]

_workflow_ids = itertools.count(1)


@dataclass
class TaskSpec:
    """One node of a workflow: the job to run plus its output size."""

    name: str
    cores: int
    walltime: float
    true_runtime: float
    output_bytes: float = 0.0
    will_fail: bool = False

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("task needs >= 1 core")
        if self.output_bytes < 0:
            raise ValueError("output_bytes must be >= 0")


class TaskGraph:
    """A DAG of :class:`TaskSpec` nodes.

    Edges mean "consumer needs producer's output".  Acyclicity is enforced on
    every edge insertion.
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._graph = nx.DiGraph()

    def add_task(self, spec: TaskSpec) -> TaskSpec:
        if spec.name in self._graph:
            raise ValueError(f"duplicate task {spec.name!r}")
        self._graph.add_node(spec.name, spec=spec)
        return spec

    def add_dependency(self, producer: str, consumer: str) -> None:
        for task in (producer, consumer):
            if task not in self._graph:
                raise KeyError(f"unknown task {task!r}")
        self._graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise ValueError(
                f"dependency {producer!r} -> {consumer!r} would create a cycle"
            )

    # -- views -------------------------------------------------------------
    def spec(self, name: str) -> TaskSpec:
        return self._graph.nodes[name]["spec"]

    def tasks(self) -> list[str]:
        return list(self._graph.nodes)

    def predecessors(self, name: str) -> list[str]:
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._graph.successors(name))

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self._graph))

    def critical_path_runtime(self) -> float:
        """Lower bound on makespan: longest runtime chain (no queue waits)."""
        longest: dict[str, float] = {}
        for task in self.topological_order():
            runtime = self.spec(task).true_runtime
            preds = self.predecessors(task)
            longest[task] = runtime + max(
                (longest[p] for p in preds), default=0.0
            )
        return max(longest.values(), default=0.0)

    def __len__(self) -> int:
        return len(self._graph)

    @classmethod
    def parameter_sweep(
        cls,
        name: str,
        width: int,
        cores: int,
        walltime: float,
        true_runtime: float,
        with_merge: bool = True,
        output_bytes: float = 0.0,
    ) -> "TaskGraph":
        """A canonical sweep: ``width`` independent tasks, optional merge."""
        if width < 1:
            raise ValueError("width must be >= 1")
        graph = cls(name=name)
        for i in range(width):
            graph.add_task(
                TaskSpec(
                    name=f"{name}-sweep-{i}",
                    cores=cores,
                    walltime=walltime,
                    true_runtime=true_runtime,
                    output_bytes=output_bytes,
                )
            )
        if with_merge:
            graph.add_task(
                TaskSpec(
                    name=f"{name}-merge",
                    cores=1,
                    walltime=walltime,
                    true_runtime=true_runtime / 4 if true_runtime > 0 else 0.0,
                )
            )
            for i in range(width):
                graph.add_dependency(f"{name}-sweep-{i}", f"{name}-merge")
        return graph


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    workflow_id: int
    started_at: float
    finished_at: float
    jobs: list[Job] = field(default_factory=list)
    transfers: int = 0

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return all(job.state is JobState.COMPLETED for job in self.jobs)


class WorkflowEngine:
    """Executes task graphs for a user against the federation."""

    def __init__(
        self,
        sim: Simulator,
        metascheduler: Metascheduler,
        network: Optional[Network] = None,
    ) -> None:
        self.sim = sim
        self.metascheduler = metascheduler
        self.network = network
        self.results: list[WorkflowResult] = []

    def run(
        self,
        graph: TaskGraph,
        user: str,
        account: str,
        true_modality: Optional[str] = None,
        extra_attributes: Optional[dict] = None,
    ):
        """Start executing ``graph``; returns the engine Process.

        The process's value is a :class:`WorkflowResult`.
        """
        return self.sim.process(
            self._execute(graph, user, account, true_modality, extra_attributes),
            name=f"workflow-{graph.name}",
        )

    def _execute(self, graph, user, account, true_modality, extra_attributes):
        workflow_id = next(_workflow_ids)
        started_at = self.sim.now
        finished: dict[str, Job] = {}
        jobs: list[Job] = []
        transfers = 0
        remaining = set(graph.tasks())
        # Tasks currently running: name -> (job, completion event)
        in_flight: dict[str, tuple] = {}

        def launch(task_name: str):
            spec = graph.spec(task_name)
            attributes = {AttributeKeys.WORKFLOW_ID: f"wf-{workflow_id}"}
            if extra_attributes:
                attributes.update(extra_attributes)
            job = Job(
                user=user,
                account=account,
                cores=spec.cores,
                walltime=spec.walltime,
                true_runtime=spec.true_runtime,
                will_fail=spec.will_fail,
                attributes=attributes,
                true_modality=true_modality,
            )
            try:
                provider = self.metascheduler.select(job)
            except NoEligibleSiteError:
                # Whole federation believed down: aim at the first provider
                # (deterministic) and let _run_task wait out the outage.
                provider = self.metascheduler.providers[0]
            done = self.sim.event()
            self.sim.process(
                self._run_task(provider, job, graph, task_name, finished, done),
                name=f"task-{task_name}",
            )
            return job, done

        while remaining or in_flight:
            # Launch every task whose predecessors have all finished.
            ready = [
                t
                for t in sorted(remaining)
                if all(p in finished for p in graph.predecessors(t))
            ]
            for task_name in ready:
                remaining.discard(task_name)
                job, done = launch(task_name)
                jobs.append(job)
                in_flight[task_name] = (job, done)
            if not in_flight:
                break  # defensive: nothing runnable and nothing running
            # Wait until every in-flight task is done, then loop to launch
            # newly-eligible tasks. (AnyOf would be lower latency for wide
            # graphs with uneven levels; AllOf keeps replay deterministic and
            # matches DAGMan-style level scheduling closely enough.)
            events = [done for _job, done in in_flight.values()]
            yield AllOf(self.sim, events)
            for task_name, (job, _done) in list(in_flight.items()):
                finished[task_name] = job
                del in_flight[task_name]
                transfers += getattr(job, "_staging_transfers", 0)

        result = WorkflowResult(
            workflow_id=workflow_id,
            started_at=started_at,
            finished_at=self.sim.now,
            jobs=jobs,
            transfers=transfers,
        )
        self.results.append(result)
        return result

    def _run_task(self, provider, job, graph, task_name, finished, done):
        # Stage inputs from producers that ran at other sites.
        staging = 0
        if self.network is not None:
            for producer_name in graph.predecessors(task_name):
                producer_job = finished[producer_name]
                producer_spec = graph.spec(producer_name)
                if (
                    producer_spec.output_bytes > 0
                    and producer_job.resource is not None
                ):
                    transfer_done = self.network.transfer(
                        producer_job.resource,
                        provider.name,
                        producer_spec.output_bytes,
                        tag="ensemble",
                    )
                    yield transfer_done
                    staging += 1
        job._staging_transfers = staging  # type: ignore[attr-defined]
        # The provider was chosen before staging; it may have dropped while
        # the inputs moved.  submit_to fails over to another site, and if the
        # whole federation is believed down we wait out the outage here.
        try:
            provider = self.metascheduler.submit_to(provider, job)
        except NoEligibleSiteError:
            yield provider.wait_until_up()
            provider = self.metascheduler.submit_to(provider, job)
        # Capture the wait event immediately: if the site later dies and the
        # metascheduler requeues the job, this event is bridged to wherever
        # the job lands, so the workflow never dangles.
        yield provider.scheduler.wait_for(job)
        done.succeed(job)
