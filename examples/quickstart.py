#!/usr/bin/env python
"""Quickstart: simulate a small TeraGrid, measure its usage modalities.

Runs a 3-site federation with a ~60-user community for two simulated weeks,
then answers the paper's question — *what are our users trying to do?* —
from the accounting stream alone, and checks the answer against the
simulation's ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AttributeClassifier,
    HeuristicClassifier,
    compute_metrics,
    report,
    score_classification,
)
from repro.core.modalities import MODALITY_ORDER
from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, run_scenario


def main() -> None:
    print("Simulating 14 days on a 3-site federation...")
    result = run_scenario(
        ScenarioConfig(
            scale="small",
            days=14,
            seed=42,
            population=PopulationSpec(scale=0.03),
        )
    )
    records = result.records
    print(
        f"  {len(result.population)} users, {len(records)} usage records, "
        f"{result.central.total_nu():,.0f} NUs charged\n"
    )

    print(report.taxonomy_table())
    print()

    # Measure modalities from the accounting stream (with instrumentation).
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)
    truth = result.active_truth_by_identity()
    true_counts = {m: 0 for m in MODALITY_ORDER}
    for modality in truth.values():
        true_counts[modality] += 1
    print(
        report.modality_table(
            {
                "true users": true_counts,
                "measured users": metrics.users,
                "jobs": metrics.jobs,
                "NUs": {m: f"{metrics.nu[m]:,.0f}" for m in MODALITY_ORDER},
            },
            title="Usage modalities, measured from accounting records",
        )
    )

    summary = score_classification(classification, result.truth_by_job())
    print(f"\nPer-job classification accuracy vs ground truth: "
          f"{summary.accuracy:.3f}")

    # The same measurement without the paper's proposed instrumentation:
    bare = HeuristicClassifier(
        known_community_accounts=result.community_accounts
    ).classify(records)
    gateway_measured = bare.users_by_modality()
    print(
        "\nWithout job attributes, the "
        f"{true_counts[MODALITY_ORDER[2]]} gateway end users collapse to "
        f"{gateway_measured[MODALITY_ORDER[2]]} community account(s) — "
        "the measurement gap the paper proposes to close."
    )


if __name__ == "__main__":
    main()
