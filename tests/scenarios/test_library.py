"""The shipped scenario library: every entry compiles and survives the oracle."""

import pytest

from repro.scenarios import (
    SCENARIO_LIBRARY,
    check_scenario,
    teragrid_baseline,
)
from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, run_scenario

EXPECTED_NAMES = {
    "osg-opportunistic",
    "grid5000-reconfig",
    "deadline-gateway-campaign",
    "teragrid-baseline",
}


def test_registry_names_and_shape():
    assert set(SCENARIO_LIBRARY) == EXPECTED_NAMES
    for name, factory in SCENARIO_LIBRARY.items():
        program = factory()
        assert program.name == name
        assert program.description
        # Factories hand out equal (and independent) programs each call.
        assert factory() == program


def test_every_entry_compiles_deterministically():
    for factory in SCENARIO_LIBRARY.values():
        program = factory()
        assert program.compile() == program.compile()


def test_outage_regimes_always_carry_recovery():
    # The compile-time guarantee, checked across the whole library.
    for factory in SCENARIO_LIBRARY.values():
        config = factory().compile()
        if config.outages is not None:
            assert config.recovery is not None


def test_teragrid_baseline_matches_hand_built_config():
    expected = ScenarioConfig(
        scale="small",
        days=30.0,
        seed=1,
        population=PopulationSpec(scale=0.05, n_gateways=3),
        gateway_tagging_coverage=1.0,
    )
    assert teragrid_baseline().compile() == expected


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_library_scenarios_pass_every_invariant(name):
    # Full horizons belong to `repro scenario run`; a few days exercise the
    # same machinery (outages included — the shortest MTBF here is 2 days).
    program = SCENARIO_LIBRARY[name]()
    result = run_scenario(program.compile(days=min(program.days, 4.0)))
    assert result.records, f"{name} produced no usage records"
    report = check_scenario(result)
    assert report.ok, "\n".join(
        [report.summary()] + [str(v) for v in report.violations]
    )
