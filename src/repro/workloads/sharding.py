"""Population-sharded campaigns: cell decomposition, per-cell artifacts, merge.

The scale tier decomposes one campaign's user population into *cells* of
canonical size (:data:`CELL_SCALE`, the population scale of the canonical
T-table campaign).  Each cell simulates the **full shared world** — the
complete population is built from the campaign seed's ``"population"``
stream, so sites, gateways, community accounts and per-user named streams
are identical in every cell — but only the users whose ordinal in
``population.users`` satisfies ``ordinal % cells == cell`` run behavior
processes.  Cells are therefore disjoint in *activity* while agreeing on
*structure*, and their union covers every user exactly once.

Three determinism properties carry the tier:

* **Cell independence** — a cell's output is a pure function of
  ``(campaign key, cell, cells)``.  Module-global id counters (job ids,
  ``wf-N``/``ens-N``/``coalloc-N`` attribute ids, ...) would otherwise leak
  process history into artifacts, so every cell simulation runs under
  :func:`scoped_id_counters`, which swaps all seven counters for fresh
  1-based ones and restores the originals on exit.
* **Shard-count invariance** — ``shards=N`` only *groups* cells onto
  stage-1 tasks (round-robin, like ``--jobs``); the cell set and the merge
  are functions of the campaign key alone, so any ``N`` produces the same
  merged bytes.
* **Canonical-scale identity** — a campaign at the canonical population
  scale has exactly one cell, and the single-cell path runs the plain
  coupled :func:`run_scenario` (no shard filter, no buffered streams), so
  sharded execution of the standard T-table sweep is byte-identical to the
  unsharded baseline, not merely statistically equivalent.

The merge renumbers ids with a per-cell stride/prefix (cells were minted
independently from 1) and emits the combined usage-record stream in the
accounting order ``(end_time, job_id)`` — with strided ids that is exactly
"sim time, then shard ordinal, then within-cell order".
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.infra.accounting import UsageRecord
from repro.infra.job import AttributeKeys
from repro.sim.rng import RandomStreams
from repro.users.population import PopulationSpec
from repro.workloads.synthetic import (
    CAMPAIGN_POPULATION_SCALE,
    CampaignArtifact,
    CampaignKey,
    ScenarioConfig,
    run_scenario,
)

__all__ = [
    "CELL_SCALE",
    "CELL_ID_STRIDE",
    "CellKey",
    "cell_count",
    "merge_cell_artifacts",
    "resolve_sharded_campaign",
    "run_scenario_sharded",
    "scoped_id_counters",
    "set_shard_mode",
    "shard_mode",
    "sharded",
    "simulate_cell",
    "simulate_cell_config",
]

#: Population scale of one cell — the canonical campaign's scale, so the
#: canonical T-table campaigns decompose into exactly one cell.
CELL_SCALE = CAMPAIGN_POPULATION_SCALE

#: Per-cell job-id namespace width.  Cell ``c``'s local job ``j`` becomes
#: ``c * CELL_ID_STRIDE + j`` in the merged artifact; a cell minting this
#: many jobs would alias into its neighbour, so the merge asserts against it.
CELL_ID_STRIDE = 10**7

#: Users in one canonical cell (all modalities, scale = CELL_SCALE).
_CELL_USERS = sum(PopulationSpec(scale=CELL_SCALE).user_counts().values())

#: Record-attribute keys whose values are minted from per-cell id counters
#: and therefore need cell-aware renumbering in the merge.
_COUNTER_ATTRIBUTES = (
    AttributeKeys.WORKFLOW_ID,
    AttributeKeys.ENSEMBLE_ID,
    AttributeKeys.COALLOCATION_ID,
)


def cell_count(population: PopulationSpec | float) -> int:
    """Number of population cells for ``population`` (a spec or a scale).

    A pure function of the campaign key — never of ``shards``/``--jobs`` —
    so the decomposition is identical no matter how execution is arranged.
    """
    if not isinstance(population, PopulationSpec):
        population = PopulationSpec(scale=float(population))
    total_users = sum(population.user_counts().values())
    return max(1, round(total_users / _CELL_USERS))


@dataclass(frozen=True)
class CellKey:
    """Identity of one population cell of a sharded campaign.

    ``seed`` is the :meth:`RandomStreams.spawn`-derived per-shard seed
    (stable across workers and execution order); ``campaign_seed`` keeps the
    parent campaign recoverable and in the artifact-store knob hash.  The
    field set mirrors :class:`CampaignKey` so the generic
    :class:`~repro.runner.artifacts.ArtifactStore` path scheme
    (``asdict`` + ``seed``) applies unchanged.
    """

    days: float
    seed: int
    campaign_seed: int
    scale: str
    population_scale: float
    gateway_tagging_coverage: float
    gateway_adoption_ramp_days: float
    cell: int
    cells: int

    @classmethod
    def for_cell(cls, key: CampaignKey, cell: int, cells: int) -> "CellKey":
        if not 0 <= cell < cells:
            raise ValueError(f"cell must be in [0, {cells}), got {cell}")
        derived = RandomStreams(key.seed).spawn(f"shard:{cell}/{cells}").seed
        return cls(
            days=key.days,
            seed=derived,
            campaign_seed=key.seed,
            scale=key.scale,
            population_scale=key.population_scale,
            gateway_tagging_coverage=key.gateway_tagging_coverage,
            gateway_adoption_ramp_days=key.gateway_adoption_ramp_days,
            cell=cell,
            cells=cells,
        )

    def asdict(self) -> dict:
        return {
            "days": self.days,
            "seed": self.seed,
            "campaign_seed": self.campaign_seed,
            "scale": self.scale,
            "population_scale": self.population_scale,
            "gateway_tagging_coverage": self.gateway_tagging_coverage,
            "gateway_adoption_ramp_days": self.gateway_adoption_ramp_days,
            "cell": self.cell,
            "cells": self.cells,
        }

    @property
    def campaign_key(self) -> CampaignKey:
        return CampaignKey.make(
            days=self.days,
            seed=self.campaign_seed,
            scale=self.scale,
            population_scale=self.population_scale,
            gateway_tagging_coverage=self.gateway_tagging_coverage,
            gateway_adoption_ramp_days=self.gateway_adoption_ramp_days,
        )

    def config(self) -> ScenarioConfig:
        base = self.campaign_key.config()
        if self.cells == 1:
            return base
        return replace(base, shard=(self.cell, self.cells))


# ---------------------------------------------------------------------------
# Cell isolation
# ---------------------------------------------------------------------------

#: ``(module path, attribute)`` of every module-global id counter.
_ID_COUNTERS = (
    ("repro.infra.job", "_job_ids"),
    ("repro.infra.workflow", "_workflow_ids"),
    ("repro.infra.coalloc", "_coalloc_ids"),
    ("repro.infra.network", "_transfer_ids"),
    ("repro.infra.pilot", "_task_ids"),
    ("repro.infra.scheduler.base", "_reservation_ids"),
    ("repro.users.behavior", "_ensemble_ids"),
)


@contextmanager
def scoped_id_counters() -> Iterator[None]:
    """Run a block with fresh 1-based id counters, restoring the originals.

    Absolute job/workflow/ensemble/... ids are minted from module-global
    ``itertools.count(1)`` counters and therefore depend on everything the
    process simulated before.  Reports are id-invariant, but cell
    *artifacts* must be byte-deterministic so that sharded campaigns don't
    depend on task layout; scoping the counters makes each cell's ids a
    pure function of its key.
    """
    import importlib

    saved = []
    for module_path, attribute in _ID_COUNTERS:
        module = importlib.import_module(module_path)
        saved.append((module, attribute, getattr(module, attribute)))
        setattr(module, attribute, itertools.count(1))
    try:
        yield
    finally:
        for module, attribute, counter in saved:
            setattr(module, attribute, counter)


# ---------------------------------------------------------------------------
# Cell simulation
# ---------------------------------------------------------------------------


def simulate_cell_config(
    config: ScenarioConfig, cell: int, cells: int, key: object = None
) -> CampaignArtifact:
    """Simulate one population cell of ``config`` into an artifact.

    With a single cell this is the plain coupled :func:`run_scenario` —
    identical physics, identical bytes (modulo the scoped ids) to the
    legacy unsharded run.  With more, the cell builds the full shared world
    and activates only its own users, drawing through the vectorized
    pre-sampling facade (see :class:`repro.sim.rng.BufferedStreams`).
    """
    if config.shard is not None:
        raise ValueError(f"config already carries a shard assignment: {config.shard}")
    if cells > 1:
        config = replace(config, shard=(cell, cells))
    with scoped_id_counters():
        result = run_scenario(config)
        return CampaignArtifact.from_result(result, key=key)


def simulate_cell(key: CampaignKey, cell: int, cells: int) -> CampaignArtifact:
    """Simulate cell ``cell`` of campaign ``key`` under its :class:`CellKey`."""
    cell_key = CellKey.for_cell(key, cell, cells)
    return simulate_cell_config(key.config(), cell, cells, key=cell_key)


# ---------------------------------------------------------------------------
# Deterministic merge
# ---------------------------------------------------------------------------


def _renumber_attributes(attributes: dict, cell: int) -> dict:
    out = dict(attributes)
    for attr in _COUNTER_ATTRIBUTES:
        value = out.get(attr)
        if value is None:
            continue
        if isinstance(value, int):
            out[attr] = cell * CELL_ID_STRIDE + value
        else:
            out[attr] = f"c{cell}:{value}"
    return out


def _renumber_record(record: UsageRecord, cell: int) -> UsageRecord:
    if record.job_id >= CELL_ID_STRIDE:
        raise ValueError(
            f"cell {cell} minted job id {record.job_id} >= stride {CELL_ID_STRIDE}"
        )
    return replace(
        record,
        job_id=cell * CELL_ID_STRIDE + record.job_id,
        attributes=_renumber_attributes(record.attributes, cell),
    )


def _merge_snapshot_values(values: list):
    """Combine one metric's per-cell snapshot values (see MetricsRegistry)."""
    first = values[0]
    if isinstance(first, dict):
        if "high_water" in first:  # gauge: last value per cell, shared peak
            return {
                "value": sum(v["value"] for v in values),
                "high_water": max(v["high_water"] for v in values),
            }
        if "count" in first:  # histogram
            observed = [v for v in values if v["count"]]
            return {
                "count": sum(v["count"] for v in values),
                "total": sum(v["total"] for v in values),
                "min": min(v["min"] for v in observed) if observed else first["min"],
                "max": max(v["max"] for v in observed) if observed else first["max"],
            }
        return first
    return sum(values)  # counter


def merge_cell_artifacts(
    key: Optional[CampaignKey], artifacts: list[CampaignArtifact]
) -> CampaignArtifact:
    """Deterministically combine per-cell artifacts into the campaign artifact.

    Usage records are renumbered into per-cell id namespaces
    (``cell * CELL_ID_STRIDE + local_id``, likewise the ``workflow_id`` /
    ``ensemble_id`` / ``coallocation_id`` attribute values) and emitted in
    the central accounting order ``(end_time, job_id)`` — a stable sort by
    sim time, then shard ordinal, then within-cell mint order — exactly the
    order :meth:`CentralAccountingDB.all_records` would produce.  Every
    other field merges by cell-ordered union/sum, so the result is a pure
    function of the cell artifacts.
    """
    if not artifacts:
        raise ValueError("merge_cell_artifacts() needs at least one artifact")
    if len(artifacts) == 1:
        # Single cell: the artifact IS the campaign artifact (the cell sim
        # ran the plain coupled run_scenario); just stamp the campaign key.
        return replace(artifacts[0], key=key)

    records: list[UsageRecord] = []
    job_truth: dict[int, object] = {}
    identity_truth: dict[str, object] = {}
    active: set[str] = set()
    accounts: set[str] = set()
    total_nu = 0.0
    transfers: list = []
    snapshot_values: dict[str, list] = {}
    for cell, artifact in enumerate(artifacts):
        records.extend(_renumber_record(r, cell) for r in artifact.records)
        for job_id, modality in artifact.job_truth.items():
            job_truth[cell * CELL_ID_STRIDE + job_id] = modality
        # Each cell built the identical full population, so the truth maps
        # agree; cell-ordered update keeps the merge total even if a future
        # change makes them partial.
        identity_truth.update(artifact.identity_truth)
        active.update(artifact.active_identities)
        accounts.update(artifact.community_accounts)
        total_nu += artifact.total_nu
        transfers.extend(artifact.transfers)
        for name, value in artifact.metric_snapshot.items():
            snapshot_values.setdefault(name, []).append(value)

    records.sort(key=lambda r: (r.end_time, r.job_id))
    return CampaignArtifact(
        key=key,
        records=records,
        job_truth=job_truth,
        identity_truth=identity_truth,
        active_identities=frozenset(active),
        community_accounts=frozenset(accounts),
        total_nu=total_nu,
        transfers=tuple(transfers),
        metric_snapshot={
            name: _merge_snapshot_values(values)
            for name, values in sorted(snapshot_values.items())
        },
    )


# ---------------------------------------------------------------------------
# Whole-campaign entry points
# ---------------------------------------------------------------------------


def run_scenario_sharded(config: ScenarioConfig, shards: int = 1) -> CampaignArtifact:
    """Run ``config`` cell-by-cell in-process and return the merged artifact.

    ``shards`` only changes the order cells are visited (round-robin groups,
    mirroring the runner's stage-1 task grouping); any value produces the
    same bytes because cells are isolated — the property the shard-merge
    determinism tests pin down.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    cells = cell_count(config.population)
    groups = min(int(shards), cells)
    artifacts: list[Optional[CampaignArtifact]] = [None] * cells
    for group in range(groups):
        for cell in range(group, cells, groups):
            artifacts[cell] = simulate_cell_config(config, cell, cells)
    return merge_cell_artifacts(None, artifacts)  # type: ignore[arg-type]


def resolve_sharded_campaign(key: CampaignKey, store=None) -> CampaignArtifact:
    """Load-or-simulate every cell of ``key`` and return the merged artifact.

    Cell artifacts live in the (checksummed, quarantining) campaign artifact
    ``store`` under their :class:`CellKey`; the merged artifact is
    recomputed on demand — it is cheap relative to simulation and keeping a
    single per-cell source of truth avoids cross-mode store aliasing with
    legacy whole-campaign artifacts.
    """
    from repro.runner import artifacts as artifact_mod

    cells = cell_count(key.population_scale)
    parts: list[CampaignArtifact] = []
    for cell in range(cells):
        cell_key = CellKey.for_cell(key, cell, cells)
        artifact = store.load(cell_key) if store is not None else None
        if artifact is None:
            artifact = simulate_cell(key, cell, cells)
            artifact_mod.note_simulation()
            if store is not None:
                store.save(cell_key, artifact)
        parts.append(artifact)
    return merge_cell_artifacts(key, parts)


# ---------------------------------------------------------------------------
# Process-global shard mode (mirrors repro.runner.artifacts.active_store)
# ---------------------------------------------------------------------------

_shard_mode: Optional[int] = None


def shard_mode() -> Optional[int]:
    """The active shard count, or ``None`` when campaigns run unsharded."""
    return _shard_mode


def set_shard_mode(shards: Optional[int]) -> None:
    """Activate (or clear) sharded campaign resolution for this process.

    Workers call this from the spec they receive; the driver uses the
    :func:`sharded` context manager instead.
    """
    global _shard_mode
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    _shard_mode = shards


@contextmanager
def sharded(shards: Optional[int]) -> Iterator[None]:
    """Scoped :func:`set_shard_mode`, restoring the previous mode on exit."""
    previous = _shard_mode
    set_shard_mode(shards)
    try:
        yield
    finally:
        set_shard_mode(previous)
