"""Tests for the parallel runner: jobs, planning, caching, fault handling."""

import time

import pytest

from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    merge_tasks,
    plan_tasks,
    plan_timeout,
    register_tasks,
    registry,
    task_plans,
)
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    RunJournal,
    resolve_jobs,
)


# -- worker-count resolution ---------------------------------------------------

def test_explicit_jobs_win(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5


def test_env_must_be_integer(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs()


def test_default_is_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert resolve_jobs() == max(1, os.cpu_count() or 1)


def test_jobs_clamped_to_one():
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-4) == 1


# -- task planning -------------------------------------------------------------

def test_declared_plans_exist_for_replicate_experiments():
    for experiment_id in ("R1", "A3", "F6"):
        assert experiment_id in task_plans


def test_r1_plans_one_task_per_seed():
    tasks = plan_tasks("R1", days=3.0, seeds=(4, 9))
    assert [task.seed for task in tasks] == [4, 9]
    assert [task.index for task in tasks] == [0, 1]
    assert all(task.experiment_id == "R1" for task in tasks)


def test_undeclared_experiment_gets_single_task_plan():
    tasks = plan_tasks("T1", days=2.0)
    assert len(tasks) == 1
    assert tasks[0].params["__whole__"] == "T1"


def test_plan_tasks_rejects_unknown_experiment():
    with pytest.raises(KeyError, match="Z9"):
        plan_tasks("Z9")


def test_merge_tasks_default_plan_unwraps_single_partial():
    sentinel = object()
    assert merge_tasks("T1", [sentinel]) is sentinel


def test_tasks_are_picklable():
    import pickle

    task = ExperimentTask("R1", 0, {"days": 1.0, "seed": 3}, 3)
    assert pickle.loads(pickle.dumps(task)) == task


# -- execution + caching -------------------------------------------------------

def test_cached_rerun_recomputes_nothing(tmp_path):
    knobs = dict(days=1.0, seeds=(1, 2))
    first = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    out_first = first.run("R1", **knobs)
    assert first.cache_stats.misses == 2 and first.cache_stats.writes == 2

    second = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    out_second = second.run("R1", **knobs)
    assert second.cache_stats.hits == 2 and second.cache_stats.misses == 0
    assert out_second.text == out_first.text
    assert out_second.data == out_first.data


def test_changed_knobs_miss_the_cache(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    runner.run("R1", days=1.0, seeds=(1,))
    runner.run("R1", days=1.0, seeds=(2,))
    assert runner.cache_stats.hits == 0
    assert runner.cache_stats.misses == 2


def test_partial_cache_overlap_only_computes_new_seeds(tmp_path):
    warm = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    warm.run("R1", days=1.0, seeds=(1, 2))
    extended = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    extended.run("R1", days=1.0, seeds=(1, 2, 3))
    assert extended.cache_stats.hits == 2
    assert extended.cache_stats.misses == 1


def test_no_cache_mode_touches_no_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never-created"))
    runner = ParallelRunner(jobs=1, use_cache=False)
    runner.run("R1", days=1.0, seeds=(1,))
    assert runner.cache_stats is None
    assert not (tmp_path / "never-created").exists()


def test_run_many_returns_outputs_in_request_order(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    outputs = runner.run_many(
        [
            ("F6", dict(days=1.0, coverages=(0.0, 1.0))),
            ("R1", dict(days=1.0, seeds=(1,))),
        ]
    )
    assert [output.experiment_id for output in outputs] == ["F6", "R1"]


def test_pool_execution_matches_inline(tmp_path):
    knobs = dict(days=1.0, seeds=(1, 2))
    inline = ParallelRunner(jobs=1, use_cache=False).run("R1", **knobs)
    pooled = ParallelRunner(jobs=2, use_cache=False).run("R1", **knobs)
    assert pooled.text == inline.text
    assert pooled.data == inline.data


# -- timeouts and containment --------------------------------------------------

def _px_run(**knobs):
    raise NotImplementedError("PX only runs via its task plan")


def _px_plan(sleep=0.0, **_knobs):
    return [ExperimentTask("PX", 0, {"seed": 1, "sleep": sleep}, 1)]


def _px_execute(params):
    time.sleep(params["sleep"])
    return params["seed"]


def _px_merge(partials, **_knobs):
    return ExperimentOutput("PX", "probe", text=str(partials[0]))


def _register_px(timeout=None):
    registry["PX"] = _px_run
    register_tasks("PX", _px_plan, _px_execute, _px_merge, timeout=timeout)


@pytest.fixture
def px_cleanup():
    yield
    registry.pop("PX", None)
    task_plans.pop("PX", None)


def test_runner_rejects_nonpositive_timeout():
    with pytest.raises(ValueError, match="task_timeout"):
        ParallelRunner(jobs=1, task_timeout=0.0)


def test_register_tasks_rejects_nonpositive_timeout(px_cleanup):
    registry["PX"] = _px_run
    with pytest.raises(ValueError, match="timeout must be positive"):
        register_tasks("PX", _px_plan, _px_execute, _px_merge, timeout=-1.0)


def test_plan_timeout_reports_declared_override(px_cleanup):
    _register_px(timeout=120.0)
    assert plan_timeout("PX") == 120.0
    assert plan_timeout("R1") is None


def test_plan_timeout_override_beats_runner_default(px_cleanup):
    _register_px(timeout=30.0)  # generous: the experiment knows its cost
    runner = ParallelRunner(
        jobs=1, use_cache=False, task_timeout=0.05,
        retry=RetryPolicy(max_attempts=1),
    )
    output = runner.run("PX", sleep=0.3)  # would blow the runner default
    assert output.text == "1"
    assert not runner.failures


def test_timeout_exhaustion_becomes_structured_failure(px_cleanup):
    _register_px()
    runner = ParallelRunner(
        jobs=1, use_cache=False, task_timeout=0.1,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
    )
    output = runner.run("PX", sleep=30.0)
    assert output.title == "FAILED"
    assert "1 of 1 task(s) failed" in output.text
    (failure,) = runner.failures
    assert failure.kind == "timeout"
    assert failure.attempts == 2
    assert runner.retries == 1


def test_failed_experiment_does_not_abort_the_sweep(px_cleanup, tmp_path):
    _register_px()
    runner = ParallelRunner(
        jobs=1, use_cache=False, task_timeout=0.1,
        retry=RetryPolicy(max_attempts=1),
    )
    broken, healthy = runner.run_many(
        [("PX", dict(sleep=30.0)), ("R1", dict(days=1.0, seeds=(1,)))]
    )
    assert broken.title == "FAILED"
    assert healthy.experiment_id == "R1" and healthy.title != "FAILED"


def test_failures_are_never_cached(px_cleanup, tmp_path):
    _register_px()
    cache = ResultCache(root=tmp_path)
    runner = ParallelRunner(
        jobs=1, cache=cache, task_timeout=0.1,
        retry=RetryPolicy(max_attempts=1),
    )
    runner.run("PX", sleep=30.0)
    assert runner.failures
    assert cache.entries() == []  # a transient outage must not poison reruns


class _BrokenSubmitPool:
    """Mimics a ProcessPoolExecutor whose workers died pre-submission."""

    def submit(self, fn, *args):
        raise RuntimeError("pool is broken")

    def shutdown(self, **kwargs):
        pass


def test_submission_to_broken_pool_is_contained(px_cleanup):
    # Regression: a worker dying *during* batch submission makes pool.submit
    # itself raise; that must degrade the batch, not escape the runner.
    from collections import deque

    _register_px()
    runner = ParallelRunner(
        jobs=2, use_cache=False, retry=RetryPolicy(max_attempts=1)
    )
    (task,) = plan_tasks("PX")
    sink = {}
    requeue = runner._run_round(_BrokenSubmitPool(), deque([(0, task, 1)]), sink)
    assert runner._pool_broken
    assert requeue == []  # max_attempts=1: degraded inline instead
    assert sink[0] == 1  # the task's actual result, computed in-process
    assert len(runner.degraded_tasks) == 1


# -- journal integration -------------------------------------------------------

def test_runner_journals_starts_and_completions(px_cleanup, tmp_path):
    _register_px()
    journal = RunJournal.create(tmp_path / "runs")
    runner = ParallelRunner(jobs=1, use_cache=False, journal=journal)
    runner.run("PX")
    journal.close()
    events = [e["event"] for e in journal.events()]
    assert events == ["task-started", "task-completed"]
    assert journal.completed_keys()


def test_resume_skips_journaled_completions_via_cache(px_cleanup, tmp_path):
    _register_px()
    cache_root = tmp_path / "cache"
    first_journal = RunJournal.create(tmp_path / "runs")
    first = ParallelRunner(
        jobs=1, cache=ResultCache(root=cache_root), journal=first_journal
    )
    first.run("PX")
    first_journal.close()

    resumed_journal = RunJournal.resume(tmp_path / "runs", first_journal.run_id)
    second = ParallelRunner(
        jobs=1,
        cache=ResultCache(root=cache_root),
        journal=resumed_journal,
        resume_keys=resumed_journal.completed_keys(),
    )
    second.run("PX")
    resumed_journal.close()
    assert second.resume_skipped == 1
    assert second.cache_stats.hits == 1 and second.cache_stats.misses == 0
