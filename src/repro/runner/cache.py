"""On-disk result cache for experiment tasks.

Layout: one pickle per task under the cache root, named by the hex cache
key.  The key is ``sha256(experiment_id | params-json | seed | code-version)``
where *params-json* is a canonical JSON rendering (sorted keys, tuples as
lists) and *code-version* is a digest over every ``repro`` source file — so
editing any module invalidates the whole cache rather than serving results
computed by old code.

The cache root resolves, in order: explicit argument, ``REPRO_CACHE_DIR``,
``$XDG_CACHE_HOME/repro``, ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

__all__ = ["CacheStats", "ResultCache", "code_version", "default_cache_dir"]

_SUFFIX = ".pkl"
_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package sources (memoized)."""
    global _code_version_memo
    if _code_version_memo is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_memo = digest.hexdigest()[:16]
    return _code_version_memo


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical_params(params: dict) -> str:
    """Stable JSON for hashing: sorted keys; tuples collapse to lists."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


@dataclass
class CacheStats:
    """Hit/miss/write counters for one runner invocation."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"


@dataclass
class ResultCache:
    """Pickle-per-task cache; see module docstring for the key scheme."""

    root: Path = field(default_factory=default_cache_dir)
    version: str = field(default_factory=code_version)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def key(self, experiment_id: str, params: dict, seed: int) -> str:
        material = "\0".join(
            [experiment_id, _canonical_params(params), str(int(seed)), self.version]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def get(self, experiment_id: str, params: dict, seed: int) -> tuple[bool, Any]:
        """``(hit, value)`` — a corrupt entry counts as a miss and is removed."""
        path = self._path(self.key(experiment_id, params, seed))
        if path.exists():
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except Exception:
                path.unlink(missing_ok=True)
            else:
                self.stats.hits += 1
                return True, value
        self.stats.misses += 1
        return False, None

    def put(self, experiment_id: str, params: dict, seed: int, value: Any) -> None:
        """Store atomically (write-to-temp + rename) so readers never see torn files."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(experiment_id, params, seed))
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=_SUFFIX + ".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    # -- maintenance ---------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*{_SUFFIX}"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
