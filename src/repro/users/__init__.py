"""The synthetic user community.

Users are the ground truth of this reproduction: each simulated user has a
field of science, an allocation, a home site and a *modality profile* that
drives a behaviour process.  The measurement system then tries to recover
those modalities from the accounting stream alone.
"""

from repro.users.fields import FIELDS_OF_SCIENCE, sample_field
from repro.users.profiles import BehaviorProfile, DEFAULT_PROFILES
from repro.users.population import Population, PopulationSpec, User, build_population
from repro.users.behavior import start_behaviors

__all__ = [
    "BehaviorProfile",
    "DEFAULT_PROFILES",
    "FIELDS_OF_SCIENCE",
    "Population",
    "PopulationSpec",
    "User",
    "build_population",
    "sample_field",
    "start_behaviors",
]
