"""A1 (ablation) — EASY backfill vs walltime request accuracy.

Backfill plans with *requested* walltimes, so one might expect looser
requests to hurt.  The literature says otherwise: Mu'alem & Feitelson (TPDS
2001) showed that *over*-estimated walltimes often **help** backfilling —
inflated bounds push the head's shadow later, opening more backfill windows
for waiting jobs ("the walltime-accuracy paradox").  Shape expectation here:
utilization stays flat while small-job waits *shrink* as the over-request
factor grows — the paradox, reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.experiments.f3_wait_times import _feeder, single_site_workload
from repro.infra.cluster import Cluster
from repro.infra.scheduler import EasyBackfillScheduler
from repro.infra.units import DAY, HOUR
from repro.sim import RandomStreams, Simulator

__all__ = ["run"]


def _measure(pad: tuple[float, float], days: float, seed: int, load: float):
    sim = Simulator()
    cluster = Cluster("mach", nodes=64, cores_per_node=8)
    scheduler = EasyBackfillScheduler(sim, cluster)
    rng = RandomStreams(seed).stream("a1-workload")
    arrivals = single_site_workload(
        rng, cluster, days, load=load, walltime_pad=pad
    )
    sim.process(_feeder(sim, scheduler, arrivals), name="feeder")
    horizon = days * DAY
    sim.run(until=horizon)
    finished = [j for j in scheduler.completed if j.start_time is not None]
    delivered = sum(
        cluster.nodes_for(j.cores) * (min(j.end_time, horizon) - j.start_time)
        for j in finished
    )
    small_waits = [
        j.wait_time / HOUR for j in finished if j.cores <= 8
    ]
    return {
        "utilization": delivered / (cluster.nodes * horizon),
        "small_median_wait_h": float(np.median(small_waits)) if small_waits else 0.0,
        "n_finished": len(finished),
    }


@register("A1")
def run(days: float = 14.0, seed: int = 19, load: float = 0.85) -> ExperimentOutput:
    pads = [(1.0, 1.05), (1.5, 2.0), (3.0, 4.0), (6.0, 8.0)]
    rows = []
    data = {}
    for pad in pads:
        outcome = _measure(pad, days, seed, load)
        label = f"{pad[0]:.1f}-{pad[1]:.1f}x"
        rows.append(
            [
                label,
                f"{100 * outcome['utilization']:.1f}%",
                f"{outcome['small_median_wait_h']:.2f}h",
                outcome["n_finished"],
            ]
        )
        data[label] = outcome
    text = ascii_table(
        ["walltime over-request", "utilization", "small-job median wait",
         "jobs finished"],
        rows,
        title=(
            f"A1 — EASY backfill vs walltime request accuracy "
            f"({days:g} days at load {load:.0%})"
        ),
    )
    return ExperimentOutput(
        experiment_id="A1",
        title="Walltime-accuracy ablation for EASY backfill",
        text=text,
        data=data,
    )
