"""The parallel runner: plan tasks, fan out, merge deterministically.

Determinism contract: for a fixed experiment list and knobs, the merged
outputs are byte-identical at any ``jobs`` value.  Three properties deliver
it — every task carries its own seed (no shared RNG state), workers compute
pure partials (no global mutation crosses back), and merging consumes
partials strictly in task-index order (never completion order).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    execute_task,
    merge_tasks,
    plan_tasks,
)
from repro.runner.cache import ResultCache
from repro.runner.worker import run_task

__all__ = ["ParallelRunner", "resolve_jobs"]

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit value > ``REPRO_JOBS`` env > ``os.cpu_count()``; minimum 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


class ParallelRunner:
    """Run experiments as task fan-outs with optional result caching.

    ``jobs=1`` executes inline in this process (sharing the in-process
    campaign memo exactly like the classic serial path); ``jobs>1`` uses a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  ``cache=None`` with
    ``use_cache=True`` builds the default on-disk cache; ``use_cache=False``
    disables caching entirely.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache: Optional[ResultCache] = (
            cache if cache is not None else (ResultCache() if use_cache else None)
        )

    # -- public API ----------------------------------------------------------
    def run(self, experiment_id: str, **knobs) -> ExperimentOutput:
        """Run one experiment (its tasks still fan out across workers)."""
        return self.run_many([(experiment_id, knobs)])[0]

    def run_many(
        self, requests: Sequence[tuple[str, dict]]
    ) -> list[ExperimentOutput]:
        """Run ``[(experiment_id, knobs), ...]``; outputs in request order."""
        plans: list[list[ExperimentTask]] = [
            plan_tasks(experiment_id, **knobs) for experiment_id, knobs in requests
        ]
        all_tasks = [task for tasks in plans for task in tasks]
        partials = self._execute(all_tasks)

        outputs = []
        cursor = 0
        for (experiment_id, knobs), tasks in zip(requests, plans):
            chunk = partials[cursor : cursor + len(tasks)]
            cursor += len(tasks)
            outputs.append(merge_tasks(experiment_id, chunk, **knobs))
        return outputs

    @property
    def cache_stats(self):
        return self.cache.stats if self.cache is not None else None

    # -- execution -----------------------------------------------------------
    def _execute(self, tasks: Iterable[ExperimentTask]) -> list:
        tasks = list(tasks)
        results: list = [None] * len(tasks)
        pending: list[tuple[int, ExperimentTask]] = []
        for position, task in enumerate(tasks):
            if self.cache is not None:
                hit, value = self.cache.get(task.experiment_id, task.params, task.seed)
                if hit:
                    results[position] = value
                    continue
            pending.append((position, task))

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                computed = [execute_task(task) for _position, task in pending]
            else:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    computed = list(
                        pool.map(run_task, [task for _position, task in pending])
                    )
            for (position, task), value in zip(pending, computed):
                results[position] = value
                if self.cache is not None:
                    self.cache.put(task.experiment_id, task.params, task.seed, value)
        return results
