"""Site storage systems and shared data collections.

Two pieces matter for modality measurement: sites host *data collections*
(curated datasets, e.g. satellite products or genome banks) whose access is a
usage channel of its own, and jobs *stage* inputs/outputs across the WAN,
which is what couples workflow modalities to the network substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.infra.network import Network
from repro.sim import Simulator
from repro.sim.process import Event

__all__ = ["StorageSystem", "DataCollection", "StageOperation"]

TB = 1e12
GB = 1e9


@dataclass
class DataCollection:
    """A named dataset hosted on a site's storage system."""

    name: str
    size_bytes: float
    home_site: str
    accesses: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")


@dataclass
class StageOperation:
    """Record of one staging movement (for analysis)."""

    what: str
    src: str
    dst: str
    size_bytes: float
    started_at: float
    finished_at: Optional[float] = None


class StorageSystem:
    """A site's disk: finite capacity, hosts collections, stages data.

    Capacity accounting is byte-granular but deliberately coarse: quota
    pressure is not part of the reproduced experiments; what matters is the
    data *movement* they generate.
    """

    def __init__(
        self, sim: Simulator, site: str, capacity_bytes: float, network: Network
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.sim = sim
        self.site = site
        self.capacity_bytes = capacity_bytes
        self.network = network
        self.used_bytes = 0.0
        self.collections: dict[str, DataCollection] = {}
        self.stage_log: list[StageOperation] = []

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def host_collection(self, collection: DataCollection) -> None:
        if collection.name in self.collections:
            raise ValueError(f"duplicate collection {collection.name!r}")
        if collection.home_site != self.site:
            raise ValueError(
                f"collection {collection.name!r} homes at {collection.home_site!r},"
                f" not {self.site!r}"
            )
        self.allocate(collection.size_bytes)
        self.collections[collection.name] = collection

    def allocate(self, size_bytes: float) -> None:
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if size_bytes > self.free_bytes:
            raise RuntimeError(
                f"storage at {self.site} full: need {size_bytes:.3g}, "
                f"free {self.free_bytes:.3g}"
            )
        self.used_bytes += size_bytes

    def release(self, size_bytes: float) -> None:
        self.used_bytes = max(self.used_bytes - size_bytes, 0.0)

    def stage_in(self, what: str, src_site: str, size_bytes: float) -> Event:
        """Pull ``size_bytes`` from ``src_site`` onto this storage system.

        Returns the network-transfer completion event.  Space is reserved up
        front; the stage log records the operation.
        """
        self.allocate(size_bytes)
        op = StageOperation(
            what=what,
            src=src_site,
            dst=self.site,
            size_bytes=size_bytes,
            started_at=self.sim.now,
        )
        self.stage_log.append(op)
        done = self.network.transfer(src_site, self.site, size_bytes)
        done._add_callback(lambda _e: setattr(op, "finished_at", self.sim.now))
        return done

    def access_collection(self, name: str) -> DataCollection:
        """Record an access to a hosted collection."""
        try:
            collection = self.collections[name]
        except KeyError:
            raise KeyError(f"no collection {name!r} at {self.site}") from None
        collection.accesses += 1
        return collection
