"""The job model: lifecycle, attributes and ground-truth labels.

A :class:`Job` carries two kinds of information:

* **Observable** fields — everything a real accounting system would see:
  identifiers, sizes, timestamps, final state, and the *attribute* dict that
  the paper's instrumentation proposal adds to usage records (submission
  interface, gateway user, ensemble/workflow/co-allocation identifiers,
  interactive flag).
* **Ground truth** — ``true_modality`` and ``true_user``: the behaviour that
  actually generated the job.  These exist only because this is a simulation;
  they are *never* copied into usage records and are used solely to score the
  measurement system (see :mod:`repro.core.classifier`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Job", "JobState", "SubmissionInterface", "AttributeKeys"]

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    """Lifecycle states of a batch job."""

    CREATED = "created"
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"  # application error; ended early
    KILLED_WALLTIME = "killed_walltime"  # hit its requested walltime
    CANCELLED = "cancelled"  # removed by the user before/while running

    @property
    def is_terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.KILLED_WALLTIME,
            JobState.CANCELLED,
        )


class SubmissionInterface(enum.Enum):
    """How the job reached the batch system (an observable job attribute)."""

    LOGIN = "login"  # direct login-node CLI submission
    GRAM = "gram"  # grid middleware remote submission
    GATEWAY = "gateway"  # web science-gateway portal


class AttributeKeys:
    """Well-known keys of the observable job-attribute dict.

    These correspond to the attributes the paper proposes attaching to
    accounting records so modalities become measurable.
    """

    SUBMIT_INTERFACE = "submit_interface"  # SubmissionInterface value
    GATEWAY_NAME = "gateway_name"  # which gateway submitted the job
    GATEWAY_USER = "gateway_user"  # end-user identity behind a community acct
    ENSEMBLE_ID = "ensemble_id"  # parameter-sweep / ensemble grouping
    WORKFLOW_ID = "workflow_id"  # DAG workflow grouping
    COALLOCATION_ID = "coallocation_id"  # multi-site co-scheduled run
    INTERACTIVE = "interactive"  # interactive / steering / viz session


@dataclass
class Job:
    """A single batch job submitted to one resource provider.

    ``cores`` is the requested core count; ``walltime`` the requested limit in
    seconds; ``true_runtime`` the duration the application would run if not
    limited (``min(true_runtime, walltime)`` elapses on the machine).  Set
    ``will_fail`` for application failures: the job ends at ``true_runtime``
    in :attr:`JobState.FAILED`.
    """

    user: str
    account: str
    cores: int
    walltime: float
    true_runtime: float
    job_id: int = field(default_factory=lambda: next(_job_ids))
    will_fail: bool = False
    priority: float = 0.0
    #: earliest time the job may start (used for co-allocated synchronized
    #: starts); None means "as soon as possible"
    not_before: Optional[float] = None
    attributes: dict[str, Any] = field(default_factory=dict)

    # ground truth (simulation-only; never enters accounting records)
    true_modality: Optional[str] = None
    true_user: Optional[str] = None

    # filled in by the site/scheduler as the job progresses
    queue: Optional[str] = None  # named queue the site routed the job to
    state: JobState = JobState.CREATED
    resource: Optional[str] = None
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    charged_nu: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"job needs >= 1 core, got {self.cores}")
        if self.walltime <= 0:
            raise ValueError(f"walltime must be positive, got {self.walltime}")
        if self.true_runtime < 0:
            raise ValueError(f"true_runtime must be >= 0, got {self.true_runtime}")
        if self.true_user is None:
            self.true_user = self.user

    # -- derived quantities ----------------------------------------------
    @property
    def elapsed(self) -> Optional[float]:
        """Wall-clock seconds the job actually occupied the machine."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def wait_time(self) -> Optional[float]:
        """Seconds spent in the queue before starting (None if never started)."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def bounded_runtime(self) -> float:
        """The wall-clock duration the job will occupy nodes if started."""
        return min(self.true_runtime, self.walltime)

    @property
    def is_interactive(self) -> bool:
        return bool(self.attributes.get(AttributeKeys.INTERACTIVE, False))

    def final_state_when_run_to_completion(self) -> JobState:
        """The terminal state this job reaches if left to run."""
        if self.true_runtime > self.walltime:
            # Hits the walltime limit before it can complete or fail.
            return JobState.KILLED_WALLTIME
        if self.will_fail:
            return JobState.FAILED
        return JobState.COMPLETED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Job {self.job_id} user={self.user} cores={self.cores} "
            f"state={self.state.value}>"
        )
