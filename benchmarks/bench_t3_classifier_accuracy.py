"""Bench T3: regenerate the measurement-accuracy table."""

from repro.core.modalities import Modality


def test_t3_classifier_accuracy(regenerate):
    output = regenerate("T3")
    assert output.data["instrumented_accuracy"] > 0.95
    assert output.data["heuristic_accuracy"] > 0.7
    # The instrumentation's value concentrates in the gateway user count.
    heuristic_gateway_error = output.data["heuristic_user_error"][
        Modality.GATEWAY.value
    ]
    instrumented_gateway_error = output.data["instrumented_user_error"][
        Modality.GATEWAY.value
    ]
    assert heuristic_gateway_error < -0.5
    assert abs(instrumented_gateway_error) < 0.1
