"""Unplanned site outages: injector, site state machine, gateway backlog,
pilot re-provisioning, and stale information-service views.

These pin the mechanics the A4 ablation leans on: outage schedules are a
pure function of the stream seed, queued work survives a whole-site outage
while running work dies, gateways hold requests through a backend outage and
drain them on recovery, pilots re-provision after infrastructure death, and
the info service keeps lying about a dead site for exactly the propagation
window.
"""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import Job, JobState
from repro.infra.resilience import OutagePolicy, SiteOutageInjector
from repro.infra.units import DAY, HOUR, MINUTE
from repro.sim import Simulator


def make_site(nodes=8, cores_per_node=4, name="mach"):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"u", "gw"})
    central = I.CentralAccountingDB()
    cluster = I.Cluster(name, nodes=nodes, cores_per_node=cores_per_node)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    return sim, site, central, ledger


def job(cores=4, walltime=10 * HOUR, runtime=None):
    return Job(user="u", account="acct", cores=cores, walltime=walltime,
               true_runtime=walltime if runtime is None else runtime)


# -- site state machine ----------------------------------------------------

def test_mark_down_kills_running_preserves_queue():
    sim, site, central, _ = make_site(nodes=2)
    running = job(cores=8, walltime=10 * HOUR)   # fills the machine
    queued = job(cores=8, walltime=2 * HOUR)     # must wait behind it
    site.submit(running)
    site.submit(queued)
    sim.run(until=1 * HOUR)
    assert running.state is JobState.RUNNING
    assert queued.state is JobState.PENDING

    def outage(sim):
        killed = site.mark_down()
        assert killed == 1
        with pytest.raises(I.SiteDownError):
            site.submit(job())
        yield sim.timeout(6 * HOUR)
        site.mark_up()

    sim.process(outage(sim))
    sim.run(until=12 * HOUR)
    # The running job died to the outage; the queued one survived the
    # freeze (PBS-style) and started once the site came back.
    assert running.state is JobState.FAILED
    assert queued.state in (JobState.RUNNING, JobState.COMPLETED)
    assert queued.start_time is not None and queued.start_time >= 7 * HOUR


def test_mark_down_idempotent_and_wait_until_up():
    sim, site, _, _ = make_site()
    seen = []

    def watcher(sim):
        yield site.wait_until_up()   # already up: resolves immediately
        seen.append(("immediate", sim.now))
        yield sim.timeout(1.0)
        site.mark_down()
        assert site.mark_down() == 0  # second call is a no-op
        waiter = site.wait_until_up()
        yield sim.timeout(5.0)
        site.mark_up()
        site.mark_up()                # idempotent too
        yield waiter
        seen.append(("recovered", sim.now))

    sim.process(watcher(sim))
    sim.run(until=10.0)
    assert seen == [("immediate", 0.0), ("recovered", 6.0)]


# -- outage injector -------------------------------------------------------

def _run_injected(seed, until=60 * DAY):
    sim, site, central, _ = make_site(nodes=8)
    policy = OutagePolicy(site_mtbf=5 * DAY, partial_mtbf=5 * DAY)
    injector = SiteOutageInjector(
        sim, site, np.random.default_rng(seed), policy=policy
    )
    jobs = [job(cores=4, walltime=12 * HOUR) for _ in range(60)]

    def feeder(sim):
        for j in jobs:
            try:
                site.submit(j)
            except I.SiteDownError:
                pass
            yield sim.timeout(6 * HOUR)

    sim.process(feeder(sim))
    sim.run(until=until)
    return injector, site, jobs


def test_injector_produces_both_outage_kinds():
    injector, site, jobs = _run_injected(3)
    kinds = {o.kind for o in injector.outages}
    assert kinds == {"full", "partial"}
    assert injector.jobs_killed > 0
    assert any(j.state is JobState.FAILED for j in jobs)
    # Ended outages recorded their repair window faithfully.
    for outage in injector.outages:
        if outage.end is not None:
            assert outage.end == pytest.approx(outage.start + outage.repair)
    assert site.up or injector.outages[-1].end is None


def test_outage_schedule_is_seed_stable():
    first, _, first_jobs = _run_injected(11)
    second, _, second_jobs = _run_injected(11)
    assert [(o.kind, o.start, o.repair) for o in first.outages] == [
        (o.kind, o.start, o.repair) for o in second.outages
    ]
    assert [j.state for j in first_jobs] == [j.state for j in second_jobs]
    different = _run_injected(12)[0]
    assert [(o.kind, o.start) for o in different.outages] != [
        (o.kind, o.start) for o in first.outages
    ]


def test_partial_outage_drains_slice_and_blocks_capacity():
    sim, site, _, _ = make_site(nodes=8)
    policy = OutagePolicy(
        site_mtbf=0.0,            # no full outages
        partial_mtbf=1 * HOUR,    # a rack failure promptly
        partial_fraction=0.5,
        repair_min=10 * HOUR, repair_median=12 * HOUR, repair_max=14 * HOUR,
    )
    injector = SiteOutageInjector(
        sim, site, np.random.default_rng(0), policy=policy
    )
    jobs = [job(cores=4, walltime=20 * HOUR) for _ in range(8)]
    for j in jobs:
        site.submit(j)
    sim.run(until=8 * HOUR)
    (outage,) = injector.outages
    assert outage.kind == "partial" and outage.nodes == 4
    # The machine stayed up, but the failed slice is blocked: at most half
    # the nodes run jobs while the drain reservation is active.
    assert site.up
    assert outage.jobs_killed >= 1
    busy = sum(e.nodes for e in site.scheduler.running.values())
    assert busy <= 4
    assert site.available_nodes == 4


# -- gateway backlog -------------------------------------------------------

def test_gateway_queues_through_outage_and_drains_on_recovery():
    sim, site, central, _ = make_site(nodes=8)
    gateway = I.ScienceGateway(
        name="portal", community_user="gw", community_account="acct",
        rng=np.random.default_rng(1), sim=sim, max_backlog=2,
    )

    def clicks(sim):
        site.mark_down()
        statuses = []
        for _ in range(3):
            _job, status = gateway.request(
                site, "alice", cores=4, walltime=1 * HOUR, true_runtime=0.5 * HOUR
            )
            statuses.append(status)
        assert statuses == ["queued", "queued", "shed"]
        yield sim.timeout(4 * HOUR)
        site.mark_up()

    sim.process(clicks(sim))
    sim.run(until=10 * HOUR)
    site.feed.drain()
    assert gateway.requests_queued == 2
    assert gateway.requests_shed == 1
    assert gateway.backlog_submitted == 2
    assert not gateway.backlog
    # The two held requests became real accounted jobs after recovery.
    records = central.all_records()
    assert len(records) == 2
    assert all(r.user == "gw" for r in records)


def test_gateway_without_backlog_sheds_everything():
    sim, site, _, _ = make_site()
    gateway = I.ScienceGateway(
        name="portal", community_user="gw", community_account="acct",
        rng=np.random.default_rng(1),
    )
    site.mark_down()
    _job, status = gateway.request(
        site, "alice", cores=4, walltime=1 * HOUR, true_runtime=0.5 * HOUR
    )
    assert (_job, status) == (None, "shed")
    assert gateway.requests_shed == 1


# -- pilot re-provisioning -------------------------------------------------

def test_pilot_reprovisions_after_site_outage():
    sim, site, _, _ = make_site(nodes=8)
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=16, walltime=40 * HOUR,
        reprovision=True,
    )
    tasks = [I.PilotTask(cores=4, runtime=30 * HOUR) for _ in range(2)]
    for task in tasks:
        pilot.submit_task(task)

    def outage(sim):
        yield sim.timeout(2 * HOUR)   # pilot active, tasks running
        site.mark_down()
        yield sim.timeout(3 * HOUR)
        site.mark_up()

    sim.process(outage(sim))
    sim.run(until=80 * HOUR)
    assert pilot.job.state is JobState.FAILED
    assert manager.pilots_lost == 1
    assert manager.pilots_reprovisioned == 1
    assert manager.tasks_rescued == 2
    assert pilot.replacement is not None
    # The rescued tasks ran to completion inside the successor pilot.
    assert all(task.done for task in tasks)


def test_pilot_without_reprovision_loses_tasks():
    sim, site, _, _ = make_site(nodes=8)
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=16, walltime=40 * HOUR,
    )
    task = pilot.submit_task(I.PilotTask(cores=4, runtime=30 * HOUR))

    def outage(sim):
        yield sim.timeout(2 * HOUR)
        site.mark_down()
        yield sim.timeout(3 * HOUR)
        site.mark_up()

    sim.process(outage(sim))
    sim.run(until=80 * HOUR)
    assert pilot.job.state is JobState.FAILED
    assert manager.pilots_reprovisioned == 0
    assert not task.done and task in pilot.lost


# -- information service staleness ----------------------------------------

def test_info_service_lies_for_exactly_the_propagation_window():
    sim, site, _, _ = make_site()
    info = I.InformationService(
        sim, [site], publish_interval=5 * MINUTE,
        outage_propagation_lag=30 * MINUTE,
    )
    observations = []

    def world(sim):
        yield sim.timeout(12 * MINUTE)
        site.mark_down()
        # Inside the window every publication re-serves the pre-outage
        # snapshot; afterwards the truth lands at the next publish tick.
        for _ in range(12):
            yield sim.timeout(5 * MINUTE)
            observations.append(
                (sim.now - site.down_since, info.believed_up(site.name))
            )

    sim.process(world(sim))
    sim.run(until=2 * HOUR)
    for age, believed in observations:
        if age < 30 * MINUTE:
            assert believed, f"truth leaked {age / MINUTE:.0f}m into the window"
    assert not observations[-1][1], "outage never propagated"
    # The believed view flips exactly once, stale -> truthful.
    flips = sum(
        1 for prev, cur in zip(observations, observations[1:])
        if prev[1] != cur[1]
    )
    assert flips == 1
