"""Tests for usage records, the central DB and the AMIE feed."""

import pytest

from repro.infra.accounting import AmieFeed, CentralAccountingDB, UsageRecord
from repro.infra.job import Job, JobState
from repro.infra.units import HOUR
from repro.sim import Simulator


def terminal_job(**kwargs):
    defaults = dict(
        user="alice", account="acct", cores=4, walltime=3600.0, true_runtime=1800.0
    )
    defaults.update(kwargs)
    job = Job(**defaults)
    job.state = JobState.COMPLETED
    job.resource = "mach"
    job.submit_time = 0.0
    job.start_time = 100.0
    job.end_time = 1900.0
    job.charged_nu = 2.0
    return job


def test_record_from_job_copies_observables():
    job = terminal_job(attributes={"submit_interface": "login"})
    record = UsageRecord.from_job(job)
    assert record.job_id == job.job_id
    assert record.user == "alice"
    assert record.resource == "mach"
    assert record.wait_time == 100.0
    assert record.elapsed == 1800.0
    assert record.core_hours == pytest.approx(4 * 1800.0 / HOUR)
    assert record.attributes == {"submit_interface": "login"}
    assert record.ran


def test_record_attributes_are_a_copy():
    job = terminal_job(attributes={"k": "v"})
    record = UsageRecord.from_job(job)
    job.attributes["k"] = "changed"
    assert record.attributes["k"] == "v"


def test_record_has_no_ground_truth_fields():
    job = terminal_job(true_modality="batch", true_user="secret")
    record = UsageRecord.from_job(job)
    assert not hasattr(record, "true_modality")
    assert not hasattr(record, "true_user")
    assert "true_modality" not in record.attributes


def test_record_rejects_non_terminal_job():
    job = terminal_job()
    job.state = JobState.RUNNING
    with pytest.raises(ValueError):
        UsageRecord.from_job(job)


def test_cancelled_before_start_record():
    job = terminal_job()
    job.state = JobState.CANCELLED
    job.start_time = None
    record = UsageRecord.from_job(job)
    assert not record.ran
    assert record.wait_time is None
    assert record.elapsed == 0.0
    assert record.core_hours == 0.0


def test_central_db_indices():
    db = CentralAccountingDB()
    r1 = UsageRecord.from_job(terminal_job(user="alice"))
    r2 = UsageRecord.from_job(terminal_job(user="bob"))
    db.ingest([r1, r2])
    assert len(db) == 2
    assert db.users() == ["alice", "bob"]
    assert db.resources() == ["mach"]
    assert [r.user for r in db.records_of_user("alice")] == ["alice"]
    assert len(db.records_on_resource("mach")) == 2
    assert len(db.records_of_account("acct")) == 2
    assert db.total_nu() == pytest.approx(4.0)


def test_central_db_rejects_duplicate_job():
    db = CentralAccountingDB()
    record = UsageRecord.from_job(terminal_job())
    db.ingest([record])
    with pytest.raises(ValueError):
        db.ingest([record])


def test_amie_feed_batches_by_interval():
    sim = Simulator()
    db = CentralAccountingDB()
    batches = []
    feed = AmieFeed(sim, db, interval=6 * HOUR, on_flush=batches.append)
    feed.publish(UsageRecord.from_job(terminal_job()))
    feed.publish(UsageRecord.from_job(terminal_job()))
    assert feed.buffered == 2
    assert len(db) == 0  # not yet flushed
    sim.run(until=6 * HOUR + 1)
    assert len(db) == 2
    assert feed.buffered == 0
    assert len(batches) == 1 and len(batches[0]) == 2


def test_amie_drain_flushes_immediately():
    sim = Simulator()
    db = CentralAccountingDB()
    feed = AmieFeed(sim, db, interval=6 * HOUR)
    feed.publish(UsageRecord.from_job(terminal_job()))
    assert feed.drain() == 1
    assert feed.drain() == 0
    assert len(db) == 1


def test_amie_interval_validation():
    with pytest.raises(ValueError):
        AmieFeed(Simulator(), CentralAccountingDB(), interval=0.0)
