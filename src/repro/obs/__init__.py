"""Observability: two-domain tracing, metrics registry, telemetry sidecar.

Layer contract: ``repro.obs`` may import from anywhere in the package, but
``repro.sim`` must never import ``repro.obs`` — the kernel exposes a
duck-typed tracer slot (:func:`repro.sim.engine.set_default_tracer`) and
this package fills it.  Nothing in this package may influence report
bytes; that invariant is CI-enforced as a byte-diff.
"""

from repro.obs.export import (
    chrome_trace_from_sidecar,
    chrome_trace_from_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    CounterAttr,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
)
from repro.obs.profile import (
    profile_experiment,
    render_hot_path_table,
    render_stats,
    resolve_experiment_id,
)
from repro.obs.telemetry import (
    SCHEMA,
    Telemetry,
    read_sidecar,
    sidecar_summary,
    timings_lines,
    validate_sidecar,
)
from repro.obs.trace import SimTracer, process_type, traced_simulation

__all__ = [
    "SCHEMA",
    "Counter",
    "CounterAttr",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "SimTracer",
    "Telemetry",
    "chrome_trace_from_sidecar",
    "chrome_trace_from_tracer",
    "process_type",
    "profile_experiment",
    "read_sidecar",
    "render_hot_path_table",
    "render_stats",
    "resolve_experiment_id",
    "sidecar_summary",
    "timings_lines",
    "traced_simulation",
    "validate_chrome_trace",
    "validate_sidecar",
    "write_chrome_trace",
]
