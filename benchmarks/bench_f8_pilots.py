"""Bench F8: regenerate the pilot-job measurement-gap table."""


def test_f8_pilots(regenerate):
    output = regenerate("F8")
    direct = output.data["direct"]
    untagged = output.data["pilot_untagged"]
    tagged = output.data["pilot_tagged"]
    # The measurement flip (the reproduction target): W records collapse to
    # one, and the ensemble user reads as a batch user until the pilot
    # forwards the ensemble attribute.
    assert direct["records_seen"] > 100
    assert untagged["records_seen"] == 1
    assert tagged["records_seen"] == 1
    assert direct["measured_modality"] == "ensemble"
    assert untagged["measured_modality"] == "batch"
    assert tagged["measured_modality"] == "ensemble"
    # The pilot ran the whole ensemble inside its placeholder.
    assert untagged["tasks_completed"] == 160
