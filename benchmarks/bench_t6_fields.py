"""Bench T6: regenerate the field-of-science usage table."""


def test_t6_fields(regenerate):
    output = regenerate("T6")
    fields = output.data
    # Several disciplines appear, none unassigned.
    assert len(fields) >= 5
    assert "(unassigned)" not in fields
    # The heavy-usage fields lead.
    ranked = sorted(fields, key=lambda f: -fields[f]["nu"])
    assert ranked[0] in {
        "Molecular Biosciences",
        "Physics",
        "Astronomical Sciences",
        "Chemistry",
        "Materials Research",
    }
