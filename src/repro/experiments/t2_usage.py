"""T2 — Jobs and NUs charged per modality (usage vs head-count inversion).

Shape expectation: BATCH dominates NUs (>50%) while EXPLORATORY and GATEWAY
dominate job counts; GATEWAY has the highest jobs-per-user ratio among the
job-heavy modalities relative to its NU share.
"""

from __future__ import annotations

from repro.core import AttributeClassifier, compute_metrics
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import modality_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T2")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)

    nu_share = {m: f"{100 * metrics.nu_share(m):.1f}%" for m in MODALITY_ORDER}
    jobs_per_user = {
        m: f"{metrics.jobs_per_user(m):.1f}" for m in MODALITY_ORDER
    }
    nu_rounded = {m: f"{metrics.nu[m]:,.0f}" for m in MODALITY_ORDER}
    text = modality_table(
        {
            "users": metrics.users,
            "jobs": metrics.jobs,
            "jobs/user": jobs_per_user,
            "NUs charged": nu_rounded,
            "NU share": nu_share,
        },
        title=(
            f"T2 — Usage by modality over {days:g} days "
            f"(total {metrics.total_nu:,.0f} NUs, {metrics.total_jobs} jobs; "
            f"usage Gini {metrics.usage_gini:.2f})"
        ),
    )
    return ExperimentOutput(
        experiment_id="T2",
        title="Jobs and NUs charged per modality",
        text=text,
        data={
            "jobs": {m.value: metrics.jobs[m] for m in MODALITY_ORDER},
            "nu": {m.value: metrics.nu[m] for m in MODALITY_ORDER},
            "nu_share": {m.value: metrics.nu_share(m) for m in MODALITY_ORDER},
            "jobs_per_user": {
                m.value: metrics.jobs_per_user(m) for m in MODALITY_ORDER
            },
            "gini": metrics.usage_gini,
        },
    )


def _campaigns(params: dict) -> list:
    """The one campaign T2's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T2", _campaigns)
