"""Tests for time/charging units."""

import pytest

from repro.infra.units import DAY, HOUR, MINUTE, WEEK, core_hours, nu_charge


def test_time_constants():
    assert MINUTE == 60.0
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR
    assert WEEK == 7 * DAY


def test_core_hours():
    assert core_hours(4, HOUR) == 4.0
    assert core_hours(1, 1800.0) == 0.5
    assert core_hours(0, HOUR) == 0.0


def test_core_hours_validation():
    with pytest.raises(ValueError):
        core_hours(-1, 10.0)
    with pytest.raises(ValueError):
        core_hours(1, -10.0)


def test_nu_charge_scales_with_normalization():
    base = nu_charge(16, HOUR, 1.0)
    assert nu_charge(16, HOUR, 2.5) == pytest.approx(2.5 * base)
    assert base == pytest.approx(16.0)


def test_nu_charge_validation():
    with pytest.raises(ValueError):
        nu_charge(1, HOUR, 0.0)
