"""Tests for usage metrics aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.classifier import AttributeClassifier
from repro.core.metrics import compute_metrics, gini
from repro.core.modalities import Modality
from repro.infra.job import AttributeKeys
from repro.infra.units import HOUR, MINUTE


def test_gini_equal_distribution_is_zero():
    assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)


def test_gini_total_concentration_approaches_one():
    value = gini([0.0] * 99 + [100.0])
    assert value > 0.95


def test_gini_validation():
    with pytest.raises(ValueError):
        gini([])
    with pytest.raises(ValueError):
        gini([-1.0, 2.0])
    assert gini([0.0, 0.0]) == 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_gini_bounded_and_scale_invariant(values):
    g = gini(values)
    assert -1e-9 <= g <= 1.0
    if sum(values) > 0:
        assert gini([v * 3.0 for v in values]) == pytest.approx(g, abs=1e-9)


def mixed_records(make_record):
    records = []
    # Batch user: 2 big long jobs.
    for i in range(2):
        records.append(
            make_record(user="prod", cores=64, elapsed=4 * HOUR,
                        submit=i * 10 * HOUR, resource="ranger",
                        job_id=8000 + i)
        )
    # Gateway user: 4 tiny jobs.
    for i in range(4):
        records.append(
            make_record(
                user="gw",
                cores=1,
                elapsed=10 * MINUTE,
                submit=i * HOUR,
                resource="abe",
                attributes={
                    AttributeKeys.SUBMIT_INTERFACE: "gateway",
                    AttributeKeys.GATEWAY_NAME: "portal",
                    AttributeKeys.GATEWAY_USER: "end1",
                },
                job_id=8100 + i,
            )
        )
    return records


def test_metrics_totals_and_splits(make_record):
    records = mixed_records(make_record)
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)
    assert metrics.total_jobs == 6
    assert metrics.jobs[Modality.BATCH] == 2
    assert metrics.jobs[Modality.GATEWAY] == 4
    assert metrics.users[Modality.BATCH] == 1
    assert metrics.users[Modality.GATEWAY] == 1
    # batch NUs dwarf gateway NUs
    assert metrics.nu[Modality.BATCH] > 100 * metrics.nu[Modality.GATEWAY]
    assert metrics.total_nu == pytest.approx(sum(r.charged_nu for r in records))
    assert metrics.nu_share(Modality.BATCH) > 0.9


def test_metrics_per_site_breakdown(make_record):
    records = mixed_records(make_record)
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)
    assert set(metrics.by_site_nu) == {"ranger", "abe"}
    assert metrics.by_site_nu["ranger"].get(Modality.BATCH, 0) > 0
    assert Modality.GATEWAY not in metrics.by_site_nu["ranger"]


def test_jobs_per_user_and_percentiles(make_record):
    records = mixed_records(make_record)
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)
    assert metrics.jobs_per_user(Modality.GATEWAY) == 4.0
    assert metrics.jobs_per_user(Modality.COUPLED) == 0.0
    assert metrics.size_percentile(Modality.BATCH, 50) == 64.0
    assert metrics.size_percentile(Modality.COUPLED, 50) == 0.0
    assert metrics.median_wait(Modality.BATCH) == 600.0
    assert metrics.median_wait(Modality.VIZ) == 0.0


def test_metrics_requires_labels_for_all_records(make_record):
    records = mixed_records(make_record)
    classification = AttributeClassifier().classify(records[:-1])
    with pytest.raises(ValueError):
        compute_metrics(records, classification)


def test_usage_gini_reflects_concentration(make_record):
    records = mixed_records(make_record)
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)
    assert 0.0 < metrics.usage_gini <= 1.0
