"""The wide-area network between resource providers.

TeraGrid sites were joined by a dedicated backbone; the binding constraint on
a bulk transfer was almost always a site's access link.  We model each site
with an access link of finite bandwidth and an uncongested core: a transfer's
instantaneous rate is ``min`` over its two access links of the link's fair
share (bandwidth / concurrent transfers).  Rates are recomputed whenever a
transfer starts or finishes — max–min fair sharing restricted to two-link
paths, solved exactly by iterative water-filling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Simulator
from repro.sim.process import Event

__all__ = ["Network", "NetworkLink", "Transfer"]

_transfer_ids = itertools.count(1)


@dataclass
class NetworkLink:
    """A site's access link: ``bandwidth`` in bytes/second."""

    site: str
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")


@dataclass
class Transfer:
    """An in-flight bulk data movement between two sites.

    ``tag`` is a free-form attribution label (the scenario layer uses the
    modality that caused the movement), carried for analysis only.
    """

    src: str
    dst: str
    size_bytes: float
    started_at: float
    tag: Optional[str] = None
    transfer_id: int = field(default_factory=lambda: next(_transfer_ids))
    remaining: float = field(init=False)
    rate: float = field(init=False, default=0.0)
    done: Optional[Event] = field(init=False, default=None, repr=False)
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
        self.remaining = float(self.size_bytes)

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class Network:
    """Max–min fair bandwidth sharing over per-site access links.

    Same-site "transfers" complete after ``local_copy_time`` (a local
    filesystem copy, effectively free compared to WAN movement).
    """

    def __init__(self, sim: Simulator, local_copy_time: float = 1.0) -> None:
        self.sim = sim
        self.local_copy_time = local_copy_time
        self._links: dict[str, NetworkLink] = {}
        self._active: list[Transfer] = []
        self._completed: list[Transfer] = []
        self._recompute_epoch = itertools.count()

    def add_site(self, site: str, bandwidth: float) -> NetworkLink:
        if site in self._links:
            raise ValueError(f"duplicate network site {site!r}")
        link = NetworkLink(site=site, bandwidth=bandwidth)
        self._links[site] = link
        return link

    def link(self, site: str) -> NetworkLink:
        try:
            return self._links[site]
        except KeyError:
            raise KeyError(f"unknown network site {site!r}") from None

    @property
    def active_transfers(self) -> tuple[Transfer, ...]:
        return tuple(self._active)

    @property
    def completed_transfers(self) -> tuple[Transfer, ...]:
        return tuple(self._completed)

    # -- public API ----------------------------------------------------------
    def transfer(
        self, src: str, dst: str, size_bytes: float, tag: Optional[str] = None
    ) -> Event:
        """Start a transfer; the returned event triggers with the Transfer."""
        transfer = Transfer(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            started_at=self.sim.now,
            tag=tag,
        )
        transfer.done = self.sim.event()
        if src == dst:
            def local_copy(sim, transfer):
                yield sim.timeout(self.local_copy_time)
                transfer.remaining = 0.0
                transfer.finished_at = sim.now
                self._completed.append(transfer)
                transfer.done.succeed(transfer)

            self.sim.process(local_copy(self.sim, transfer), name="local-copy")
            return transfer.done
        self.link(src), self.link(dst)  # validate endpoints
        self._settle_remaining()
        self._active.append(transfer)
        self._reschedule()
        return transfer.done

    # -- fair-share mechanics ----------------------------------------------------
    def _fair_rates(self) -> None:
        """Water-filling max–min fair allocation over access links."""
        unfixed = list(self._active)
        residual = {site: link.bandwidth for site, link in self._links.items()}
        counts: dict[str, int] = {}
        for t in unfixed:
            counts[t.src] = counts.get(t.src, 0) + 1
            counts[t.dst] = counts.get(t.dst, 0) + 1
        while unfixed:
            # The most constrained link determines the next rate level.
            bottleneck_site = min(
                (s for s in counts if counts[s] > 0),
                key=lambda s: residual[s] / counts[s],
            )
            level = residual[bottleneck_site] / counts[bottleneck_site]
            fixed_now = [
                t for t in unfixed if bottleneck_site in (t.src, t.dst)
            ]
            for t in fixed_now:
                t.rate = level
                unfixed.remove(t)
                for site in (t.src, t.dst):
                    counts[site] -= 1
                    residual[site] -= level
            counts[bottleneck_site] = 0

    def _settle_remaining(self) -> None:
        """Account bytes moved since the last recompute at current rates."""
        now = self.sim.now
        for t in self._active:
            elapsed = now - getattr(t, "_rate_since", t.started_at)
            t.remaining = max(t.remaining - t.rate * elapsed, 0.0)

    def _reschedule(self) -> None:
        """Recompute rates and arm a wakeup at the next completion."""
        epoch = next(self._recompute_epoch)
        self._current_epoch = epoch
        while True:
            # A transfer is done when its remaining bytes are gone *or* the
            # time to move them is below the clock's resolution; without the
            # time-based cutoff, sub-nanosecond tails stall the clock (the
            # wakeup delay underflows float addition at large sim times).
            finished = [
                t
                for t in self._active
                if t.remaining <= 1e-6
                or (t.rate > 0 and t.remaining / t.rate <= 1e-6)
            ]
            if not finished:
                break
            for t in finished:
                self._finish(t)
        self._fair_rates()
        for t in self._active:
            t._rate_since = self.sim.now  # type: ignore[attr-defined]
        if not self._active:
            return
        next_done = min(t.remaining / t.rate for t in self._active)
        # Stale wakeups (superseded by a later recompute) are ignored by
        # comparing against the epoch current at wake time.
        self._current_epoch = epoch
        self.sim.process(self._waker(self.sim, epoch, next_done), name="net-waker")

    def _waker(self, sim: Simulator, epoch: int, delay: float):
        yield sim.timeout(delay)
        if getattr(self, "_current_epoch", None) == epoch:
            self._settle_remaining()
            self._reschedule()

    def _finish(self, transfer: Transfer) -> None:
        self._active.remove(transfer)
        transfer.remaining = 0.0
        transfer.finished_at = self.sim.now
        self._completed.append(transfer)
        assert transfer.done is not None
        transfer.done.succeed(transfer)

    # -- estimates -------------------------------------------------------------------
    def estimate_duration(self, src: str, dst: str, size_bytes: float) -> float:
        """Uncontended lower-bound transfer time (used by planners)."""
        if src == dst:
            return self.local_copy_time
        rate = min(self.link(src).bandwidth, self.link(dst).bandwidth)
        return size_bytes / rate
