"""The usage-modality taxonomy.

A *usage modality* answers "what is this user trying to do, and how?" along
four dimensions: the **objective** (production science, porting, analysis),
the **access path** (login CLI, grid middleware, web gateway), the
**execution shape** (single batch jobs, ensembles/workflows, interactive
sessions, multi-site coupled runs) and the **data pattern**.

The six modalities below are the TeraGrid taxonomy this reproduction
targets, ordered by 2010-era prevalence (user counts; see DESIGN.md §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Modality", "ModalityDescription", "MODALITY_TAXONOMY"]


class Modality(enum.Enum):
    """The six TeraGrid usage modalities."""

    BATCH = "batch"
    EXPLORATORY = "exploratory"
    GATEWAY = "gateway"
    ENSEMBLE = "ensemble"
    VIZ = "viz"
    COUPLED = "coupled"

    @property
    def label(self) -> str:
        return MODALITY_TAXONOMY[self].label


@dataclass(frozen=True)
class ModalityDescription:
    """Human-readable taxonomy entry with its measurable signals."""

    modality: "Modality"
    label: str
    objective: str
    access: str
    execution: str
    signals: tuple[str, ...]


MODALITY_TAXONOMY: dict[Modality, ModalityDescription] = {
    Modality.BATCH: ModalityDescription(
        modality=Modality.BATCH,
        label="Batch computing on a single resource",
        objective="Production simulation runs for a research program",
        access="Login-node CLI or GRAM",
        execution="Independent parallel batch jobs, hours-long, moderate size",
        signals=(
            "steady job cadence",
            "hours-scale runtimes",
            "low failure fraction",
            "no grouping attributes",
        ),
    ),
    Modality.EXPLORATORY: ModalityDescription(
        modality=Modality.EXPLORATORY,
        label="Exploratory and application porting",
        objective="Getting a code working / evaluating a resource",
        access="Login-node CLI",
        execution="Many short small jobs, frequent failures, bursty daytime",
        signals=(
            "minutes-scale median runtime",
            "small core counts",
            "high failure/kill fraction",
        ),
    ),
    Modality.GATEWAY: ModalityDescription(
        modality=Modality.GATEWAY,
        label="Science-gateway access",
        objective="Domain science through a web portal without a grid account",
        access="Science gateway over a community account",
        execution="Very many small short jobs under one community identity",
        signals=(
            "gateway submission-interface attribute",
            "gateway-user attribute (when tagged)",
            "community allocation",
        ),
    ),
    Modality.ENSEMBLE: ModalityDescription(
        modality=Modality.ENSEMBLE,
        label="Workflow, ensemble, and parameter sweep",
        objective="Parameter studies, uncertainty quantification, pipelines",
        access="Workflow engines, pilot jobs, scripted submission",
        execution="Bursts of similar jobs; DAG-structured dependencies",
        signals=(
            "ensemble/workflow grouping attributes",
            "submission bursts of similar jobs",
        ),
    ),
    Modality.VIZ: ModalityDescription(
        modality=Modality.VIZ,
        label="Remote interactive steering and visualization",
        objective="Interactive analysis/steering of running computations",
        access="Interactive queue sessions, viz gateways",
        execution="Few-node sessions needing immediate start; user-attended",
        signals=(
            "interactive attribute / interactive queue",
            "business-hours sessions",
            "cancellations when queues are slow",
        ),
    ),
    Modality.COUPLED: ModalityDescription(
        modality=Modality.COUPLED,
        label="Tightly-coupled distributed computation",
        objective="Single application spanning multiple sites at once",
        access="Co-allocation / advance reservations",
        execution="Rare, very large, synchronized multi-site runs",
        signals=(
            "co-allocation attribute",
            "synchronized starts across resources",
        ),
    ),
}

#: Display order used in every table (prevalence order from DESIGN.md §3).
MODALITY_ORDER: tuple[Modality, ...] = (
    Modality.BATCH,
    Modality.EXPLORATORY,
    Modality.GATEWAY,
    Modality.ENSEMBLE,
    Modality.VIZ,
    Modality.COUPLED,
)
