"""The shipped scenario library: federations beyond the 2010 TeraGrid.

Each entry is a :class:`~repro.scenarios.dsl.ScenarioProgram` modelling an
infrastructure style from the related literature, so the classifier and the
resilience machinery get exercised on shapes they were never calibrated
against:

* ``osg-opportunistic`` — an OSG-style opportunistic federation (*New
  Science on the Open Science Grid*): many small heterogeneous sites,
  throughput-oriented users (ensemble/exploratory-heavy, almost no
  capability jobs), weak allocation pressure and frequent preemption-like
  interruptions, which we model as a high-churn partial-outage regime with
  aggressive resubmission.
* ``grid5000-reconfig`` — a Grid'5000-style experimental platform (*A year
  in the life of ... the Grid'5000 platform*): moderate-size clusters that
  are *constantly* reconfigured, modelled as short-MTBF full-site outages
  with fast repairs; users are experimenters (exploratory-dominated) who
  retry quickly and roam between clusters.
* ``deadline-gateway-campaign`` — a deadline-driven science-gateway
  campaign: a portal fleet whose end users pile on over an adoption ramp at
  elevated intensity (conference-deadline load), with big backlogs so the
  portals ride out backend outages rather than shedding clicks.
* ``teragrid-baseline`` — the paper's own 2010 federation as a program, so
  the DSL path and the hand-built :class:`ScenarioConfig` path can be
  compared on identical ground.

All four run end-to-end under every oracle invariant; the regression suite
in ``tests/scenarios`` enforces that.
"""

from __future__ import annotations

from repro.core.modalities import Modality
from repro.scenarios.dsl import (
    FederationDef,
    GatewayFleet,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
)
from repro.infra.metascheduler import SelectionStrategy
from repro.users.behavior import RecoveryPolicy
from repro.workloads.scenarios import SiteSpec

__all__ = [
    "SCENARIO_LIBRARY",
    "deadline_gateway_campaign",
    "grid5000_reconfig",
    "osg_opportunistic",
    "teragrid_baseline",
]


def osg_opportunistic() -> ScenarioProgram:
    """Opportunistic throughput federation: many small sites, churny racks."""
    sites = tuple(
        SiteSpec(
            name=name,
            nodes=nodes,
            cores_per_node=cores,
            nu_per_core_hour=rate,
            wan_bandwidth=bandwidth,
        )
        for name, nodes, cores, rate, bandwidth in (
            ("fermigrid", 40, 8, 0.9, 6.25e8),
            ("glow", 24, 4, 0.8, 3.125e8),
            ("purdue-osg", 20, 8, 1.0, 3.125e8),
            ("nebraska", 16, 4, 0.7, 1.25e8),
            ("ucsd-t2", 16, 8, 0.9, 6.25e8),
            ("mwt2", 12, 4, 0.8, 1.25e8),
        )
    )
    return ScenarioProgram(
        name="osg-opportunistic",
        description="OSG-style opportunistic federation: small heterogeneous "
        "sites, throughput users, frequent slice-level churn",
        days=21.0,
        seed=11,
        federation=FederationDef(preset=None, sites=sites),
        mix=ModalityMix(
            total_users=40,
            weights={
                Modality.ENSEMBLE: 4.0,
                Modality.EXPLORATORY: 3.0,
                Modality.BATCH: 2.0,
                Modality.GATEWAY: 1.0,
            },
        ),
        gateways=GatewayFleet(n_gateways=1, tagging_coverage=0.6, backlog=8),
        # Preemption-like churn: racks drop often, repairs are quick.
        outages=OutageRegime(
            site_mtbf_days=0.0,
            partial_mtbf_days=2.0,
            partial_fraction=0.25,
            repair_median_hours=1.0,
            repair_min_hours=0.25,
            repair_max_hours=6.0,
        ),
        # Opportunistic users resubmit immediately and persistently.
        recovery=RecoverySuite(
            overrides={
                Modality.ENSEMBLE: RecoveryPolicy(
                    max_attempts=6, backoff_base=5 * 60.0, backoff_factor=1.5
                ),
                Modality.BATCH: RecoveryPolicy(
                    max_attempts=5, backoff_base=10 * 60.0
                ),
            }
        ),
        metascheduler=SelectionStrategy.LEAST_LOADED,
        scheduler="fcfs",
    )


def grid5000_reconfig() -> ScenarioProgram:
    """Experimental platform with constant whole-cluster reconfiguration."""
    sites = tuple(
        SiteSpec(
            name=name,
            nodes=nodes,
            cores_per_node=cores,
            nu_per_core_hour=1.0,
            wan_bandwidth=1.25e9,
        )
        for name, nodes, cores in (
            ("rennes", 32, 8),
            ("grenoble", 24, 8),
            ("sophia", 20, 4),
            ("nancy", 28, 8),
        )
    )
    return ScenarioProgram(
        name="grid5000-reconfig",
        description="Grid'5000-style experimental platform: whole clusters "
        "redeploy frequently; experimenters retry fast and roam",
        days=14.0,
        seed=5,
        federation=FederationDef(preset=None, sites=sites),
        mix=ModalityMix(
            total_users=30,
            weights={
                Modality.EXPLORATORY: 5.0,
                Modality.BATCH: 2.0,
                Modality.ENSEMBLE: 2.0,
                Modality.COUPLED: 1.0,
            },
        ),
        gateways=GatewayFleet(n_gateways=1, tagging_coverage=1.0),
        # Reconfiguration looks like a short full-site outage with fast,
        # predictable turnaround (redeploy, not repair).
        outages=OutageRegime(
            site_mtbf_days=3.0,
            repair_median_hours=2.0,
            repair_sigma=0.3,
            repair_min_hours=0.5,
            repair_max_hours=8.0,
            propagation_lag_minutes=2.0,
        ),
        recovery=RecoverySuite(
            overrides={
                Modality.EXPLORATORY: RecoveryPolicy(
                    max_attempts=4, backoff_base=2 * 60.0, backoff_factor=1.5
                ),
            }
        ),
        metascheduler=SelectionStrategy.ROUND_ROBIN,
        scheduler="fcfs",
    )


def deadline_gateway_campaign() -> ScenarioProgram:
    """A portal fleet under deadline load: adoption ramp, big backlogs."""
    return ScenarioProgram(
        name="deadline-gateway-campaign",
        description="Deadline-driven gateway campaign: end users pile onto "
        "the portals over a ramp at elevated intensity",
        days=18.0,
        seed=23,
        federation=FederationDef(preset="small"),
        mix=ModalityMix(
            total_users=48,
            weights={
                Modality.GATEWAY: 6.0,
                Modality.BATCH: 2.0,
                Modality.ENSEMBLE: 1.0,
                Modality.EXPLORATORY: 1.0,
            },
        ),
        gateways=GatewayFleet(
            n_gateways=3,
            tagging_coverage=0.85,
            backlog=32,
            adoption_ramp_days=10.0,
        ),
        outages=OutageRegime(
            site_mtbf_days=12.0,
            repair_median_hours=4.0,
            repair_max_hours=24.0,
        ),
        load=LoadShape(intensity=2.5),
        metascheduler=SelectionStrategy.PREDICTED_START,
    )


def teragrid_baseline() -> ScenarioProgram:
    """The paper's 2010 federation, as a program (DSL-vs-hand-built anchor)."""
    return ScenarioProgram(
        name="teragrid-baseline",
        description="The canonical TeraGrid-2010 small federation, expressed "
        "through the DSL",
        days=30.0,
        seed=1,
        federation=FederationDef(preset="small"),
        population_scale=0.05,
        gateways=GatewayFleet(n_gateways=3, tagging_coverage=1.0),
    )


#: name -> program factory; factories keep programs immutable-by-construction.
SCENARIO_LIBRARY = {
    factory().name: factory
    for factory in (
        osg_opportunistic,
        grid5000_reconfig,
        deadline_gateway_campaign,
        teragrid_baseline,
    )
}
