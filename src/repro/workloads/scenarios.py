"""Federation descriptions modeled on the 2010 TeraGrid.

Machine shapes follow the real systems (relative sizes, cores per node,
normalization factors) scaled down by a constant so simulations are
laptop-fast; modality measurement consumes the *event stream*, which is
insensitive to the absolute node count at fixed utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infra.cluster import Cluster

__all__ = ["SiteSpec", "TERAGRID_2010", "federation_specs"]


@dataclass(frozen=True)
class SiteSpec:
    """Static description of one resource provider."""

    name: str
    nodes: int
    cores_per_node: int
    nu_per_core_hour: float
    wan_bandwidth: float  # bytes/s on the site's access link

    def cluster(self) -> Cluster:
        return Cluster(
            name=self.name,
            nodes=self.nodes,
            cores_per_node=self.cores_per_node,
            nu_per_core_hour=self.nu_per_core_hour,
        )


#: The 2010 federation at 1/16 scale (names nod at the real systems:
#: Ranger/TACC, Kraken/NICS, Abe/NCSA, Lonestar/TACC, Steele/Purdue,
#: QueenBee/LONI, BigRed/IU, Pople/PSC).
TERAGRID_2010: tuple[SiteSpec, ...] = (
    SiteSpec("ranger", nodes=246, cores_per_node=16, nu_per_core_hour=1.9,
             wan_bandwidth=1.25e9),
    SiteSpec("kraken", nodes=516, cores_per_node=12, nu_per_core_hour=2.0,
             wan_bandwidth=1.25e9),
    SiteSpec("abe", nodes=75, cores_per_node=8, nu_per_core_hour=1.4,
             wan_bandwidth=6.25e8),
    SiteSpec("lonestar", nodes=36, cores_per_node=4, nu_per_core_hour=1.2,
             wan_bandwidth=6.25e8),
    SiteSpec("steele", nodes=56, cores_per_node=8, nu_per_core_hour=1.0,
             wan_bandwidth=6.25e8),
    SiteSpec("queenbee", nodes=42, cores_per_node=8, nu_per_core_hour=1.3,
             wan_bandwidth=6.25e8),
    SiteSpec("bigred", nodes=48, cores_per_node=4, nu_per_core_hour=0.8,
             wan_bandwidth=3.125e8),
    SiteSpec("pople", nodes=24, cores_per_node=16, nu_per_core_hour=1.1,
             wan_bandwidth=3.125e8),
)


def federation_specs(scale: str = "medium") -> tuple[SiteSpec, ...]:
    """Preset federations.

    * ``small`` — 3 sites, shrunk further (fast unit/integration tests);
    * ``medium`` — 5 sites at moderate size (default experiments);
    * ``full`` — all 8 sites of :data:`TERAGRID_2010`.
    """
    if scale == "full":
        return TERAGRID_2010
    if scale == "medium":
        return TERAGRID_2010[:5]
    if scale == "small":
        return (
            SiteSpec("ranger", nodes=32, cores_per_node=16,
                     nu_per_core_hour=1.9, wan_bandwidth=1.25e9),
            SiteSpec("abe", nodes=24, cores_per_node=8,
                     nu_per_core_hour=1.4, wan_bandwidth=6.25e8),
            SiteSpec("lonestar", nodes=16, cores_per_node=4,
                     nu_per_core_hour=1.2, wan_bandwidth=6.25e8),
        )
    raise ValueError(f"unknown federation scale {scale!r}")
