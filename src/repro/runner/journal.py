"""Persistent run journal: crash-safe progress records for sweeps.

Every ``run-all`` writes ``<runs-dir>/<run-id>/journal.jsonl`` — one JSON
object per line, appended with flush+fsync so a SIGKILL mid-sweep loses at
most the line being written.  A later ``run-all --resume <run-id>`` loads
the journal, skips tasks it records as completed (their values come from
the result cache) and re-runs only pending or failed ones.

Event vocabulary (the ``event`` field):

* ``run-started``    — run id, argv, requested experiments
* ``task-started``   — task key, experiment/index/seed, attempt number
* ``task-completed`` — task key, attempts used, whether it was served from
  cache / skipped by resume / degraded to in-process execution
* ``task-failed``    — task key plus the structured failure kind/message
* ``run-completed``  — terminal summary counters

A torn final line (the crash signature) is tolerated on load and simply
ignored.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from pathlib import Path
from typing import Any, Optional

__all__ = ["RunJournal", "task_key", "default_runs_dir", "new_run_id"]

RUNS_DIR_ENV = "REPRO_RUNS_DIR"
JOURNAL_NAME = "journal.jsonl"


def default_runs_dir() -> Path:
    env = os.environ.get(RUNS_DIR_ENV)
    return Path(env) if env else Path("runs")


def new_run_id() -> str:
    """Sortable-by-start-time id with a collision-proof suffix."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + secrets.token_hex(3)


def task_key(experiment_id: str, params: dict, seed: int) -> str:
    """Stable identity of one task within a run (code-version agnostic).

    Matches the cache key's ``(experiment, canonical params, seed)``
    components but deliberately omits the code version: a resume after an
    editor save should still *recognize* the task (and then recompute it
    because the cache key misses).
    """
    import hashlib

    from repro.runner.cache import canonical_params

    material = "\0".join([experiment_id, canonical_params(params), str(int(seed))])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class RunJournal:
    """Append-only journal for one run id (see module docstring)."""

    def __init__(self, path: Path, run_id: str) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._handle = None

    # -- construction --------------------------------------------------------
    @classmethod
    def create(cls, runs_dir: Path, run_id: Optional[str] = None) -> "RunJournal":
        run_id = run_id or new_run_id()
        path = Path(runs_dir) / run_id / JOURNAL_NAME
        path.parent.mkdir(parents=True, exist_ok=True)
        return cls(path, run_id)

    @classmethod
    def resume(cls, runs_dir: Path, run_id: str) -> "RunJournal":
        path = Path(runs_dir) / run_id / JOURNAL_NAME
        if not path.is_file():
            raise FileNotFoundError(
                f"no journal for run {run_id!r} under {runs_dir} "
                f"(expected {path})"
            )
        return cls(path, run_id)

    # -- writing -------------------------------------------------------------
    def record(self, event: str, **fields: Any) -> None:
        """Append one event line; flushed and fsynced before returning."""
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        line = json.dumps(
            {"event": event, "time": time.time(), **fields},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------
    def events(self) -> list[dict]:
        """All parseable events; a torn final line is silently dropped."""
        if not self.path.is_file():
            return []
        parsed = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn append (crash mid-write)
        return parsed

    def completed_keys(self) -> frozenset[str]:
        """Task keys recorded as completed (the resume skip-set)."""
        return frozenset(
            event["key"]
            for event in self.events()
            if event.get("event") == "task-completed" and "key" in event
        )

    def failed_keys(self) -> frozenset[str]:
        """Task keys whose *latest* outcome is a failure."""
        latest: dict[str, str] = {}
        for event in self.events():
            if event.get("event") in ("task-completed", "task-failed"):
                key = event.get("key")
                if key:
                    latest[key] = event["event"]
        return frozenset(k for k, v in latest.items() if v == "task-failed")
