"""Usage metrics by modality (the numbers the paper's tables report)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.classifier import Classification
from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.accounting import UsageRecord

__all__ = ["ModalityMetrics", "compute_metrics", "gini"]


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative usage distribution (0=equal)."""
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        raise ValueError("gini of an empty sequence")
    if np.any(array < 0):
        raise ValueError("gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    # Standard rank formula: G = (2*sum(i*x_i)/ (n*sum(x)) ) - (n+1)/n
    ranks = np.arange(1, n + 1)
    return float(2.0 * np.sum(ranks * array) / (n * total) - (n + 1) / n)


@dataclass
class ModalityMetrics:
    """Aggregates per modality from one classified record set."""

    users: dict[Modality, int] = field(default_factory=dict)
    jobs: dict[Modality, int] = field(default_factory=dict)
    nu: dict[Modality, float] = field(default_factory=dict)
    by_site_nu: dict[str, dict[Modality, float]] = field(default_factory=dict)
    job_sizes: dict[Modality, list[int]] = field(default_factory=dict)
    wait_times: dict[Modality, list[float]] = field(default_factory=dict)
    usage_gini: float = 0.0

    @property
    def total_nu(self) -> float:
        return sum(self.nu.values())

    @property
    def total_jobs(self) -> int:
        return sum(self.jobs.values())

    @property
    def total_users(self) -> int:
        return sum(self.users.values())

    def jobs_per_user(self, modality: Modality) -> float:
        users = self.users.get(modality, 0)
        if users == 0:
            return 0.0
        return self.jobs.get(modality, 0) / users

    def nu_share(self, modality: Modality) -> float:
        total = self.total_nu
        if total == 0:
            return 0.0
        return self.nu.get(modality, 0.0) / total

    def size_percentile(self, modality: Modality, q: float) -> float:
        sizes = self.job_sizes.get(modality, [])
        if not sizes:
            return 0.0
        return float(np.percentile(sizes, q))

    def median_wait(self, modality: Modality) -> float:
        waits = self.wait_times.get(modality, [])
        if not waits:
            return 0.0
        return float(np.median(waits))


def compute_metrics(
    records: Iterable[UsageRecord], classification: Classification
) -> ModalityMetrics:
    """Fold classified records into the per-modality aggregates.

    ``records`` must be the same set the classification was computed over
    (every record's job id needs a label).
    """
    metrics = ModalityMetrics(
        users={m: 0 for m in MODALITY_ORDER},
        jobs={m: 0 for m in MODALITY_ORDER},
        nu={m: 0.0 for m in MODALITY_ORDER},
        job_sizes={m: [] for m in MODALITY_ORDER},
        wait_times={m: [] for m in MODALITY_ORDER},
    )
    record_list = list(records)
    per_identity_nu: dict[str, float] = {}
    for record in record_list:
        try:
            modality = classification.job_labels[record.job_id]
        except KeyError:
            raise ValueError(
                f"record for job {record.job_id} has no classification label"
            ) from None
        metrics.jobs[modality] += 1
        metrics.nu[modality] += record.charged_nu
        metrics.job_sizes[modality].append(record.cores)
        if record.wait_time is not None:
            metrics.wait_times[modality].append(record.wait_time)
        site = metrics.by_site_nu.setdefault(record.resource, {})
        site[modality] = site.get(modality, 0.0) + record.charged_nu
    for modality in classification.identity_primary.values():
        metrics.users[modality] += 1
    for identity, view in classification.views.items():
        per_identity_nu[identity] = sum(r.charged_nu for r in view.records)
    if per_identity_nu:
        metrics.usage_gini = gini(per_identity_nu.values())
    return metrics
