"""T5 — Survey ("why") vs accounting ("what"): modality shares three ways.

Shape expectation: the survey massively under-represents GATEWAY (end users
are unreachable) and over-represents BATCH (prestige self-reporting and the
exploratory->batch confusion); the accounting measurement tracks truth.
"""

from __future__ import annotations

import numpy as np

from repro.core import AttributeClassifier, SurveyInstrument
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import modality_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T5")
def run(
    days: float = 90.0, seed: int = 1, survey_seed: int = 42, **campaign_knobs
) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    truth = result.active_truth_by_identity()
    n_active = len(truth)

    true_counts = {m: 0 for m in MODALITY_ORDER}
    for modality in truth.values():
        true_counts[modality] += 1
    true_shares = {m: true_counts[m] / n_active for m in MODALITY_ORDER}

    measured = AttributeClassifier().classify(result.records).users_by_modality()
    n_measured = sum(measured.values())
    measured_shares = {
        m: (measured[m] / n_measured if n_measured else 0.0)
        for m in MODALITY_ORDER
    }

    survey = SurveyInstrument(np.random.default_rng(survey_seed))
    outcome = survey.run(truth)
    survey_shares = outcome.reported_shares()

    def pct(shares):
        return {m: f"{100 * shares[m]:.1f}%" for m in MODALITY_ORDER}

    text = modality_table(
        {
            "true share": pct(true_shares),
            "accounting share": pct(measured_shares),
            "survey share": pct(survey_shares),
        },
        title=(
            f"T5 — Modality shares: truth vs accounting vs survey "
            f"({n_active} active users; survey response rate "
            f"{100 * outcome.response_rate:.0f}%)"
        ),
    )
    return ExperimentOutput(
        experiment_id="T5",
        title="Survey self-reports vs accounting measurement",
        text=text,
        data={
            "true_shares": {m.value: true_shares[m] for m in MODALITY_ORDER},
            "measured_shares": {
                m.value: measured_shares[m] for m in MODALITY_ORDER
            },
            "survey_shares": {
                m.value: survey_shares[m] for m in MODALITY_ORDER
            },
            "response_rate": outcome.response_rate,
        },
    )


def _campaigns(params: dict) -> list:
    """T5's campaign: every knob except ``survey_seed`` (survey-side only)."""
    knobs = {k: v for k, v in params.items() if k != "survey_seed"}
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T5", _campaigns)
