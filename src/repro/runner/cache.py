"""On-disk result cache for experiment tasks.

Layout: one checksummed pickle per task under the cache root, named by the
hex cache key.  The key is ``sha256(experiment_id | params-json | seed |
code-version)`` where *params-json* is a canonical JSON rendering (sorted
keys, tuples as lists) and *code-version* is a digest over every ``repro``
source file — so editing any module invalidates the whole cache rather than
serving results computed by old code.

Entry format (robustness first — the cache must never crash a sweep):

* bytes 0–3: magic ``b"RPC1"``;
* bytes 4–35: SHA-256 of the payload;
* bytes 36–: the pickled payload.

Reads verify the checksum; a damaged or foreign entry is **quarantined**
(moved into ``<root>/quarantine/``) and counted, never raised — the caller
just sees a miss and recomputes.  Writes go to a temp file *in the cache
directory* (same filesystem, so the final rename is atomic), are fsynced
before the rename, and the directory is fsynced after it: a crash mid-write
can never leave a torn entry behind.

The cache root resolves, in order: explicit argument, ``REPRO_CACHE_DIR``,
``$XDG_CACHE_HOME/repro``, ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.obs.metrics import CounterAttr, MetricsRegistry

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_params",
    "code_version",
    "default_cache_dir",
    "read_entry",
]

_SUFFIX = ".pkl"
_MAGIC = b"RPC1"
_DIGEST_BYTES = 32
QUARANTINE_DIR = "quarantine"
_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package sources (memoized)."""
    global _code_version_memo
    if _code_version_memo is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_memo = digest.hexdigest()[:16]
    return _code_version_memo


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def canonical_params(params: dict) -> str:
    """Stable JSON for hashing: sorted keys; tuples collapse to lists."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def read_entry(path: Path) -> Any:
    """Load one checksummed entry; raises ``ValueError`` on any damage."""
    blob = Path(path).read_bytes()
    if len(blob) < len(_MAGIC) + _DIGEST_BYTES or not blob.startswith(_MAGIC):
        raise ValueError(f"{path}: not a checksummed cache entry")
    digest = blob[len(_MAGIC) : len(_MAGIC) + _DIGEST_BYTES]
    payload = blob[len(_MAGIC) + _DIGEST_BYTES :]
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError(f"{path}: checksum mismatch")
    return pickle.loads(payload)


class CacheStats:
    """Hit/miss/write/quarantine counters for one runner invocation.

    Registry-backed: the four counters are ``cache.*`` cells in a
    :class:`MetricsRegistry` (a private one by default, or the run-wide
    registry when ``metrics`` is passed), read and written through the
    same attribute API the old plain-int dataclass exposed.
    """

    hits = CounterAttr("_hits")
    misses = CounterAttr("_misses")
    writes = CounterAttr("_writes")
    quarantined = CounterAttr("_quarantined")

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        writes: int = 0,
        quarantined: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        scope = registry.scoped("cache")
        self._hits = scope.counter("hits")
        self._misses = scope.counter("misses")
        self._writes = scope.counter("writes")
        self._quarantined = scope.counter("quarantined")
        for cell, value in (
            (self._hits, hits),
            (self._misses, misses),
            (self._writes, writes),
            (self._quarantined, quarantined),
        ):
            if value:
                cell.inc(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"writes={self.writes}, quarantined={self.quarantined})"
        )

    def __str__(self) -> str:
        text = f"{self.hits} hits, {self.misses} misses"
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


@dataclass
class ResultCache:
    """Checksummed pickle-per-task cache; see module docstring."""

    root: Path = field(default_factory=default_cache_dir)
    version: str = field(default_factory=code_version)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def key(self, experiment_id: str, params: dict, seed: int) -> str:
        material = "\0".join(
            [experiment_id, canonical_params(params), str(int(seed)), self.version]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def get(self, experiment_id: str, params: dict, seed: int) -> tuple[bool, Any]:
        """``(hit, value)`` — a damaged entry is quarantined and is a miss."""
        path = self._path(self.key(experiment_id, params, seed))
        if path.exists():
            try:
                value = read_entry(path)
            except Exception:
                self._quarantine(path)
            else:
                self.stats.hits += 1
                return True, value
        self.stats.misses += 1
        return False, None

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside (forensics beat deletion) and count it."""
        self.stats.quarantined += 1
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_root / path.name)
        except OSError:
            # Quarantine is best-effort; never let it raise into a sweep.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def put(self, experiment_id: str, params: dict, seed: int, value: Any) -> None:
        """Store atomically: temp file in the cache dir, fsync, rename, fsync.

        The temp file lives in the cache directory itself so the final
        ``os.replace`` stays on one filesystem (rename atomicity); the entry
        is fsynced before the rename and the directory after, so a crash at
        any instant leaves either the old state or the complete new entry —
        never a torn one.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        key = self.key(experiment_id, params, seed)
        path = self._path(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=_SUFFIX + ".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            self._fsync_dir()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self._chaos_corrupt(path, key)

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. platforms without dir fds
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _chaos_corrupt(self, path: Path, key: str) -> None:
        """Chaos-harness hook: maybe damage the entry we just wrote."""
        from repro.runner.chaos import chaos_from_env, maybe_corrupt_entry

        config = chaos_from_env()
        if config.corrupt:
            maybe_corrupt_entry(config, path, key)

    # -- maintenance ---------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*{_SUFFIX}"))

    def quarantined_entries(self) -> list[Path]:
        if not self.quarantine_root.is_dir():
            return []
        return sorted(self.quarantine_root.glob(f"*{_SUFFIX}"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry (quarantined ones included); returns the count."""
        removed = 0
        for path in self.entries() + self.quarantined_entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
