"""Property-based SWF round-trip tests over generated records."""

import io

from hypothesis import given, settings, strategies as st

from repro.infra.accounting import UsageRecord
from repro.infra.job import JobState
from repro.workloads import records_to_swf, swf_to_records


@st.composite
def usage_records(draw):
    job_id = draw(st.integers(min_value=1, max_value=10**6))
    submit = draw(st.integers(min_value=0, max_value=10**6))
    ran = draw(st.booleans())
    wait = draw(st.integers(min_value=0, max_value=10**5)) if ran else None
    elapsed = draw(st.integers(min_value=1, max_value=10**5)) if ran else 0
    cores = draw(st.integers(min_value=1, max_value=4096))
    state = draw(
        st.sampled_from(
            [JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED]
        )
        if ran
        else st.just(JobState.CANCELLED)
    )
    attributes = draw(
        st.dictionaries(
            st.sampled_from(["ensemble_id", "workflow_id", "gateway_user"]),
            st.text(alphabet="abc123", min_size=1, max_size=8),
            max_size=2,
        )
    )
    start = None if wait is None else float(submit + wait)
    end = float(submit) if start is None else start + elapsed
    return UsageRecord(
        job_id=job_id,
        user=draw(st.sampled_from(["alice", "bob", "gw_portal"])),
        account="acct",
        resource=draw(st.sampled_from(["ranger", "kraken"])),
        queue_name="normal",
        cores=cores,
        requested_walltime=float(elapsed + draw(st.integers(0, 1000))),
        submit_time=float(submit),
        start_time=start,
        end_time=end,
        final_state=state,
        charged_nu=cores * elapsed / 3600.0,
        attributes=attributes,
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(usage_records(), min_size=1, max_size=25,
                unique_by=lambda r: r.job_id))
def test_swf_round_trip_property(records):
    """Property: SWF round trip preserves identity, shape and attributes."""
    buffer = io.StringIO()
    assert records_to_swf(records, buffer) == len(records)
    buffer.seek(0)
    parsed = {r.job_id: r for r in swf_to_records(buffer)}
    assert set(parsed) == {r.job_id for r in records}
    for record in records:
        got = parsed[record.job_id]
        assert got.user == record.user
        assert got.resource == record.resource
        assert got.cores == record.cores
        assert got.attributes == record.attributes
        assert abs(got.submit_time - record.submit_time) <= 1.0
        if record.ran:
            assert got.ran
            assert abs(got.elapsed - record.elapsed) <= 1.5
        else:
            assert not got.ran
