"""Tests for fault injection and pilot jobs."""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import Job, JobState
from repro.infra.pilot import PilotTask
from repro.infra.units import DAY, HOUR
from repro.sim import Simulator


def make_site(nodes=8, cores_per_node=4):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"u"})
    central = I.CentralAccountingDB()
    cluster = I.Cluster("mach", nodes=nodes, cores_per_node=cores_per_node)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    return sim, site, central


def job(cores=4, walltime=10 * HOUR, runtime=None):
    return Job(user="u", account="acct", cores=cores, walltime=walltime,
               true_runtime=walltime if runtime is None else runtime)


# -------------------------------------------------------------------- faults


def test_fault_injector_kills_jobs_as_failed():
    sim, site, central = make_site()
    injector = I.NodeFailureInjector(
        sim,
        site.scheduler,
        np.random.default_rng(3),
        node_mtbf=20 * HOUR,  # absurdly flaky machine
        tick=0.1 * HOUR,
    )
    jobs = [job(cores=4, walltime=24 * HOUR) for _ in range(8)]
    for j in jobs:
        site.submit(j)
    sim.run(until=3 * DAY)
    assert injector.failures_injected > 0
    failed = [j for j in jobs if j.state is JobState.FAILED]
    assert len(failed) == injector.failures_injected
    # Failed jobs freed their nodes: everything eventually ran.
    assert all(j.start_time is not None for j in jobs)


def test_fault_injector_charges_partial_time():
    sim, site, central = make_site()
    I.NodeFailureInjector(
        sim, site.scheduler, np.random.default_rng(1),
        node_mtbf=5 * HOUR, tick=0.05 * HOUR,
    )
    victim = job(cores=32, walltime=100 * HOUR)
    site.submit(victim)
    sim.run(until=200 * HOUR)
    site.feed.drain()
    assert victim.state is JobState.FAILED
    record = central.all_records()[0]
    assert record.final_state is JobState.FAILED
    assert 0 < record.charged_nu < 3200  # partial, not full walltime


def test_fault_injector_reliable_machine_harmless():
    sim, site, _ = make_site()
    injector = I.NodeFailureInjector(
        sim, site.scheduler, np.random.default_rng(0),
        node_mtbf=1e12 * HOUR,
    )
    j = job(cores=4, walltime=HOUR, runtime=HOUR / 2)
    site.submit(j)
    sim.run(until=2 * HOUR)
    assert j.state is JobState.COMPLETED
    assert injector.failures_injected == 0


def test_fault_injector_validation():
    sim, site, _ = make_site()
    with pytest.raises(ValueError):
        I.NodeFailureInjector(
            sim, site.scheduler, np.random.default_rng(0), node_mtbf=0.0
        )


# -------------------------------------------------------------------- pilots


def test_pilot_runs_tasks_inside_one_job():
    sim, site, central = make_site()
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=16, walltime=10 * HOUR
    )
    for _ in range(8):
        pilot.submit_task(PilotTask(cores=4, runtime=HOUR))
    sim.run(until=2 * DAY)
    site.feed.drain()
    assert len(pilot.completed) == 8
    assert not pilot.lost
    # Accounting sees exactly one job for the whole ensemble.
    assert len(central) == 1
    record = central.all_records()[0]
    assert record.final_state is JobState.KILLED_WALLTIME
    assert record.cores == 16


def test_pilot_parallelism_bounded_by_cores():
    sim, site, _ = make_site()
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=8, walltime=10 * HOUR
    )
    # 4 two-core tasks of 1h: 4 at a time -> all done 1h after start.
    for _ in range(8):
        pilot.submit_task(PilotTask(cores=2, runtime=HOUR))
    sim.run(until=DAY)
    ends = sorted(t.finished_at for t in pilot.completed)
    assert len(ends) == 8
    start = pilot.job.start_time
    assert ends[3] == pytest.approx(start + HOUR)
    assert ends[7] == pytest.approx(start + 2 * HOUR)


def test_pilot_truncates_tasks_at_walltime():
    sim, site, _ = make_site()
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=4, walltime=2 * HOUR
    )
    for _ in range(6):
        pilot.submit_task(PilotTask(cores=4, runtime=HOUR))
    sim.run(until=DAY)
    assert len(pilot.completed) == 2  # one per hour of pilot lifetime
    assert len(pilot.lost) == 4


def test_pilot_tasks_can_be_submitted_while_active():
    sim, site, _ = make_site()
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=4, walltime=5 * HOUR
    )

    def late_submitter(sim):
        yield sim.timeout(2 * HOUR)
        pilot.submit_task(PilotTask(cores=4, runtime=HOUR))

    sim.process(late_submitter(sim))
    sim.run(until=DAY)
    assert len(pilot.completed) == 1


def test_pilot_task_validation():
    with pytest.raises(ValueError):
        PilotTask(cores=0, runtime=10.0)
    with pytest.raises(ValueError):
        PilotTask(cores=1, runtime=0.0)
    sim, site, _ = make_site()
    pilot = I.PilotManager(sim).launch(
        site, user="u", account="acct", cores=4, walltime=HOUR
    )
    with pytest.raises(ValueError):
        pilot.submit_task(PilotTask(cores=8, runtime=10.0))


def test_pilot_never_starting_loses_all_tasks():
    sim, site, _ = make_site(nodes=1, cores_per_node=1)
    blocker = job(cores=1, walltime=100 * HOUR)
    site.submit(blocker)
    manager = I.PilotManager(sim)
    pilot = manager.launch(
        site, user="u", account="acct", cores=1, walltime=HOUR
    )
    pilot.submit_task(PilotTask(cores=1, runtime=600.0))
    site.cancel(pilot.job)
    sim.run(until=10 * HOUR)
    assert not pilot.is_active
    assert len(pilot.lost) == 1
    assert not pilot.completed


def test_wait_for_start_event():
    sim, site, _ = make_site(nodes=1, cores_per_node=1)
    blocker = job(cores=1, walltime=2 * HOUR, runtime=2 * HOUR)
    waiter = job(cores=1, walltime=HOUR)
    site.submit(blocker)
    site.submit(waiter)
    log = []

    def watch(sim):
        started = yield site.scheduler.wait_for_start(waiter)
        log.append((sim.now, started.job_id if started else None))

    sim.process(watch(sim))
    sim.run(until=10 * HOUR)
    assert log == [(2 * HOUR, waiter.job_id)]
