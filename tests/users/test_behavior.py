"""Behaviour-process tests: each modality leaves its expected fingerprint."""

import numpy as np
import pytest

from repro.core.modalities import Modality
from repro.infra.job import AttributeKeys, JobState
from repro.infra.units import DAY, HOUR, MINUTE
from repro.users.behavior import sample_job
from repro.users.population import PopulationSpec, User
from repro.users.profiles import DEFAULT_PROFILES
from repro.workloads import ScenarioConfig, run_scenario


def _user(modality=Modality.BATCH):
    return User(
        user_id="u1",
        modality=modality,
        field="Physics",
        account="TG-U1",
        home_site="ranger",
    )


def test_sample_job_respects_profile_bounds():
    rng = np.random.default_rng(0)
    profile = DEFAULT_PROFILES[Modality.BATCH]
    for _ in range(100):
        job = sample_job(rng, profile, _user())
        assert profile.min_cores <= job.cores <= profile.max_cores
        assert job.walltime >= 60.0
        assert job.true_runtime > 0
        assert job.true_modality == "batch"


def test_sample_job_core_cap():
    rng = np.random.default_rng(0)
    profile = DEFAULT_PROFILES[Modality.BATCH]
    for _ in range(50):
        job = sample_job(rng, profile, _user(), max_cores_cap=16)
        assert job.cores <= 16


def test_sample_job_failures_end_early():
    rng = np.random.default_rng(0)
    profile = DEFAULT_PROFILES[Modality.EXPLORATORY]
    failing = [
        sample_job(rng, profile, _user(Modality.EXPLORATORY)) for _ in range(300)
    ]
    failed = [j for j in failing if j.will_fail]
    fine = [j for j in failing if not j.will_fail]
    assert failed and fine
    assert np.median([j.true_runtime for j in failed]) < np.median(
        [j.true_runtime for j in fine]
    )


@pytest.fixture(scope="module")
def scenario():
    """One shared 20-day small-federation run for fingerprint checks."""
    return run_scenario(
        ScenarioConfig(
            scale="small",
            days=20,
            seed=7,
            population=PopulationSpec(scale=0.05, n_gateways=2),
        )
    )


def records_of_modality(scenario, modality):
    truth = scenario.truth_by_job()
    return [
        r for r in scenario.records if truth[r.job_id] is modality
    ]


def test_every_modality_produced_jobs(scenario):
    truth = scenario.truth_by_job()
    seen = {m for m in truth.values()}
    assert seen == set(Modality)


def test_batch_jobs_are_long_and_reliable(scenario):
    records = records_of_modality(scenario, Modality.BATCH)
    elapsed = np.median([r.elapsed for r in records if r.ran])
    failures = sum(
        1 for r in records if r.final_state is not JobState.COMPLETED
    ) / len(records)
    assert elapsed > HOUR
    assert failures < 0.25


def test_exploratory_jobs_are_short_and_flaky(scenario):
    records = records_of_modality(scenario, Modality.EXPLORATORY)
    batch = records_of_modality(scenario, Modality.BATCH)
    assert np.median([r.elapsed for r in records if r.ran]) < 30 * MINUTE
    expl_failures = sum(
        1 for r in records if r.final_state in (JobState.FAILED, JobState.KILLED_WALLTIME)
    ) / len(records)
    batch_failures = sum(
        1 for r in batch if r.final_state in (JobState.FAILED, JobState.KILLED_WALLTIME)
    ) / len(batch)
    assert expl_failures > 2 * batch_failures


def test_gateway_jobs_carry_attributes_and_community_identity(scenario):
    records = records_of_modality(scenario, Modality.GATEWAY)
    assert records
    for record in records:
        assert record.attributes[AttributeKeys.SUBMIT_INTERFACE] == "gateway"
        assert record.user.startswith("gw_")
        assert AttributeKeys.GATEWAY_USER in record.attributes  # coverage=1.0


def test_ensemble_jobs_grouped(scenario):
    records = records_of_modality(scenario, Modality.ENSEMBLE)
    assert records
    grouped = [
        r
        for r in records
        if AttributeKeys.ENSEMBLE_ID in r.attributes
        or AttributeKeys.WORKFLOW_ID in r.attributes
    ]
    assert len(grouped) == len(records)
    # both submission paths occur
    assert any(AttributeKeys.ENSEMBLE_ID in r.attributes for r in records)
    assert any(AttributeKeys.WORKFLOW_ID in r.attributes for r in records)


def test_viz_jobs_use_interactive_queue(scenario):
    records = records_of_modality(scenario, Modality.VIZ)
    assert records
    for record in records:
        assert record.queue_name == "interactive"


def test_coupled_jobs_synchronized_across_sites(scenario):
    records = records_of_modality(scenario, Modality.COUPLED)
    assert records
    by_coalloc = {}
    for record in records:
        key = record.attributes[AttributeKeys.COALLOCATION_ID]
        by_coalloc.setdefault(key, []).append(record)
    for group in by_coalloc.values():
        ran = [r for r in group if r.ran]
        if len(ran) >= 2:
            starts = [r.start_time for r in ran]
            assert max(starts) - min(starts) < 1.0
            assert len({r.resource for r in ran}) >= 2


def test_gram_and_login_both_used(scenario):
    interfaces = {
        r.attributes.get(AttributeKeys.SUBMIT_INTERFACE)
        for r in scenario.records
    }
    assert "login" in interfaces
    assert "gram" in interfaces


def test_charges_were_applied(scenario):
    assert scenario.ledger.total_charged() > 0
    assert scenario.central.total_nu() == pytest.approx(
        scenario.ledger.total_charged()
    )
