"""Tests for the campaign artifact store and the CampaignKey/Artifact types."""

import pickle

import pytest

from repro.runner import artifacts as artifact_mod
from repro.runner.artifacts import (
    ArtifactStore,
    default_artifact_dir,
    stats_delta,
    stats_snapshot,
)
from repro.runner.cache import code_version
from repro.workloads import run_scenario
from repro.workloads.synthetic import CampaignArtifact, CampaignKey


@pytest.fixture(scope="module")
def key():
    return CampaignKey.make(days=3.0, seed=7, population_scale=0.02)


@pytest.fixture(scope="module")
def live_result(key):
    # Job ids come from a process-global counter, so a re-simulation of the
    # same config is NOT record-identical; fidelity is always measured
    # against the exact result the artifact was extracted from.
    return run_scenario(key.config())


@pytest.fixture(scope="module")
def artifact(key, live_result):
    return CampaignArtifact.from_result(live_result, key=key)


# -- key canonicalization (the _campaign_cache normalization regression) -------

def test_campaign_key_canonicalizes_int_days():
    # days=90 (int) and days=90.0 (float) historically produced distinct
    # memo entries and therefore duplicate simulations.
    assert CampaignKey.make(days=90, seed=1) == CampaignKey.make(days=90.0, seed=1)


def test_campaign_key_canonicalizes_population_scale_and_seed():
    a = CampaignKey.make(days=10, seed=1.0, population_scale=1)
    b = CampaignKey.make(days=10.0, seed=1, population_scale=1.0)
    assert a == b
    assert isinstance(a.seed, int)
    assert isinstance(a.population_scale, float)


def test_distinct_knobs_stay_distinct():
    base = CampaignKey.make(days=10.0, seed=1)
    assert CampaignKey.make(days=10.0, seed=2) != base
    assert CampaignKey.make(days=10.0, seed=1, gateway_tagging_coverage=0.5) != base


def test_key_config_roundtrip(key):
    config = key.config()
    assert config.days == key.days
    assert config.seed == key.seed
    assert config.population.scale == key.population_scale


def test_spelling_variants_share_one_store_path(tmp_path):
    store = ArtifactStore(root=tmp_path)
    a = CampaignKey.make(days=45, seed=3, population_scale=1)
    b = CampaignKey.make(days=45.0, seed=3, population_scale=1.0)
    assert store.path_for(a) == store.path_for(b)


# -- artifact round-trip fidelity ----------------------------------------------

def test_artifact_mirrors_every_live_measurement(key, artifact, live_result):
    """Every measurement the experiments take must be equal live vs artifact."""
    result = live_result
    assert artifact.records == result.records
    assert artifact.truth_by_job() == result.truth_by_job()
    assert artifact.truth_by_identity() == result.truth_by_identity()
    # Ordering matters too: dict iteration order feeds report rendering.
    assert list(artifact.active_truth_by_identity()) == list(
        result.active_truth_by_identity()
    )
    assert artifact.active_truth_by_identity() == result.active_truth_by_identity()
    assert artifact.community_accounts == frozenset(result.community_accounts)
    assert artifact.central.total_nu() == result.central.total_nu()
    assert artifact.central.all_records() == result.central.all_records()
    assert len(artifact.central) == len(result.central.all_records())
    live_transfers = result.network.completed_transfers
    assert len(artifact.network.completed_transfers) == len(live_transfers)
    for summary, live in zip(artifact.network.completed_transfers, live_transfers):
        assert (summary.src, summary.dst, summary.size_bytes) == (
            live.src, live.dst, live.size_bytes
        )
        assert summary.tag == live.tag
        assert summary.duration == live.duration
    assert artifact.config == result.config


def test_stored_then_loaded_artifact_is_equal(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.save(key, artifact)
    loaded = ArtifactStore(root=tmp_path).load(key)  # fresh memo: disk path
    assert loaded is not None
    assert loaded.records == artifact.records
    assert loaded.job_truth == artifact.job_truth
    assert loaded.identity_truth == artifact.identity_truth
    assert list(loaded.identity_truth) == list(artifact.identity_truth)
    assert loaded.active_identities == artifact.active_identities
    assert loaded.community_accounts == artifact.community_accounts
    assert loaded.total_nu == artifact.total_nu
    assert loaded.transfers == artifact.transfers
    assert loaded.key == key


# -- store mechanics -----------------------------------------------------------

def test_has_and_load_miss(tmp_path, key):
    store = ArtifactStore(root=tmp_path)
    assert not store.has(key)
    assert store.load(key) is None


def test_save_makes_key_visible_to_other_store_instances(tmp_path, key, artifact):
    ArtifactStore(root=tmp_path).save(key, artifact)
    assert ArtifactStore(root=tmp_path).has(key)


def test_loads_are_memoized_per_store(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.save(key, artifact)
    reader = ArtifactStore(root=tmp_path)
    before = stats_snapshot()
    first = reader.load(key)
    second = reader.load(key)
    assert first is second  # deserialized once, served from the memo after
    assert stats_delta(before).get("loads") == 1


def test_corrupted_artifact_is_quarantined_and_a_miss(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.save(key, artifact)
    path = store.path_for(key)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))

    reader = ArtifactStore(root=tmp_path)
    before = stats_snapshot()
    assert reader.load(key) is None
    assert not path.exists()  # moved aside, not left to fail again
    assert len(reader.quarantined_entries()) == 1
    assert not reader.has(key)
    delta = stats_delta(before)
    assert delta.get("quarantined") == 1
    assert "loads" not in delta  # a quarantine is not a successful load


def test_wrong_payload_type_is_quarantined(tmp_path, key):
    store = ArtifactStore(root=tmp_path)
    path = store.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps({"not": "an artifact"}, protocol=pickle.HIGHEST_PROTOCOL)
    import hashlib

    path.write_bytes(b"RPC1" + hashlib.sha256(payload).digest() + payload)
    assert ArtifactStore(root=tmp_path).load(key) is None
    assert len(store.quarantined_entries()) == 1


def test_gc_prunes_only_stale_code_versions(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.save(key, artifact)
    stale = tmp_path / "0123456789abcdef" / "feedface-s1.pkl"
    stale.parent.mkdir(parents=True)
    stale.write_bytes(b"old bytes")
    assert len(store.entries()) == 2

    removed = store.gc()
    assert removed == 1
    assert not stale.exists()
    assert not stale.parent.exists()  # emptied version dir removed too
    assert store.has(key)  # current version untouched


def test_gc_leaves_quarantine_alone(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.quarantine_root.mkdir(parents=True)
    (store.quarantine_root / "damaged.pkl").write_bytes(b"x")
    assert store.gc() == 0
    assert len(store.quarantined_entries()) == 1


def test_clear_removes_everything(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    store.save(key, artifact)
    store.quarantine_root.mkdir(parents=True, exist_ok=True)
    (store.quarantine_root / "damaged.pkl").write_bytes(b"x")
    assert store.clear() == 2
    assert store.entries() == []
    assert not store.has(key)


def test_size_bytes_counts_stored_artifacts(tmp_path, key, artifact):
    store = ArtifactStore(root=tmp_path)
    assert store.size_bytes() == 0
    store.save(key, artifact)
    assert store.size_bytes() == store.path_for(key).stat().st_size


def test_store_version_is_code_version(tmp_path):
    assert ArtifactStore(root=tmp_path).version == code_version()


# -- active-store plumbing -----------------------------------------------------

def test_default_artifact_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "elsewhere"))
    assert default_artifact_dir() == tmp_path / "elsewhere"


def test_ensure_active_store_reuses_per_root(monkeypatch, tmp_path):
    monkeypatch.setattr(artifact_mod, "_active", None)
    first = artifact_mod.ensure_active_store(tmp_path / "a")
    assert artifact_mod.ensure_active_store(tmp_path / "a") is first
    second = artifact_mod.ensure_active_store(tmp_path / "b")
    assert second is not first
    assert artifact_mod.active_store() is second


def test_activated_store_scopes_and_restores(monkeypatch, tmp_path):
    monkeypatch.setattr(artifact_mod, "_active", None)
    store = ArtifactStore(root=tmp_path)
    with artifact_mod.activated_store(store):
        assert artifact_mod.active_store() is store
    assert artifact_mod.active_store() is None
    with artifact_mod.activated_store(None):  # None leaves things untouched
        assert artifact_mod.active_store() is None


def test_stats_delta_empty_when_nothing_happened():
    before = stats_snapshot()
    assert stats_delta(before) == {}
