"""Tests for the simulation engine: clock, ordering, run modes."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Simulator, SimulationError, StopSimulation


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_can_be_set():
    assert Simulator(start_time=100.0).now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc(sim):
        yield sim.timeout(5.0)
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [5.0]


def test_run_until_time_sets_clock_exactly():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_time_does_not_fire_later_events():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append("early")
        yield sim.timeout(10.0)
        fired.append("late")

    sim.process(proc(sim))
    sim.run(until=7.0)
    assert fired == ["early"]
    # later event still pending; continue run
    sim.run(until=20.0)
    assert fired == ["early", "late"]


def test_run_until_past_raises():
    sim = Simulator(start_time=50.0)
    with pytest.raises(SimulationError):
        sim.run(until=10.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def producer(sim):
        yield sim.timeout(3.0)
        return "result"

    proc = sim.process(producer(sim))
    assert sim.run(until=proc) == "result"
    assert sim.now == 3.0


def test_run_until_event_reraises_failure():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    proc = sim.process(boom(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=proc)


def test_run_until_event_never_triggering_raises():
    sim = Simulator()
    never = sim.event()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_exhausted_run_until_event_detaches_the_absorber():
    """Regression: run(until=event) used to leave its failure-absorbing
    callback attached after exhausting the heap, so a *later* failure of
    that event was silently defused instead of raised."""
    sim = Simulator()
    never = sim.event()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    with pytest.raises(SimulationError):
        sim.run(until=never)

    never.fail(RuntimeError("late failure"))
    with pytest.raises(RuntimeError, match="late failure"):
        sim.run()


def test_stop_simulation_during_run_until_event_detaches_the_absorber():
    sim = Simulator()
    target = sim.event()

    def stopper(sim):
        yield sim.timeout(1.0)
        raise StopSimulation

    sim.process(stopper(sim))
    assert sim.run(until=target) is None

    target.fail(RuntimeError("failed after stop"))
    with pytest.raises(RuntimeError, match="failed after stop"):
        sim.run()


def test_run_until_failing_event_raises_exactly_once():
    """The double-raise path: step() must stay silent (the absorber defuses
    the failure) so run() is the single place the exception surfaces."""
    sim = Simulator()
    target = sim.event()

    def failer(sim):
        yield sim.timeout(1.0)
        target.fail(RuntimeError("boom"))

    sim.process(failer(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=target)
    # The failure was delivered and defused; a further run() is clean.
    assert sim.run() is None


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(boom(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_step_on_empty_heap_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_reports_next_event_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(4.0)

    sim.process(proc(sim))
    sim.step()  # process initialization event at t=0
    assert sim.peek() == 4.0


def test_stop_simulation_exits_run():
    sim = Simulator()
    log = []

    def stopper(sim):
        yield sim.timeout(2.0)
        log.append("stopping")
        raise StopSimulation

    def other(sim):
        yield sim.timeout(5.0)
        log.append("should not run")

    sim.process(stopper(sim))
    sim.process(other(sim))
    sim.run()
    assert log == ["stopping"]
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_clock_is_monotone_over_random_timeouts(delays):
    """Property: the simulation clock never goes backwards."""
    sim = Simulator()
    observed = []

    def waiter(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(sim, delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 1000)),
                min_size=1, max_size=40))
def test_events_fire_in_time_order(pairs):
    """Property: firing order sorts by time, FIFO within equal times."""
    sim = Simulator()
    fired = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        fired.append((sim.now, tag))

    for tag, (delay, _salt) in enumerate(pairs):
        sim.process(waiter(sim, delay, tag))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # FIFO among equal-time events: tags at equal time ascend
    for i in range(1, len(fired)):
        if fired[i][0] == fired[i - 1][0]:
            assert fired[i][1] > fired[i - 1][1]


# -- empty-heap peek ----------------------------------------------------------

def test_peek_on_empty_heap_raises():
    with pytest.raises(SimulationError, match="empty event heap"):
        Simulator().peek()


def test_peek_on_exhausted_heap_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.peek()


# -- the coalesced timer wheel ------------------------------------------------

from repro.sim import WHEEL_TICK  # noqa: E402


def _firing_order(wheel, delays):
    """Run one workload and return the (time, tag) firing sequence."""
    sim = Simulator(wheel=wheel)
    fired = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        fired.append((sim.now, tag))

    for tag, delay in enumerate(delays):
        sim.process(waiter(sim, delay, tag))
    sim.run()
    return fired


def test_wheel_buckets_far_timeouts():
    sim = Simulator(wheel=True)
    for _ in range(5):
        sim.timeout(3.0 * WHEEL_TICK)
    assert sim._wheel_count == 5
    # One bucket -> one marker; logical count still sees all five.
    assert len(sim._wheel) == 1
    assert len(sim) == 5


def test_wheel_disabled_keeps_plain_heap():
    sim = Simulator(wheel=False)
    for _ in range(5):
        sim.timeout(3.0 * WHEEL_TICK)
    assert sim._wheel_count == 0
    assert len(sim) == 5


def test_near_timeouts_bypass_the_wheel():
    sim = Simulator(wheel=True)
    sim.timeout(WHEEL_TICK)  # below the 2-tick coalescing floor
    assert sim._wheel_count == 0


def test_wheel_preserves_firing_order():
    # Far timeouts (bucketed), near ones (plain heap), and exact ties that
    # land in the same bucket: pop order must be byte-for-byte the no-wheel
    # order, including FIFO among equal times.
    delays = [
        5.0 * WHEEL_TICK,
        1.0,
        5.0 * WHEEL_TICK,  # tie with tag 0 in the same bucket
        2.5 * WHEEL_TICK,
        0.0,
        7.25 * WHEEL_TICK,
        2.5 * WHEEL_TICK + 0.125,
    ]
    assert _firing_order(True, delays) == _firing_order(False, delays)


def test_wheel_peek_settles_buckets():
    sim = Simulator(wheel=True)
    sim.timeout(2.0 * WHEEL_TICK)
    # The marker sits at the bucket *start* (1800.0 here); peek must report
    # the real event's time, not the marker's.
    assert sim.peek() == 2.0 * WHEEL_TICK


def test_wheel_run_until_horizon_between_marker_and_event():
    sim = Simulator(wheel=True)
    fired = []

    def proc(sim):
        yield sim.timeout(2.5 * WHEEL_TICK)
        fired.append(sim.now)

    sim.process(proc(sim))
    # Horizon past the bucket start (2 ticks) but before the event (2.5).
    sim.run(until=2.25 * WHEEL_TICK)
    assert fired == []
    assert sim.now == 2.25 * WHEEL_TICK
    sim.run(until=3.0 * WHEEL_TICK)
    assert fired == [2.5 * WHEEL_TICK]


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
def test_wheel_equivalence_over_random_delays(ticks):
    """Property: wheel on/off produce identical firing sequences."""
    delays = [t * WHEEL_TICK for t in ticks]
    assert _firing_order(True, delays) == _firing_order(False, delays)
