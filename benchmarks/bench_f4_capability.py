"""Bench F4: regenerate the capability-policy comparison sweep."""


def test_f4_capability(regenerate):
    output = regenerate("F4")
    # At low hero demand the reactive policy holds its own...
    low = output.data[1]
    assert low["easy"]["utilization"] >= low["drain"]["utilization"] - 0.02
    # ...and the weekly drain wins once hero demand is high (the crossover).
    crossover = output.data["crossover_per_week"]
    assert crossover is not None and crossover <= 6
    high = output.data[6]
    assert high["drain"]["utilization"] > high["easy"]["utilization"]
