"""The compute hardware of one resource provider.

A :class:`Cluster` is a pool of identical nodes.  Jobs are placed with node
granularity (a job occupying any core of a node owns the whole node, the
normal space-sharing discipline of 2010-era capability systems), while
charging remains per requested core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """Static description of a machine: ``nodes`` x ``cores_per_node``.

    ``nu_per_core_hour`` is the TeraGrid normalization factor of this system
    (how many normalized units one core-hour here is worth).
    """

    name: str
    nodes: int
    cores_per_node: int
    nu_per_core_hour: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("cluster needs >= 1 node and >= 1 core per node")
        if self.nu_per_core_hour <= 0:
            raise ValueError("nu_per_core_hour must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def nodes_for(self, cores: int) -> int:
        """Nodes a request for ``cores`` occupies (whole-node allocation)."""
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if cores > self.total_cores:
            raise ValueError(
                f"request for {cores} cores exceeds {self.name}'s "
                f"{self.total_cores} cores"
            )
        return math.ceil(cores / self.cores_per_node)
