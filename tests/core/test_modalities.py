"""Tests for the modality taxonomy."""

from repro.core.modalities import (
    MODALITY_ORDER,
    MODALITY_TAXONOMY,
    Modality,
)


def test_all_modalities_have_taxonomy_entries():
    assert set(MODALITY_TAXONOMY) == set(Modality)


def test_order_covers_all_modalities_once():
    assert sorted(m.value for m in MODALITY_ORDER) == sorted(
        m.value for m in Modality
    )
    assert len(MODALITY_ORDER) == len(set(MODALITY_ORDER))


def test_order_starts_with_batch_ends_with_coupled():
    assert MODALITY_ORDER[0] is Modality.BATCH
    assert MODALITY_ORDER[-1] is Modality.COUPLED


def test_labels_are_nonempty_and_distinct():
    labels = [MODALITY_TAXONOMY[m].label for m in Modality]
    assert all(labels)
    assert len(set(labels)) == len(labels)


def test_every_entry_lists_signals():
    for description in MODALITY_TAXONOMY.values():
        assert description.signals
        assert description.objective
        assert description.access


def test_label_property_shortcut():
    assert Modality.GATEWAY.label == MODALITY_TAXONOMY[Modality.GATEWAY].label
