"""Batch scheduling policies for resource-provider clusters.

* :class:`~repro.infra.scheduler.fcfs.FcfsScheduler` — strict first-come
  first-served.
* :class:`~repro.infra.scheduler.backfill.EasyBackfillScheduler` — EASY
  backfilling: the queue head gets a reservation at its earliest feasible
  start; later jobs may jump ahead only if they cannot delay it.
* :class:`~repro.infra.scheduler.fairshare.FairshareScheduler` — EASY with a
  decayed-usage priority order instead of FIFO.
* :class:`~repro.infra.scheduler.drain.WeeklyDrainScheduler` — EASY plus a
  periodic full-machine drain window reserved for capability ("hero") jobs,
  the policy NICS ran on Kraken.
"""

from repro.infra.scheduler.base import BatchScheduler, Reservation
from repro.infra.scheduler.profile import CapacityProfile
from repro.infra.scheduler.fcfs import FcfsScheduler
from repro.infra.scheduler.backfill import EasyBackfillScheduler
from repro.infra.scheduler.fairshare import FairshareScheduler
from repro.infra.scheduler.drain import WeeklyDrainScheduler

__all__ = [
    "BatchScheduler",
    "CapacityProfile",
    "EasyBackfillScheduler",
    "FairshareScheduler",
    "FcfsScheduler",
    "Reservation",
    "WeeklyDrainScheduler",
]
