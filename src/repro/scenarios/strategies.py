"""Hypothesis strategies over the whole federation-scenario space.

These draw *small* :class:`~repro.scenarios.dsl.ScenarioProgram` instances —
tiny sites, short horizons, a handful of users per modality — so one drawn
scenario simulates in tens of milliseconds and a fuzzing budget of hundreds
stays interactive.  Smallness is a speed constraint, not a coverage one: the
draws range over federation shape, modality mix, scheduler and metascheduler
policy, gateway instrumentation, outage climate and recovery discipline, so
the oracle sees combinations no hand-written experiment ever builds.

Everything here is importable by the ``repro fuzz`` CLI (hence it lives in
``src``, not ``tests``); hypothesis itself is an optional dependency, gated
at import time with a clear error.
"""

from __future__ import annotations

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - environment-dependent
    raise ImportError(
        "scenario fuzzing needs hypothesis (pip install hypothesis)"
    ) from exc

from repro.core.modalities import MODALITY_ORDER
from repro.infra.metascheduler import SelectionStrategy
from repro.scenarios.dsl import (
    SCHEDULERS,
    FederationDef,
    GatewayFleet,
    IngestFaults,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
)
from repro.users.behavior import RecoveryPolicy
from repro.workloads.scenarios import SiteSpec

__all__ = [
    "federations",
    "gateway_fleets",
    "ingest_faults",
    "modality_mixes",
    "outage_regimes",
    "recovery_suites",
    "scenario_programs",
    "site_specs",
]

#: Deterministic site-name pool (names never matter, uniqueness does).
_SITE_NAMES = tuple(f"site{i:02d}" for i in range(8))


@st.composite
def site_specs(draw, name: str) -> SiteSpec:
    """One small machine: 4-32 nodes, 2-16 cores each."""
    return SiteSpec(
        name=name,
        nodes=draw(st.integers(min_value=4, max_value=32)),
        cores_per_node=draw(st.sampled_from([2, 4, 8, 16])),
        nu_per_core_hour=draw(
            st.floats(min_value=0.5, max_value=2.5, allow_nan=False)
        ),
        wan_bandwidth=draw(
            st.sampled_from([1.25e8, 3.125e8, 6.25e8, 1.25e9])
        ),
    )


@st.composite
def federations(draw) -> FederationDef:
    """2-5 explicit tiny sites (presets are covered by the library suite)."""
    n_sites = draw(st.integers(min_value=2, max_value=5))
    sites = tuple(
        draw(site_specs(name)) for name in _SITE_NAMES[:n_sites]
    )
    return FederationDef(preset=None, sites=sites)


@st.composite
def modality_mixes(draw) -> ModalityMix:
    """A small community with 1-4 modalities present at random weights."""
    present = draw(
        st.lists(
            st.sampled_from(MODALITY_ORDER),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    weights = {
        modality: draw(st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
        for modality in present
    }
    total = draw(st.integers(min_value=len(present), max_value=16))
    return ModalityMix(total_users=total, weights=weights)


@st.composite
def gateway_fleets(draw) -> GatewayFleet:
    return GatewayFleet(
        n_gateways=draw(st.integers(min_value=1, max_value=3)),
        tagging_coverage=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        backlog=draw(st.sampled_from([0, 1, 4, 16])),
        adoption_ramp_days=draw(st.sampled_from([0.0, 1.0, 3.0])),
    )


@st.composite
def outage_regimes(draw) -> OutageRegime:
    """A hostile-but-bounded failure climate (always repairs within hours)."""
    return OutageRegime(
        site_mtbf_days=draw(st.sampled_from([0.0, 1.0, 2.0, 5.0])),
        partial_mtbf_days=draw(st.sampled_from([0.0, 1.0, 3.0])),
        partial_fraction=draw(
            st.floats(min_value=0.1, max_value=0.5, allow_nan=False)
        ),
        repair_median_hours=draw(
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
        ),
        repair_sigma=draw(
            st.floats(min_value=0.1, max_value=1.0, allow_nan=False)
        ),
        repair_min_hours=0.25,
        repair_max_hours=12.0,
        propagation_lag_minutes=draw(st.sampled_from([0.0, 5.0, 20.0])),
    )


@st.composite
def recovery_suites(draw) -> RecoverySuite:
    """Default discipline with up to two per-modality overrides."""
    overridden = draw(
        st.lists(
            st.sampled_from(MODALITY_ORDER),
            min_size=0,
            max_size=2,
            unique=True,
        )
    )
    overrides = {
        modality: RecoveryPolicy(
            resubmit=draw(st.booleans()),
            max_attempts=draw(st.integers(min_value=1, max_value=5)),
            backoff_base=draw(st.sampled_from([60.0, 300.0, 900.0])),
            backoff_factor=draw(
                st.floats(min_value=1.0, max_value=3.0, allow_nan=False)
            ),
            checkpoint_interval=draw(
                st.sampled_from([None, 1800.0, 7200.0])
            ),
        )
        for modality in overridden
    }
    return RecoverySuite(overrides=overrides)


@st.composite
def ingest_faults(draw) -> IngestFaults:
    """A dirty-but-bounded accounting link with every recovery level.

    Rates stay below ~0.4 so a short fuzz horizon still delivers *some*
    packets first-try; ``recovery`` ranges over all three levels so the
    oracle exercises fire-and-forget loss, retry convergence, and the
    audit's zero-unrecovered guarantee.
    """
    return IngestFaults(
        drop_rate=draw(st.sampled_from([0.0, 0.1, 0.25, 0.4])),
        duplicate_rate=draw(st.sampled_from([0.0, 0.1, 0.25])),
        reorder_rate=draw(st.sampled_from([0.0, 0.15, 0.3])),
        corrupt_rate=draw(st.sampled_from([0.0, 0.1, 0.25])),
        delay_mean_minutes=draw(st.sampled_from([0.0, 10.0, 45.0])),
        recovery=draw(st.sampled_from(["none", "retry", "audit"])),
        ack_timeout_minutes=draw(st.sampled_from([15.0, 30.0, 60.0])),
        max_attempts=draw(st.integers(min_value=1, max_value=5)),
    )


@st.composite
def scenario_programs(draw, max_days: float = 6.0) -> ScenarioProgram:
    """One random point in scenario space, sized for sub-second simulation."""
    has_outages = draw(st.booleans())
    outages = draw(outage_regimes()) if has_outages else None
    if outages is not None and (
        outages.site_mtbf_days == 0.0 and outages.partial_mtbf_days == 0.0
    ):
        outages = None  # both processes disabled: same as no regime
    faults = draw(ingest_faults()) if draw(st.booleans()) else None
    if faults is not None and not faults.regime().enabled:
        faults = None  # all-zero regime: same plain path as no section
    return ScenarioProgram(
        name=f"fuzz-{draw(st.integers(min_value=0, max_value=10**6))}",
        description="drawn from scenario space",
        days=draw(
            st.floats(min_value=2.0, max_value=max_days, allow_nan=False)
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        federation=draw(federations()),
        mix=draw(modality_mixes()),
        gateways=draw(gateway_fleets()),
        outages=outages,
        recovery=draw(recovery_suites()) if has_outages else None,
        ingest=faults,
        load=LoadShape(
            intensity=draw(
                st.floats(min_value=0.5, max_value=3.0, allow_nan=False)
            ),
            gateway_ramp_days=draw(st.sampled_from([0.0, 2.0])),
        ),
        scheduler=draw(st.sampled_from(sorted(SCHEDULERS))),
        metascheduler=draw(st.sampled_from(sorted(SelectionStrategy, key=lambda s: s.value))),
    )
