"""T1 — Users per modality: ground truth vs measured (the headline table).

Shape expectation (DESIGN.md §3): BATCH > EXPLORATORY > GATEWAY > ENSEMBLE ≫
VIZ > COUPLED in the truth and in the instrumented measurement; the
uninstrumented column collapses GATEWAY to the number of community accounts.
"""

from __future__ import annotations

from repro.core import AttributeClassifier, HeuristicClassifier
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import modality_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T1")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records

    truth = result.active_truth_by_identity()
    true_counts = {m: 0 for m in MODALITY_ORDER}
    for modality in truth.values():
        true_counts[modality] += 1

    instrumented = AttributeClassifier().classify(records).users_by_modality()
    uninstrumented = (
        HeuristicClassifier(known_community_accounts=result.community_accounts)
        .classify(records)
        .users_by_modality()
    )

    text = modality_table(
        {
            "true users": true_counts,
            "measured (instrumented)": instrumented,
            "measured (no attributes)": uninstrumented,
        },
        title=(
            f"T1 — Users per modality over {days:g} days "
            f"(seed {seed}; {len(truth)} active users, {len(records)} jobs)"
        ),
    )
    return ExperimentOutput(
        experiment_id="T1",
        title="Users per modality: ground truth vs measured",
        text=text,
        data={
            "true": {m.value: true_counts[m] for m in MODALITY_ORDER},
            "instrumented": {m.value: instrumented[m] for m in MODALITY_ORDER},
            "uninstrumented": {
                m.value: uninstrumented[m] for m in MODALITY_ORDER
            },
            "n_records": len(records),
        },
    )


def _campaigns(params: dict) -> list:
    """The one campaign T1's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T1", _campaigns)
