"""Statistical utilities for experiment analysis."""

from repro.analysis.stats import (
    bootstrap_ci,
    describe,
    seed_replicates,
    SummaryStats,
)

__all__ = ["SummaryStats", "bootstrap_ci", "describe", "seed_replicates"]
