"""The experiment suite: one module per table/figure of DESIGN.md §4.

Each experiment exposes ``run(**knobs) -> ExperimentOutput``; the registry
maps experiment ids to those functions so benchmarks, examples and the
command line can share one implementation.
"""

from repro.experiments.base import ExperimentOutput, campaign, registry, run_experiment
from repro.experiments import (  # noqa: F401  (registration side effects)
    t1_users,
    t2_usage,
    t3_accuracy,
    t4_sites,
    t5_survey,
    t6_fields,
    t7_gateways,
    t8_access_paths,
    f1_growth,
    f2_jobsize,
    f3_wait_times,
    f4_capability,
    f5_metascheduling,
    f6_attribute_coverage,
    f7_workflows,
    f8_pilots,
    f9_data_movement,
    a1_walltime_accuracy,
    a2_reservation_style,
    a3_checkpointing,
    a4_resilience,
    a5_ingest_robustness,
    r1_replicates,
)

__all__ = [
    "ExperimentOutput",
    "campaign",
    "registry",
    "run_experiment",
]
