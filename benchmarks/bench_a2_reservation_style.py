"""Bench A2: regenerate the reservation-style ablation."""


def test_a2_reservation_style(regenerate):
    output = regenerate("A2")
    for outcome in output.data.values():
        reactive = outcome["reactive"]["utilization"]
        sticky = outcome["sticky"]["utilization"]
        # Reactive shadows dominate sticky ones by a clear margin at
        # every walltime-accuracy level.
        assert reactive - sticky > 0.02
