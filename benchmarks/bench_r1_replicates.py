"""Bench R1: regenerate the seed-sensitivity table."""


def test_r1_replicates(regenerate):
    output = regenerate("R1")
    # The dominance ordering holds in every replicate...
    assert output.data["orderings_ok"] == output.data["n_seeds"]
    # ...and the headline counts are stable to a few users.
    for modality in ("batch", "exploratory", "gateway", "ensemble"):
        stats = output.data[modality]
        assert stats["max"] - stats["min"] <= max(4, 0.25 * stats["mean"])
