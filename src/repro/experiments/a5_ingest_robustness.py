"""A5 (ablation) — Measurement robustness under a lossy accounting exchange.

Sweeps the AMIE packet-fault climate (clean / lossy / hostile) against the
exchange's recovery discipline (fire-and-forget / ack-timeout retransmission
/ retransmission + end-of-run reconciliation audit) and measures what the
damage does to the *paper's numbers*: how many usage records survive to the
central database, how far total recorded NU drifts from the allocation
ledger's ground truth, how the modality mix skews, and whether the
attribute classifier's job accuracy suffers.

Every cell is one independent federation campaign; the fault schedule is a
pure function of the scenario seed, so the sweep is byte-identical at any
worker count and under resume/chaos.

Shape expectation (written before the first run):

* Record loss is *not* modality-neutral: all sites share one fault climate,
  but packets are batches, so the modalities concentrated in high-volume
  feeds lose disproportionately when a batch vanishes — the measured mix
  drifts even though per-record loss is unbiased.
* Classifier accuracy on the *surviving* records stays high (attributes
  travel inside the record), so the headline damage is census
  undercounting, not misclassification — measurement loses jobs, not
  labels.
* Retransmission recovers everything except packets still in flight when
  the run ends; the reconciliation audit closes that gap and drives
  unrecovered records to exactly zero, restoring NU conservation to the
  clean-cell identity.
"""

from __future__ import annotations

from repro.core.classifier import AttributeClassifier
from repro.core.evaluation import score_classification
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table, counters_footer
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    register,
    register_tasks,
    run_via_tasks,
)
from repro.infra.amie import IngestRecoveryPolicy, PacketFaultRegime
from repro.infra.units import MINUTE
from repro.users.population import PopulationSpec
from repro.workloads.synthetic import ScenarioConfig, run_scenario

__all__ = ["run"]

_SEED = 53
_DAYS = 15.0
_REGIMES = ("lossy", "hostile")
_RECOVERIES = ("none", "retry", "audit")

#: The fault climates, from a flaky WAN to an actively hostile link.
FAULT_REGIMES: dict[str, PacketFaultRegime] = {
    "lossy": PacketFaultRegime(
        drop_rate=0.10,
        duplicate_rate=0.05,
        delay_mean=15 * MINUTE,
    ),
    "hostile": PacketFaultRegime(
        drop_rate=0.30,
        duplicate_rate=0.15,
        reorder_rate=0.20,
        corrupt_rate=0.15,
        delay_mean=45 * MINUTE,
    ),
}

#: The recovery ladder the sweep climbs.
RECOVERY_POLICIES: dict[str, IngestRecoveryPolicy] = {
    "none": IngestRecoveryPolicy(retransmit=False, reconcile=False),
    "retry": IngestRecoveryPolicy(retransmit=True, reconcile=False),
    "audit": IngestRecoveryPolicy(retransmit=True, reconcile=True),
}


def _cells(regimes: tuple[str, ...], recoveries: tuple[str, ...]):
    """Cell grid: the clean baseline, then fault regime x recovery level."""
    cells: list[tuple[str | None, str]] = [(None, "none")]
    for regime in regimes:
        for recovery in recoveries:
            cells.append((regime, recovery))
    return cells


def _cell_label(regime: str | None, recovery: str) -> str:
    if regime is None:
        return "clean"
    return f"{regime} / {recovery}"


def _nu_by_modality_truth(result) -> dict[str, float]:
    """Ground-truth NU per modality, straight from the terminal jobs."""
    shares = {m.value: 0.0 for m in MODALITY_ORDER}
    for provider in result.providers:
        for job in provider.scheduler.completed:
            if job.true_modality in shares:
                shares[job.true_modality] += job.charged_nu or 0.0
    return shares


def _nu_by_modality_measured(result, classification) -> dict[str, float]:
    """NU per modality as the central database + classifier see it."""
    shares = {m.value: 0.0 for m in MODALITY_ORDER}
    for record in result.records:
        label = classification.job_labels.get(record.job_id)
        if label is not None and label.value in shares:
            shares[label.value] += record.charged_nu
    return shares


def _tv_distance(truth: dict[str, float], measured: dict[str, float]) -> float:
    """Total-variation distance between two NU-share distributions."""
    t_total = sum(truth.values())
    m_total = sum(measured.values())
    if t_total <= 0 or m_total <= 0:
        return 0.0
    return 0.5 * sum(
        abs(truth[key] / t_total - measured.get(key, 0.0) / m_total)
        for key in truth
    )


def _run_cell(regime: str | None, recovery: str, days: float, seed: int) -> dict:
    faults = None if regime is None else FAULT_REGIMES[regime]
    policy = RECOVERY_POLICIES[recovery] if regime is not None else None
    result = run_scenario(
        ScenarioConfig(
            scale="small",
            days=days,
            seed=seed,
            population=PopulationSpec(scale=0.05),
            packet_faults=faults,
            ingest_recovery=policy,
        )
    )

    published = sum(p.records_emitted for p in result.providers)
    delivered = len(result.central)
    charged = result.ledger.total_charged()
    recorded = result.central.total_nu()
    nu_err = abs(charged - recorded) / charged if charged > 0 else 0.0

    classification = AttributeClassifier().classify(result.records)
    confusion = score_classification(classification, result.truth_by_job())
    drift = _tv_distance(
        _nu_by_modality_truth(result),
        _nu_by_modality_measured(result, classification),
    )

    endpoint = result.amie_endpoint
    reconciliation = result.reconciliation
    transports = (
        [p.feed.transport for p in result.providers] if endpoint else []
    )
    return {
        "label": _cell_label(regime, recovery),
        "regime": regime,
        "recovery": recovery,
        "published": published,
        "delivered": delivered,
        "charged_nu": charged,
        "recorded_nu": recorded,
        "nu_err": nu_err,
        "accuracy": confusion.accuracy,
        "classified_jobs": confusion.n_jobs,
        "mix_drift": drift,
        "packets_dropped": sum(t.packets_dropped for t in transports),
        "packets_duplicated": sum(t.packets_duplicated for t in transports),
        "packets_corrupted": sum(t.packets_corrupted for t in transports),
        "acks_dropped": sum(t.acks_dropped for t in transports),
        "retransmits": (
            sum(p.feed.retransmits for p in result.providers) if endpoint else 0
        ),
        "quarantined": endpoint.packets_quarantined if endpoint else 0,
        "dup_packets_skipped": endpoint.packets_duplicate if endpoint else 0,
        "dup_records_skipped": endpoint.records_duplicate if endpoint else 0,
        "resent": reconciliation.total_resent if reconciliation else 0,
        "unrecovered": reconciliation.total_unrecovered if reconciliation else 0,
    }


def plan(
    seed: int = _SEED,
    days: float = _DAYS,
    regimes: tuple[str, ...] = _REGIMES,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> list[ExperimentTask]:
    tasks = []
    for regime, recovery in _cells(tuple(regimes), tuple(recoveries)):
        tasks.append(
            ExperimentTask(
                experiment_id="A5",
                index=len(tasks),
                params={
                    "regime": regime,
                    "recovery": recovery,
                    "days": float(days),
                    "seed": int(seed),
                },
                seed=int(seed),
            )
        )
    return tasks


def execute(params: dict) -> dict:
    return _run_cell(
        params["regime"], params["recovery"], params["days"], params["seed"]
    )


def merge(
    partials: list[dict],
    seed: int = _SEED,
    days: float = _DAYS,
    regimes: tuple[str, ...] = _REGIMES,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> ExperimentOutput:
    rows = []
    for cell in partials:
        rows.append(
            [
                cell["label"],
                f"{cell['delivered']}/{cell['published']}",
                f"{100 * cell['delivered'] / cell['published']:.1f}%"
                if cell["published"] > 0
                else "n/a",
                f"{100 * cell['nu_err']:.2f}%",
                f"{cell['accuracy']:.3f}",
                f"{cell['mix_drift']:.3f}",
                f"{cell['unrecovered']}",
            ]
        )
    table_a = ascii_table(
        [
            "cell",
            "records delivered",
            "delivery",
            "NU error",
            "classifier acc",
            "mix drift (TV)",
            "unrecovered",
        ],
        rows,
        title=(
            f"A5a — Measurement robustness vs accounting-link faults "
            f"({days:g}-day federation campaigns)"
        ),
    )

    exchange_rows = []
    for cell in partials[1:]:
        exchange_rows.append(
            [
                cell["label"],
                f"{cell['packets_dropped']}",
                f"{cell['packets_corrupted']}",
                f"{cell['quarantined']}",
                f"{cell['retransmits']}",
                f"{cell['dup_packets_skipped'] + cell['dup_records_skipped']}",
                f"{cell['resent']}",
            ]
        )
    table_b = ascii_table(
        [
            "cell",
            "dropped",
            "corrupted",
            "quarantined",
            "retransmits",
            "dups skipped",
            "audit re-sends",
        ],
        exchange_rows,
        title="A5b — Exchange-level accounting of faults and recoveries",
    )

    footer = counters_footer(
        {
            "packets_dropped": sum(c["packets_dropped"] for c in partials),
            "packets_duplicated": sum(c["packets_duplicated"] for c in partials),
            "packets_corrupted": sum(c["packets_corrupted"] for c in partials),
            "acks_dropped": sum(c["acks_dropped"] for c in partials),
            "quarantined": sum(c["quarantined"] for c in partials),
            "retransmits": sum(c["retransmits"] for c in partials),
            "dup_packets_skipped": sum(
                c["dup_packets_skipped"] for c in partials
            ),
            "dup_records_skipped": sum(
                c["dup_records_skipped"] for c in partials
            ),
            "audit_resent": sum(c["resent"] for c in partials),
            "unrecovered": sum(c["unrecovered"] for c in partials),
        }
    )
    text = "\n\n".join([table_a, table_b, footer])
    return ExperimentOutput(
        experiment_id="A5",
        title="Measurement robustness under a lossy AMIE exchange",
        text=text,
        data={cell["label"]: cell for cell in partials},
    )


register_tasks("A5", plan=plan, execute=execute, merge=merge)


@register("A5")
def run(
    seed: int = _SEED,
    days: float = _DAYS,
    regimes: tuple[str, ...] = _REGIMES,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> ExperimentOutput:
    return run_via_tasks(
        "A5",
        seed=seed,
        days=days,
        regimes=regimes,
        recoveries=recoveries,
    )
