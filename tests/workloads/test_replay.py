"""Tests for trace replay."""

import pytest

from repro.infra.cluster import Cluster
from repro.infra.job import JobState
from repro.infra.scheduler import EasyBackfillScheduler, FcfsScheduler
from repro.infra.units import DAY, HOUR
from repro.sim import Simulator
from repro.users.population import PopulationSpec
from repro.workloads import (
    arrivals_from_records,
    replay,
    run_scenario,
)


@pytest.fixture(scope="module")
def source_records():
    result = run_scenario(days=6, seed=21, population=PopulationSpec(scale=0.02))
    return result.records


def test_arrivals_reconstruct_started_jobs(source_records):
    arrivals = arrivals_from_records(source_records)
    started = [r for r in source_records if r.ran]
    assert len(arrivals) == len(started)
    times = [when for when, _ in arrivals]
    assert times == sorted(times)
    for (when, job), record in zip(arrivals, sorted(
            started, key=lambda r: (r.submit_time, r.job_id))):
        assert when == record.submit_time
        assert job.cores <= record.cores or job.cores == record.cores
        assert job.true_runtime == pytest.approx(max(record.elapsed, 1.0))


def test_arrivals_core_clipping(source_records):
    arrivals = arrivals_from_records(source_records, max_cores=8)
    assert all(job.cores <= 8 for _when, job in arrivals)


def test_replay_runs_all_jobs(source_records):
    sim = Simulator()
    cluster = Cluster("replay", nodes=64, cores_per_node=16)
    scheduler = EasyBackfillScheduler(sim, cluster)
    arrivals = arrivals_from_records(
        source_records, max_cores=cluster.total_cores
    )
    result = replay(sim, scheduler, arrivals)
    assert len(result.jobs) == len(arrivals)
    finished = [j for j in result.jobs if j.state.is_terminal]
    assert len(finished) == len(arrivals)  # horizon lets the queue drain
    assert 0 < result.utilization < 1
    assert result.median_wait() >= 0.0


def test_replay_policies_comparable_on_same_trace(source_records):
    arrivals_a = arrivals_from_records(source_records, max_cores=256)
    arrivals_b = arrivals_from_records(source_records, max_cores=256)

    def run_policy(policy, arrivals):
        sim = Simulator()
        cluster = Cluster("replay", nodes=16, cores_per_node=16)
        scheduler = policy(sim, cluster)
        return replay(sim, scheduler, arrivals)

    fcfs = run_policy(FcfsScheduler, arrivals_a)
    easy = run_policy(EasyBackfillScheduler, arrivals_b)
    # Same trace, same machine: EASY never does worse on median wait.
    assert easy.median_wait() <= fcfs.median_wait() + 1.0


def test_replay_empty_rejected():
    sim = Simulator()
    cluster = Cluster("replay", nodes=4, cores_per_node=4)
    scheduler = FcfsScheduler(sim, cluster)
    with pytest.raises(ValueError):
        replay(sim, scheduler, [])
