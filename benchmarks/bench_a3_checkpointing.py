"""Bench A3: regenerate the checkpointing ablation."""


def test_a3_checkpointing(regenerate):
    output = regenerate("A3")
    mtbfs = sorted(output.data)
    restart_waste = [output.data[m]["restart"]["waste_ratio"] for m in mtbfs]
    checkpoint_waste = [
        output.data[m]["checkpoint"]["waste_ratio"] for m in mtbfs
    ]
    # Waste falls as machines get more reliable...
    assert restart_waste == sorted(restart_waste, reverse=True)
    # ...and checkpointing never loses to restart-from-scratch.  At high
    # MTBF the 24-campaign horizon can see zero failures, making both arms
    # exactly 0.0, so the comparison is <= with strictness required only
    # where failures actually occurred.
    for restart, checkpointed in zip(restart_waste, checkpoint_waste):
        assert checkpointed <= restart
    # At the flakiest setting failures are guaranteed and the gap is large.
    assert restart_waste[0] > 0
    assert restart_waste[0] > 5 * checkpoint_waste[0]
