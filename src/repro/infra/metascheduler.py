"""Cross-site resource selection (the "which machine?" decision).

TeraGrid offered users tools to pick a machine for minimum time-to-start
(Yoshimoto & Sivagnanam, *TeraGrid resource selection tools*).  The
metascheduler implements the strategies compared in experiment F5:

* ``RANDOM`` — uniform choice (the null strategy);
* ``ROUND_ROBIN`` — rotate through sites;
* ``LEAST_LOADED`` — minimize queued work per node, *as published by the
  information service* (so staleness hurts);
* ``PREDICTED_START`` — probe each site's scheduler for the job's earliest
  feasible start (a fresh reservation-style probe, the strongest tool).

Selection is *outage-aware on believed state*: sites the information service
(or, without one, live inspection) reports as down or fully drained are
excluded.  Because the published view can lag reality, a selected site may
still reject the submission with :class:`SiteDownError`; :meth:`submit` then
fails over to the next-best site.  When a site drops with metascheduled work
still queued there, :meth:`handle_outage` withdraws and reroutes those jobs,
bridging the original completion/start events so waiters never dangle.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, Sequence

import numpy as np

from repro.infra.infoservice import InformationService
from repro.infra.job import Job
from repro.infra.site import ResourceProvider, SiteDownError

__all__ = ["Metascheduler", "NoEligibleSiteError", "SelectionStrategy"]


class NoEligibleSiteError(RuntimeError):
    """Every site that could fit the job is believed down or drained."""


class SelectionStrategy(enum.Enum):
    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"
    PREDICTED_START = "predicted_start"


class Metascheduler:
    """Selects a site per job and forwards the submission."""

    def __init__(
        self,
        providers: Sequence[ResourceProvider],
        strategy: SelectionStrategy,
        rng: Optional[np.random.Generator] = None,
        info_service: Optional[InformationService] = None,
    ) -> None:
        self.providers = list(providers)
        if not self.providers:
            raise ValueError("metascheduler needs at least one provider")
        self.strategy = strategy
        self.rng = rng
        self.info_service = info_service
        self._rr = itertools.cycle(range(len(self.providers)))
        self.selections: dict[str, int] = {}
        self.reroutes = 0
        self.requeues = 0
        #: jobs this metascheduler routed, for outage-time requeueing
        self._routed: dict[int, Job] = {}
        #: per-job stacks of (completion, start) events orphaned by a
        #: withdrawal, waiting to be bridged onto the next submission
        self._pending_bridges: dict[int, list[tuple]] = {}
        if strategy is SelectionStrategy.RANDOM and rng is None:
            raise ValueError("RANDOM strategy requires an rng")
        if strategy is SelectionStrategy.LEAST_LOADED and info_service is None:
            raise ValueError("LEAST_LOADED strategy requires an info service")

    # -- believed state -----------------------------------------------------
    def _believed_state(self, provider: ResourceProvider) -> tuple[bool, int]:
        """(up?, usable nodes) as this metascheduler can know them.

        With an information service the *published* (possibly stale) view is
        used — during the outage propagation window a dead site still looks
        up, and the submission attempt is what fails.  Without one, live
        state is inspected directly.
        """
        if self.info_service is not None:
            snap = self.info_service.query(provider.name)
            return (
                bool(snap.get("up", True)),
                int(snap.get("available_nodes", snap["total_nodes"])),
            )
        return provider.up, provider.available_nodes

    # -- selection ----------------------------------------------------------
    def _eligible(
        self, job: Job, exclude: frozenset = frozenset()
    ) -> list[ResourceProvider]:
        fits = [
            p for p in self.providers if job.cores <= p.cluster.total_cores
        ]
        if not fits:
            raise ValueError(
                f"job {job.job_id} ({job.cores} cores) fits on no site"
            )
        usable = []
        for provider in fits:
            if provider.name in exclude:
                continue
            up, available = self._believed_state(provider)
            if not up or available <= 0:
                continue  # down, or fully drained: nothing to select
            usable.append(provider)
        if not usable:
            raise NoEligibleSiteError(
                f"no site believed up can take job {job.job_id} "
                f"(excluded: {sorted(exclude) or 'none'})"
            )
        return usable

    def select(
        self, job: Job, exclude: frozenset = frozenset()
    ) -> ResourceProvider:
        """Choose the site for ``job`` under the configured strategy."""
        eligible = self._eligible(job, exclude=exclude)
        if self.strategy is SelectionStrategy.RANDOM:
            assert self.rng is not None
            choice = eligible[int(self.rng.integers(len(eligible)))]
        elif self.strategy is SelectionStrategy.ROUND_ROBIN:
            while True:
                candidate = self.providers[next(self._rr)]
                if candidate in eligible:
                    choice = candidate
                    break
        elif self.strategy is SelectionStrategy.LEAST_LOADED:
            assert self.info_service is not None
            def load(provider: ResourceProvider) -> float:
                snap = self.info_service.query(provider.name)
                # A drained site publishes 0 usable nodes; it is excluded by
                # eligibility above, but guard the ratio anyway so a racing
                # drain can never divide by zero.
                available = max(
                    int(snap.get("available_nodes", snap["total_nodes"])), 1
                )
                return snap["pending_node_seconds"] / available
            choice = min(eligible, key=lambda p: (load(p), p.name))
        elif self.strategy is SelectionStrategy.PREDICTED_START:
            choice = min(
                eligible,
                key=lambda p: (p.scheduler.earliest_start(job), p.name),
            )
        else:  # pragma: no cover - enum is closed
            raise AssertionError(self.strategy)
        self.selections[choice.name] = self.selections.get(choice.name, 0) + 1
        return choice

    # -- submission with failover -------------------------------------------
    def submit(self, job: Job) -> ResourceProvider:
        """Select a site and submit, failing over past stale-info rejections.

        A site the published view still calls up may reject the submission
        (:class:`SiteDownError`); each rejection is excluded and selection
        retried until a live site accepts or none remain
        (:class:`NoEligibleSiteError`).  Returns the provider that accepted.
        """
        attempted: set[str] = set()
        while True:
            provider = self.select(job, exclude=frozenset(attempted))
            try:
                provider.submit(job)
            except SiteDownError:
                attempted.add(provider.name)
                self.reroutes += 1
                continue
            self._routed[job.job_id] = job
            self._attach_bridges(provider, job)
            return provider

    def submit_to(self, provider: ResourceProvider, job: Job) -> ResourceProvider:
        """Submit to an already-selected provider, failing over if it's down.

        Used by callers (e.g. the workflow engine) that select early — to
        stage data toward the chosen site — and submit later, when the site
        may have dropped.  Returns the provider that actually took the job.
        """
        try:
            provider.submit(job)
        except SiteDownError:
            self.reroutes += 1
            return self.submit(job)
        self._routed[job.job_id] = job
        self._attach_bridges(provider, job)
        return provider

    # -- outage handling ----------------------------------------------------
    def handle_outage(self, provider: ResourceProvider) -> int:
        """Requeue pending metascheduled jobs stranded at a down site.

        For each job this metascheduler routed to ``provider`` that is still
        pending there, withdraw it (no terminal state, no usage record) and
        resubmit through normal failover selection.  Jobs with no believed-up
        alternative stay queued at the suspended site and run when it
        recovers.  Waiters on the original completion/start events are
        bridged onto the new submission.  Returns how many jobs moved.
        """
        moved = 0
        stranded = [
            job
            for job in list(provider.scheduler.queue)
            if job.job_id in self._routed
        ]
        for job in stranded:
            try:
                self._eligible(job, exclude=frozenset({provider.name}))
            except (ValueError, NoEligibleSiteError):
                continue  # nowhere better; wait out the outage in place
            completion, start = provider.withdraw(job)
            self._pending_bridges.setdefault(job.job_id, []).append(
                (completion, start)
            )
            try:
                self.submit(job)
            except NoEligibleSiteError:
                # Believed-up alternatives all rejected us (stale info):
                # put the job back in the suspended queue, still bridged.
                provider._enqueue(job)
                self._attach_bridges(provider, job)
                continue
            self.requeues += 1
            moved += 1
        # Drop terminal jobs from the routing table so it cannot grow
        # without bound across a long campaign.
        self._routed = {
            job_id: job
            for job_id, job in self._routed.items()
            if not job.state.is_terminal
        }
        return moved

    def _attach_bridges(self, provider: ResourceProvider, job: Job) -> None:
        """Re-fire orphaned wait events from this (re)submission's events.

        A withdrawn job's waiters hold events popped from the old scheduler;
        chaining callbacks from the new scheduler's events keeps every
        waiter releasable no matter how many times the job is requeued.
        """
        waiters = self._pending_bridges.pop(job.job_id, [])
        if not waiters:
            return
        scheduler = provider.scheduler

        def on_completion(event):
            for completion, _start in waiters:
                if not completion.triggered:
                    completion.succeed(event._value)

        def on_start(event):
            for _completion, start in waiters:
                if not start.triggered:
                    start.succeed(event._value)

        scheduler.wait_for(job)._add_callback(on_completion)
        scheduler.wait_for_start(job)._add_callback(on_start)
