"""Tests for the persistent run journal and its resume semantics."""

import json

import pytest

from repro.runner.journal import RunJournal, default_runs_dir, new_run_id, task_key


def test_create_makes_run_directory(tmp_path):
    journal = RunJournal.create(tmp_path)
    assert journal.path.parent.is_dir()
    assert journal.path.name == "journal.jsonl"
    assert journal.run_id in str(journal.path)


def test_record_and_read_back(tmp_path):
    with RunJournal.create(tmp_path) as journal:
        journal.record("run-started", jobs=2)
        journal.record("task-started", key="abc", attempt=1)
        journal.record("task-completed", key="abc", attempts=1)
    events = journal.events()
    assert [e["event"] for e in events] == [
        "run-started", "task-started", "task-completed",
    ]
    assert all("time" in e for e in events)


def test_resume_requires_existing_journal(tmp_path):
    with pytest.raises(FileNotFoundError, match="no journal"):
        RunJournal.resume(tmp_path, "nonexistent-run")


def test_resume_finds_prior_run(tmp_path):
    with RunJournal.create(tmp_path) as original:
        original.record("task-completed", key="k1")
    resumed = RunJournal.resume(tmp_path, original.run_id)
    assert resumed.completed_keys() == frozenset({"k1"})


def test_torn_final_line_is_tolerated(tmp_path):
    with RunJournal.create(tmp_path) as journal:
        journal.record("task-completed", key="k1")
        journal.record("task-completed", key="k2")
    # Simulate a SIGKILL mid-append: the last line is half a JSON object.
    with journal.path.open("a", encoding="utf-8") as handle:
        handle.write('{"event":"task-comp')
    assert journal.completed_keys() == frozenset({"k1", "k2"})
    assert len(journal.events()) == 2  # the torn line is dropped, not fatal


def test_completed_keys_ignores_other_events(tmp_path):
    with RunJournal.create(tmp_path) as journal:
        journal.record("run-started")
        journal.record("task-started", key="k1", attempt=1)
        journal.record("task-completed", key="k1")
        journal.record("task-failed", key="k2", kind="exception")
    assert journal.completed_keys() == frozenset({"k1"})


def test_failed_keys_latest_outcome_wins(tmp_path):
    with RunJournal.create(tmp_path) as journal:
        journal.record("task-failed", key="k1", kind="timeout")
        journal.record("task-completed", key="k1")  # a later retry succeeded
        journal.record("task-failed", key="k2", kind="exception")
    assert journal.failed_keys() == frozenset({"k2"})


def test_events_are_compact_sorted_json_lines(tmp_path):
    with RunJournal.create(tmp_path) as journal:
        journal.record("run-started", zulu=1, alpha=2)
    (line,) = journal.path.read_text().splitlines()
    parsed = json.loads(line)
    assert list(parsed) == sorted(parsed)  # sort_keys: stable diffs
    assert ": " not in line  # compact separators


def test_run_ids_are_unique_and_sortable():
    first, second = new_run_id(), new_run_id()
    assert first != second
    assert len(first.split("-")) == 3


def test_default_runs_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "custom"))
    assert default_runs_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_RUNS_DIR")
    assert str(default_runs_dir()) == "runs"


# -- task keys -----------------------------------------------------------------

def test_task_key_matches_cache_identity_but_not_code_version():
    a = task_key("R1", {"days": 1.0, "seed": 3}, 3)
    assert a == task_key("R1", {"seed": 3, "days": 1.0}, 3)  # order-free
    assert a != task_key("R1", {"days": 2.0, "seed": 3}, 3)
    assert a != task_key("R2", {"days": 1.0, "seed": 3}, 3)
    assert a != task_key("R1", {"days": 1.0, "seed": 3}, 4)
    assert len(a) == 16
