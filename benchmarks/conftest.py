"""Benchmark plumbing: run an experiment once, time it, archive its output.

Each bench regenerates one table/figure of DESIGN.md §4.  The rendered text
is printed (visible with ``pytest -s``) and written to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can be assembled from the
archived artifacts.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def regenerate(benchmark):
    """Run ``experiment_id`` once under the benchmark timer; archive output."""

    def inner(experiment_id: str, **knobs):
        from repro.experiments import run_experiment

        output = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **knobs),
            rounds=1,
            iterations=1,
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(str(output) + "\n", encoding="utf-8")
        print(f"\n{output}\n[archived to {path}]")
        return output

    return inner
