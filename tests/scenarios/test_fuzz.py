"""The fuzzing harness contract: determinism, replayability, exit codes."""

import io

import pytest

from repro.__main__ import main
from repro.scenarios import OracleReport, ScenarioProgram
from repro.scenarios.fuzz import run_fuzz

BUDGET = 5
SEED = 3


def capture_run(**kwargs):
    out = io.StringIO()
    outcome = run_fuzz(out=out, **kwargs)
    return outcome, out.getvalue()


def test_same_seed_and_budget_is_byte_identical():
    first, first_text = capture_run(budget=BUDGET, seed=SEED)
    second, second_text = capture_run(budget=BUDGET, seed=SEED)
    assert first_text == second_text
    assert first.ok and second.ok
    assert first.executed == second.executed == BUDGET
    assert first_text.startswith(f"fuzz: budget={BUDGET} seed={SEED}")
    assert f"ok: {BUDGET} scenarios, all invariants held" in first_text


def test_different_seeds_draw_different_scenarios():
    _, text_a = capture_run(budget=2, seed=0)
    _, text_b = capture_run(budget=2, seed=1)
    # Headers differ at minimum; both runs stay green on the real oracle.
    assert text_a != text_b


def test_argument_validation():
    with pytest.raises(ValueError, match="--budget"):
        run_fuzz(budget=0, seed=0, out=io.StringIO())
    with pytest.raises(ValueError, match="--seed"):
        run_fuzz(budget=1, seed=-1, out=io.StringIO())


def test_invariant_violation_prints_replay_line(monkeypatch):
    def always_fails(result):
        report = OracleReport()
        report.record("conservation.ledger_vs_central", False, "doctored")
        return report

    monkeypatch.setattr(
        "repro.scenarios.fuzz.check_scenario", always_fails
    )
    outcome, text = capture_run(budget=3, seed=SEED)
    assert not outcome.ok
    assert isinstance(outcome.failure, ScenarioProgram)
    assert outcome.failure_report is not None
    assert "FAILED: 1 invariant violation(s)" in text
    assert "conservation.ledger_vs_central: doctored" in text
    assert "FAIL conservation.ledger_vs_central" in text
    # The replay line reproduces the failure from the seed alone.
    assert f"replay:   python -m repro fuzz --budget 3 --seed {SEED}" in text
    assert "scenario: ScenarioProgram(" in text
    assert "config:   ScenarioConfig(" in text


def test_failure_output_is_deterministic_too(monkeypatch):
    def always_fails(result):
        report = OracleReport()
        report.record("double_charge.unique_jobs", False, "doctored")
        return report

    monkeypatch.setattr(
        "repro.scenarios.fuzz.check_scenario", always_fails
    )
    _, text_a = capture_run(budget=2, seed=SEED)
    _, text_b = capture_run(budget=2, seed=SEED)
    assert text_a == text_b


def test_simulator_crash_is_reported_with_replay(monkeypatch):
    def explodes(config):
        raise RuntimeError("boom")

    monkeypatch.setattr("repro.scenarios.fuzz.run_scenario", explodes)
    outcome, text = capture_run(budget=2, seed=SEED)
    assert not outcome.ok
    assert outcome.error == "RuntimeError: boom"
    # The crashing program survives as the (shrunk) failure example.
    assert isinstance(outcome.failure, ScenarioProgram)
    assert "FAILED: scenario crashed: RuntimeError: boom" in text
    assert f"replay:   python -m repro fuzz --budget 2 --seed {SEED}" in text


# ---------------------------------------------------------------- CLI


def test_cli_fuzz_green_exit_zero(capsys):
    assert main(["fuzz", "--budget", "2", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "fuzz: budget=2 seed=0" in out
    assert "ok: 2 scenarios" in out


def test_cli_fuzz_bad_budget_exit_two(capsys):
    assert main(["fuzz", "--budget", "0"]) == 2
    assert "--budget" in capsys.readouterr().err


def test_cli_fuzz_red_exit_one(monkeypatch, capsys):
    def always_fails(result):
        report = OracleReport()
        report.record("records.positive_cores", False, "doctored")
        return report

    monkeypatch.setattr(
        "repro.scenarios.fuzz.check_scenario", always_fails
    )
    assert main(["fuzz", "--budget", "2", "--seed", "0"]) == 1
    assert "replay:" in capsys.readouterr().out


def test_cli_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("osg-opportunistic", "grid5000-reconfig",
                 "deadline-gateway-campaign", "teragrid-baseline"):
        assert name in out


def test_cli_scenario_run_library_entry(capsys):
    assert main(["scenario", "run", "grid5000-reconfig", "--days", "2"]) == 0
    out = capsys.readouterr().out
    assert "scenario: grid5000-reconfig" in out
    assert "invariants:" in out
    assert "FAIL" not in out


def test_cli_scenario_run_unknown_name(capsys):
    assert main(["scenario", "run", "atlantis-grid"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_scenario_run_without_name(capsys):
    assert main(["scenario", "run"]) == 2
    assert "needs a library name" in capsys.readouterr().err
