"""A3 (ablation) — Wasted computation vs node MTBF, with/without checkpoints.

Fault tolerance was a live TeraGrid-era concern (petascale machines lose
nodes continuously).  This ablation submits long jobs against a fault
injector and resubmits each victim until its work completes, under two
recovery disciplines:

* *restart* — a struck job loses everything and restarts from scratch;
* *checkpoint* — progress is saved every ``checkpoint_interval``; only the
  tail since the last checkpoint is lost (plus a small restart overhead).

Shape expectation: the waste ratio (machine time consumed beyond the useful
work) explodes as MTBF shrinks under restart — long jobs can fail repeatedly
near completion — while checkpointing caps the loss per failure at one
interval, keeping waste roughly linear in the failure rate.
"""

from __future__ import annotations

import repro.infra as infra
from repro.core.report import ascii_table, counters_footer
from repro.infra.resilience import saved_progress
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    register,
    register_tasks,
    run_via_tasks,
)
from repro.infra.job import Job, JobState
from repro.infra.units import DAY, HOUR
from repro.sim import RandomStreams, Simulator

__all__ = ["run"]

_SEED = 31
_MTBFS_HOURS = (250.0, 1000.0, 4000.0)
_CHECKPOINT_INTERVAL = 1 * HOUR


def _run_campaign(
    node_mtbf: float,
    checkpoint_interval: float | None,
    seed: int,
    n_jobs: int = 24,
    work_hours: float = 20.0,
    cores: int = 32,
) -> dict:
    """Run ``n_jobs`` long jobs to completion under failures; measure waste."""
    sim = Simulator()
    ledger = infra.AllocationLedger()
    ledger.create("acct", infra.AllocationType.RESEARCH, 1e12, users={"u"})
    central = infra.CentralAccountingDB()
    cluster = infra.Cluster("mach", nodes=128, cores_per_node=8)
    site = infra.ResourceProvider(sim, cluster, ledger, central)
    streams = RandomStreams(seed)
    injector = infra.NodeFailureInjector(
        sim,
        site.scheduler,
        streams.stream("faults"),
        node_mtbf=node_mtbf,
        tick=0.05 * HOUR,
    )

    consumed = [0.0]
    resubmissions = [0]
    restart_overhead = 5 * 60.0  # re-queue + restore time

    def campaign(sim, rng):
        work = work_hours * HOUR
        remaining = work
        while remaining > 1.0:
            job = Job(
                user="u",
                account="acct",
                cores=cores,
                walltime=remaining * 1.2 + restart_overhead,
                true_runtime=remaining,
            )
            site.submit(job)
            yield site.scheduler.wait_for(job)
            elapsed = job.elapsed or 0.0
            consumed[0] += elapsed * cores
            if job.state is JobState.COMPLETED:
                remaining = 0.0
            else:
                # Struck by a node failure partway through.
                saved = saved_progress(elapsed, checkpoint_interval)
                remaining = max(remaining - saved, 0.0)
                if remaining > 1.0:
                    resubmissions[0] += 1
                    yield sim.timeout(restart_overhead)

    rng_master = streams.stream("campaign")
    for i in range(n_jobs):
        sim.process(campaign(sim, rng_master), name=f"campaign-{i}")
    sim.run(until=90 * DAY)

    useful = n_jobs * work_hours * HOUR * cores
    return {
        "consumed_core_seconds": consumed[0],
        "useful_core_seconds": useful,
        "waste_ratio": max(consumed[0] / useful - 1.0, 0.0),
        "records": len(central) + site.feed.buffered,
        "failures": injector.failures_injected,
        "resubmissions": resubmissions[0],
    }


def plan(
    seed: int = _SEED,
    mtbfs_hours: tuple[float, ...] = _MTBFS_HOURS,
    checkpoint_interval: float = _CHECKPOINT_INTERVAL,
) -> list[ExperimentTask]:
    # Each (MTBF, recovery discipline) pair is an independent simulation:
    # restart then checkpoint, in MTBF order, so merge can pair them back.
    tasks = []
    for mtbf_h in mtbfs_hours:
        for interval in (None, checkpoint_interval):
            tasks.append(
                ExperimentTask(
                    experiment_id="A3",
                    index=len(tasks),
                    params={
                        "mtbf_hours": float(mtbf_h),
                        "checkpoint_interval": interval,
                        "seed": int(seed),
                    },
                    seed=int(seed),
                )
            )
    return tasks


def execute(params: dict) -> dict:
    return _run_campaign(
        params["mtbf_hours"] * HOUR, params["checkpoint_interval"], params["seed"]
    )


def merge(
    partials: list[dict],
    seed: int = _SEED,
    mtbfs_hours: tuple[float, ...] = _MTBFS_HOURS,
    checkpoint_interval: float = _CHECKPOINT_INTERVAL,
) -> ExperimentOutput:
    rows = []
    data = {}
    pairs = iter(partials)
    for mtbf_h, (restart, checkpointed) in zip(mtbfs_hours, zip(pairs, pairs)):
        rows.append(
            [
                f"{mtbf_h:g}h",
                f"{100 * restart['waste_ratio']:.1f}%",
                f"{100 * checkpointed['waste_ratio']:.1f}%",
            ]
        )
        data[mtbf_h] = {"restart": restart, "checkpoint": checkpointed}
    table = ascii_table(
        ["per-node MTBF", "waste (restart from scratch)",
         f"waste (checkpoint every {checkpoint_interval / HOUR:g}h)"],
        rows,
        title=(
            "A3 — Wasted computation vs node MTBF "
            "(24 x 20h 32-core campaigns run to completion)"
        ),
    )
    footer = counters_footer(
        {
            "failures": sum(p["failures"] for p in partials),
            "resubmissions": sum(p["resubmissions"] for p in partials),
        }
    )
    text = "\n".join([table, footer])
    return ExperimentOutput(
        experiment_id="A3",
        title="Checkpointing ablation under node failures",
        text=text,
        data=data,
    )


register_tasks("A3", plan=plan, execute=execute, merge=merge)


@register("A3")
def run(
    seed: int = _SEED,
    mtbfs_hours: tuple[float, ...] = _MTBFS_HOURS,
    checkpoint_interval: float = _CHECKPOINT_INTERVAL,
) -> ExperimentOutput:
    return run_via_tasks(
        "A3",
        seed=seed,
        mtbfs_hours=mtbfs_hours,
        checkpoint_interval=checkpoint_interval,
    )
