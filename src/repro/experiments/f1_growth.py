"""F1 — Modality user counts by quarter (gateway adoption growth).

Shape expectation: with gateway end users adopting over the year, the
GATEWAY series grows quarter over quarter while BATCH/EXPLORATORY stay flat;
by the final quarter GATEWAY rivals EXPLORATORY.
"""

from __future__ import annotations

from repro.core import quarterly_user_counts
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table, series_block
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)
from repro.infra.units import QUARTER

__all__ = ["run"]


@register("F1")
def run(
    days: float = 364.0,
    seed: int = 1,
    ramp_days: float = 270.0,
    population_scale: float = 0.03,
) -> ExperimentOutput:
    result = campaign(
        days=days,
        seed=seed,
        population_scale=population_scale,
        gateway_adoption_ramp_days=ramp_days,
    )
    series = quarterly_user_counts(result.records, bucket=QUARTER)
    quarters = sorted(series)

    headers = ["quarter", *[m.value for m in MODALITY_ORDER]]
    rows = []
    for quarter in quarters:
        rows.append(
            [f"Q{quarter + 1}", *[series[quarter][m] for m in MODALITY_ORDER]]
        )
    table = ascii_table(
        headers,
        rows,
        title=(
            f"F1 — Active users per modality by quarter "
            f"({days:g} days, gateway adoption ramp {ramp_days:g} days)"
        ),
    )
    figure = series_block(
        "F1 series (x=quarter, y=users)",
        {
            m.value: [(q + 1, series[q][m]) for q in quarters]
            for m in MODALITY_ORDER
        },
    )
    return ExperimentOutput(
        experiment_id="F1",
        title="Modality user counts by quarter",
        text=table + "\n\n" + figure,
        data={
            m.value: [series[q][m] for q in quarters] for m in MODALITY_ORDER
        },
    )


def _campaigns(params: dict) -> list:
    """F1's year-long adoption campaign (``ramp_days`` maps to the ramp knob)."""
    return [
        campaign_key(
            days=params.get("days", 364.0),
            seed=params.get("seed", 1),
            population_scale=params.get("population_scale", 0.03),
            gateway_adoption_ramp_days=params.get("ramp_days", 270.0),
        )
    ]


register_campaigns("F1", _campaigns)
