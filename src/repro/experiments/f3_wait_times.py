"""F3 — Queue wait by job-size class under FCFS vs EASY backfill.

Shape expectation: EASY cuts small-job waits by a large factor at equal
offered load while leaving large-job waits roughly unchanged, and raises
delivered utilization — the classic backfilling result that motivated every
TeraGrid site to run it.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler import EasyBackfillScheduler, FcfsScheduler
from repro.infra.units import DAY, HOUR, MINUTE
from repro.sim import RandomStreams, Simulator
from repro.sim.distributions import bounded_lognormal, log2_cores

__all__ = ["run", "single_site_workload"]


def single_site_workload(
    rng,
    cluster: Cluster,
    days: float,
    load: float = 0.85,
    walltime_pad: tuple[float, float] = (1.1, 3.0),
    runtime_median: float = 2 * HOUR,
):
    """A mixed batch workload offering ``load`` of the machine's capacity.

    Returns ``(submit_time, job)`` pairs: Poisson arrivals of jobs whose mean
    demand (cores x runtime) matches the target offered load.
    ``walltime_pad`` bounds the users' over-request factor (larger pads make
    backfill planning more conservative).
    """
    jobs = []
    mean_runtime = 1.5 * runtime_median  # rough lognormal mean at sigma=1
    mean_cores = 2 ** 4.0 * np.exp(0.5 * (1.5 * np.log(2)) ** 2)  # lognormal mean
    mean_demand = mean_cores * mean_runtime
    rate = load * cluster.total_cores / mean_demand  # arrivals per second
    t = 0.0
    horizon = days * DAY
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        cores = log2_cores(rng, 1, cluster.total_cores, 4.0, 1.5)
        runtime = bounded_lognormal(
            rng, runtime_median, 1.0, 5 * MINUTE, 24 * HOUR
        )
        jobs.append(
            (
                t,
                Job(
                    user=f"u{int(rng.integers(40))}",
                    account="acct",
                    cores=cores,
                    walltime=runtime * float(rng.uniform(*walltime_pad)),
                    true_runtime=runtime,
                ),
            )
        )
    return jobs


def _feeder(sim, scheduler, arrivals):
    last = 0.0
    for when, job in arrivals:
        if when > last:
            yield sim.timeout(when - last)
            last = when
        scheduler.submit(job)


def _run_policy(policy, arrivals_factory, days, nodes=64, cores_per_node=8):
    sim = Simulator()
    cluster = Cluster("mach", nodes=nodes, cores_per_node=cores_per_node)
    scheduler = policy(sim, cluster)
    arrivals = arrivals_factory(cluster)
    sim.process(_feeder(sim, scheduler, arrivals), name="feeder")
    horizon = days * DAY
    sim.run(until=horizon)
    finished = [j for j in scheduler.completed if j.start_time is not None]
    delivered = sum(
        cluster.nodes_for(j.cores)
        * (min(j.end_time, horizon) - j.start_time)
        for j in finished
    )
    utilization = delivered / (cluster.nodes * horizon)
    return finished, utilization


@register("F3")
def run(days: float = 21.0, seed: int = 5, load: float = 0.85) -> ExperimentOutput:
    def arrivals_factory(cluster):
        rng = RandomStreams(seed).stream("f3-workload")
        return single_site_workload(rng, cluster, days, load=load)

    classes = [("small (<=8 cores)", 1, 8), ("medium (9-64)", 9, 64),
               ("large (>64)", 65, 10**9)]
    rows = []
    data = {}
    utilizations = {}
    results = {}
    for policy, label in ((FcfsScheduler, "FCFS"), (EasyBackfillScheduler, "EASY")):
        finished, utilization = _run_policy(policy, arrivals_factory, days)
        utilizations[label] = utilization
        results[label] = finished
    for class_label, lo, hi in classes:
        row = [class_label]
        for label in ("FCFS", "EASY"):
            waits = [
                j.wait_time / HOUR
                for j in results[label]
                if lo <= j.cores <= hi
            ]
            median = float(np.median(waits)) if waits else 0.0
            p90 = float(np.percentile(waits, 90)) if waits else 0.0
            row.append(f"{median:.2f}h / {p90:.2f}h")
            data.setdefault(label, {})[class_label] = {
                "median_h": median,
                "p90_h": p90,
                "n": len(waits),
            }
        rows.append(row)
    rows.append(
        [
            "utilization",
            f"{100 * utilizations['FCFS']:.1f}%",
            f"{100 * utilizations['EASY']:.1f}%",
        ]
    )
    text = ascii_table(
        ["size class", "FCFS wait p50/p90", "EASY wait p50/p90"],
        rows,
        title=(
            f"F3 — Wait times by size class, FCFS vs EASY "
            f"({days:g} days at offered load {load:.0%})"
        ),
    )
    data["utilization"] = utilizations
    return ExperimentOutput(
        experiment_id="F3",
        title="Queue wait by size class under FCFS vs EASY",
        text=text,
        data=data,
    )
