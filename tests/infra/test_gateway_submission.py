"""Tests for submission interfaces and science gateways."""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import AttributeKeys, Job
from repro.infra.units import HOUR
from repro.sim import Simulator


def make_site():
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e9, users={"alice"})
    ledger.create(
        "community", I.AllocationType.COMMUNITY, 1e9, users={"gw_portal"}
    )
    central = I.CentralAccountingDB()
    cluster = I.Cluster("mach", nodes=8, cores_per_node=4)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    return sim, site, central


def test_login_submitter_stamps_interface():
    sim, site, central = make_site()
    job = Job(user="alice", account="acct", cores=4, walltime=HOUR,
              true_runtime=HOUR / 2)
    I.LoginSubmitter().submit(site, job)
    sim.run(until=2 * HOUR)
    assert job.attributes[AttributeKeys.SUBMIT_INTERFACE] == "login"


def test_gram_submitter_stamps_and_counts():
    sim, site, central = make_site()
    submitter = I.GramSubmitter()
    for _ in range(3):
        job = Job(user="alice", account="acct", cores=1, walltime=HOUR,
                  true_runtime=60.0)
        submitter.submit(site, job)
    assert submitter.submissions["alice"] == 3
    assert job.attributes[AttributeKeys.SUBMIT_INTERFACE] == "gram"


def gateway(coverage, seed=0):
    return I.ScienceGateway(
        name="nanoportal",
        community_user="gw_portal",
        community_account="community",
        rng=np.random.default_rng(seed),
        tagging_coverage=coverage,
    )


def test_gateway_jobs_run_under_community_account():
    sim, site, central = make_site()
    gw = gateway(coverage=1.0)
    job = gw.submit(site, "enduser-1", cores=1, walltime=HOUR,
                    true_runtime=60.0)
    sim.run(until=2 * HOUR)
    site.feed.drain()
    record = central.all_records()[0]
    assert record.user == "gw_portal"
    assert record.account == "community"
    assert record.attributes[AttributeKeys.SUBMIT_INTERFACE] == "gateway"
    assert record.attributes[AttributeKeys.GATEWAY_NAME] == "nanoportal"
    assert record.attributes[AttributeKeys.GATEWAY_USER] == "enduser-1"
    assert job.true_user == "enduser-1"


def test_gateway_coverage_zero_never_tags():
    sim, site, central = make_site()
    gw = gateway(coverage=0.0)
    for i in range(20):
        gw.submit(site, f"user-{i}", cores=1, walltime=HOUR, true_runtime=60.0)
    sim.run(until=10 * HOUR)
    site.feed.drain()
    for record in central.all_records():
        assert AttributeKeys.GATEWAY_USER not in record.attributes
    assert gw.observed_coverage == 0.0
    assert len(gw.end_users_served) == 20


def test_gateway_coverage_partial_tags_roughly_that_fraction():
    sim, site, central = make_site()
    gw = gateway(coverage=0.5, seed=42)
    for i in range(200):
        gw.submit(site, f"user-{i % 40}", cores=1, walltime=HOUR,
                  true_runtime=60.0)
    assert 0.35 < gw.observed_coverage < 0.65
    assert len(gw.end_users_served) == 40


def test_gateway_coverage_validation():
    with pytest.raises(ValueError):
        gateway(coverage=1.5)


def test_gateway_empty_observed_coverage():
    assert gateway(coverage=1.0).observed_coverage == 0.0
