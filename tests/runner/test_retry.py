"""Tests for the retry policy, failure taxonomy and wall-clock limits."""

import time

import pytest

from repro.runner.retry import (
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    RetryPolicy,
    TaskFailure,
    TaskTimeout,
    wall_clock_limit,
)


# -- policy --------------------------------------------------------------------

def test_transient_kinds_retry_until_attempts_exhaust():
    policy = RetryPolicy(max_attempts=3)
    for kind in (FAILURE_TIMEOUT, FAILURE_WORKER_CRASH):
        assert policy.should_retry(kind, 1)
        assert policy.should_retry(kind, 2)
        assert not policy.should_retry(kind, 3)


def test_task_exceptions_never_retry():
    policy = RetryPolicy(max_attempts=100)
    assert not policy.should_retry(FAILURE_EXCEPTION, 1)


def test_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=1.0, backoff_factor=2.0,
                         max_delay=5.0, jitter=0.0)
    delays = [policy.delay("k", attempt) for attempt in (1, 2, 3, 4, 5)]
    assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]  # capped at max_delay


def test_jitter_shrinks_never_grows():
    policy = RetryPolicy(base_delay=1.0, jitter=0.5)
    for attempt in range(1, 6):
        jittered = policy.delay("some-task", attempt)
        plain = RetryPolicy(base_delay=1.0, jitter=0.0).delay("x", attempt)
        assert 0.5 * plain <= jittered <= plain


def test_delay_is_deterministic_per_task_and_attempt():
    a = RetryPolicy(seed=3)
    b = RetryPolicy(seed=3)
    assert a.delay("task", 2) == b.delay("task", 2)
    assert a.delay("task", 2) != a.delay("task", 3)
    assert a.delay("task", 2) != a.delay("other", 2)
    assert RetryPolicy(seed=4).delay("task", 2) != a.delay("task", 2)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# -- failure record ------------------------------------------------------------

def test_describe_includes_what_a_debugger_needs():
    failure = TaskFailure(
        experiment_id="R1", index=2, seed=3, kind=FAILURE_EXCEPTION,
        error_type="ValueError", message="bad knob", attempts=1,
    )
    text = failure.describe()
    assert "task 2" in text and "seed 3" in text
    assert "ValueError: bad knob" in text


def test_describe_without_error_type():
    failure = TaskFailure(
        experiment_id="R1", index=0, seed=1, kind=FAILURE_TIMEOUT,
        message="exceeded 5s", attempts=4,
    )
    assert "timeout after 4 attempt(s): exceeded 5s" in failure.describe()


# -- wall-clock limit ----------------------------------------------------------

def test_limit_interrupts_oversleeping_body():
    started = time.monotonic()
    with pytest.raises(TaskTimeout):
        with wall_clock_limit(0.2):
            time.sleep(10.0)
    assert time.monotonic() - started < 5.0


def test_limit_is_transparent_when_body_is_fast():
    with wall_clock_limit(30.0):
        value = sum(range(1000))
    assert value == 499500


def test_no_limit_means_no_alarm():
    with wall_clock_limit(None):
        pass
    with wall_clock_limit(0):
        pass


def test_alarm_state_is_restored_after_use():
    import signal

    with wall_clock_limit(30.0):
        pass
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_limit_is_noop_off_main_thread():
    import threading

    outcome = {}

    def body():
        try:
            with wall_clock_limit(0.05):
                time.sleep(0.2)  # would time out on the main thread
            outcome["ok"] = True
        except Exception as exc:  # pragma: no cover - failure path
            outcome["error"] = exc

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()
    assert outcome == {"ok": True}
