"""Co-allocation: tightly-coupled computation across multiple sites.

The rarest — and operationally hardest — TeraGrid modality: one MPI
application spanning two or more machines simultaneously.  The co-allocator
probes each site's scheduler for the parts' earliest feasible starts, picks a
common start (the max, plus slack), lays down admitting advance reservations,
and submits the parts with synchronized ``not_before`` constraints.  All
parts share a ``coallocation_id`` attribute, and the *coupled runtime* is
inflated by a WAN synchronization overhead factor relative to what a single
machine would need — the slowdown measured in experiment F7.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.infra.job import AttributeKeys, Job, JobState
from repro.infra.scheduler.base import Reservation
from repro.infra.site import ResourceProvider, SiteDownError
from repro.infra.units import MINUTE
from repro.sim import AllOf, Simulator

__all__ = ["CoAllocator", "CoAllocation"]

_coalloc_ids = itertools.count(1)


@dataclass
class CoAllocation:
    """Outcome of one co-allocated run."""

    coalloc_id: str
    requested_at: float
    planned_start: float
    jobs: list[Job] = field(default_factory=list)
    finished_at: Optional[float] = None

    @property
    def actual_start(self) -> Optional[float]:
        starts = [j.start_time for j in self.jobs]
        if any(s is None for s in starts):
            return None
        return max(starts)  # the coupled app runs once all parts are up

    @property
    def synchronized(self) -> bool:
        """Whether every part started at the planned common time."""
        return all(
            j.start_time is not None
            and abs(j.start_time - self.planned_start) < 1.0
            for j in self.jobs
        )

    @property
    def succeeded(self) -> bool:
        return all(j.state is JobState.COMPLETED for j in self.jobs)


class CoAllocator:
    """Plans and launches synchronized multi-site runs."""

    def __init__(
        self,
        sim: Simulator,
        slack: float = 5 * MINUTE,
        wan_overhead_factor: float = 1.25,
    ) -> None:
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        if wan_overhead_factor < 1.0:
            raise ValueError(
                f"wan_overhead_factor must be >= 1, got {wan_overhead_factor}"
            )
        self.sim = sim
        self.slack = slack
        self.wan_overhead_factor = wan_overhead_factor
        self.coallocations: list[CoAllocation] = []

    def launch(
        self,
        user: str,
        account: str,
        parts: Sequence[tuple[ResourceProvider, int]],
        walltime: float,
        single_site_runtime: float,
        true_modality: Optional[str] = None,
    ):
        """Start a co-allocated run; returns the coordinating Process.

        ``parts`` is a sequence of ``(provider, cores)``.  The coupled
        application's wall-clock need is ``single_site_runtime *
        wan_overhead_factor`` (every part runs that long).  The process value
        is the :class:`CoAllocation`.
        """
        if len(parts) < 2:
            raise ValueError("co-allocation needs at least two parts")
        return self.sim.process(
            self._coordinate(
                user, account, list(parts), walltime, single_site_runtime,
                true_modality,
            ),
            name="coallocation",
        )

    def _coordinate(
        self, user, account, parts, walltime, single_site_runtime, true_modality
    ):
        coalloc_id = f"coalloc-{next(_coalloc_ids)}"
        coupled_runtime = single_site_runtime * self.wan_overhead_factor
        record = CoAllocation(
            coalloc_id=coalloc_id,
            requested_at=self.sim.now,
            planned_start=0.0,
        )
        self.coallocations.append(record)

        # Build the part jobs first so probes use the real specs.
        jobs: list[Job] = []
        for provider, cores in parts:
            job = Job(
                user=user,
                account=account,
                cores=cores,
                walltime=walltime,
                true_runtime=coupled_runtime,
                attributes={AttributeKeys.COALLOCATION_ID: coalloc_id},
                true_modality=true_modality,
            )
            jobs.append(job)
        record.jobs = jobs

        # Probe earliest starts and choose the common start time.
        estimates = [
            provider.scheduler.earliest_start(job)
            for (provider, _cores), job in zip(parts, jobs)
        ]
        common_start = max(estimates) + self.slack
        record.planned_start = common_start

        # Reserve capacity and submit each part pinned to the common start.
        part_ids = {job.job_id for job in jobs}
        submitted: list[tuple[ResourceProvider, Job]] = []
        for (provider, _cores), job in zip(parts, jobs):
            nodes = provider.cluster.nodes_for(job.cores)
            provider.scheduler.add_reservation(
                Reservation(
                    start=common_start,
                    end=common_start + walltime,
                    nodes=nodes,
                    access=lambda j, ids=part_ids: j.job_id in ids,
                    label=coalloc_id,
                )
            )
            job.not_before = common_start
            try:
                provider.submit(job)
            except SiteDownError:
                # A site dropped between planning and submission: the coupled
                # run cannot proceed with a missing part.  Cancel what got in
                # and report the co-allocation as failed.
                for other_provider, other_job in submitted:
                    other_provider.cancel(other_job)
                record.finished_at = self.sim.now
                return record
            submitted.append((provider, job))

        completions = [
            provider.scheduler.wait_for(job)
            for (provider, _cores), job in zip(parts, jobs)
        ]
        yield AllOf(self.sim, completions)
        record.finished_at = self.sim.now
        return record
