"""T8 — Access-path mix by modality (the taxonomy's "access" dimension).

The modality taxonomy is multi-dimensional: *what* users do and *how they
reach the machines* are separate questions.  T8 crosses them: for each
(true-)modality, the fraction of jobs arriving via login CLI, GRAM
middleware, and gateway portals.

Shape expectations: GATEWAY jobs arrive 100% through portals by definition;
every CLI modality shows the configured GRAM fraction (~15%); the engine-
driven paths (workflow-engine ensembles, co-allocated parts) have no
submission interface stamped — they appear as "engine/other", which is
itself a measurable fact about middleware-mediated usage.
"""

from __future__ import annotations

from repro.core import AttributeClassifier
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)
from repro.infra.job import AttributeKeys

__all__ = ["run"]

_PATHS = ("login", "gram", "gateway", "engine/other")


@register("T8")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    classification = AttributeClassifier().classify(records)

    counts: dict[str, dict[str, int]] = {
        m.value: {p: 0 for p in _PATHS} for m in MODALITY_ORDER
    }
    for record in records:
        modality = classification.job_labels[record.job_id].value
        interface = record.attributes.get(AttributeKeys.SUBMIT_INTERFACE)
        path = interface if interface in _PATHS else "engine/other"
        counts[modality][path] += 1

    rows = []
    data = {}
    for modality in MODALITY_ORDER:
        row_counts = counts[modality.value]
        total = sum(row_counts.values())
        row = [modality.value, total]
        for path in _PATHS:
            share = row_counts[path] / total if total else 0.0
            row.append(f"{100 * share:.1f}%")
        rows.append(row)
        data[modality.value] = {
            "total": total,
            **{p: row_counts[p] for p in _PATHS},
        }
    text = ascii_table(
        ["modality", "jobs", *(f"via {p}" for p in _PATHS)],
        rows,
        title=f"T8 — Access-path mix by modality over {days:g} days",
    )
    return ExperimentOutput(
        experiment_id="T8",
        title="Access-path mix by modality",
        text=text,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """The one campaign T8's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T8", _campaigns)
