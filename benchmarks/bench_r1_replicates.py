"""Bench R1: regenerate the seed-sensitivity table; measure replicate fan-out."""

import os


def test_r1_replicates(regenerate):
    output = regenerate("R1")
    # The dominance ordering holds in every replicate...
    assert output.data["orderings_ok"] == output.data["n_seeds"]
    # ...and the headline counts are stable to a few users.
    for modality in ("batch", "exploratory", "gateway", "ensemble"):
        stats = output.data[modality]
        assert stats["max"] - stats["min"] <= max(4, 0.25 * stats["mean"])


def test_r1_parallel_speedup(parallel_speedup):
    """R1's five replicates across 4 workers vs serial.

    The ≥2x bar only applies where the hardware can deliver it; on smaller
    hosts the entry is still recorded (with the core count) so BENCH.md
    stays honest about what was measured where.
    """
    result = parallel_speedup("R1", jobs=4)
    if result["cores"] >= 4:
        assert result["speedup"] >= 2.0, (
            f"expected >=2x at 4 workers on {result['cores']} cores, "
            f"got {result['speedup']:.2f}x"
        )
