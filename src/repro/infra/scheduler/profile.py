"""A step-function view of future node availability.

Schedulers reason about the future using the *requested* walltimes of running
jobs (the only bound a real scheduler has) plus any advance reservations.
:class:`CapacityProfile` turns those into a piecewise-constant availability
function supporting the two queries every policy needs: *how many nodes are
free throughout a window* and *when is the earliest window with enough
nodes*.
"""

from __future__ import annotations

import bisect
from typing import Iterable

__all__ = ["CapacityProfile"]

_EPSILON = 1e-9


class CapacityProfile:
    """Node usage over ``[now, inf)`` as a sorted step function.

    Build one per scheduling decision: add each running job and inaccessible
    reservation with :meth:`add_usage`, then query.  Usage intervals are
    half-open ``[start, end)``.
    """

    def __init__(self, total_nodes: int, now: float) -> None:
        if total_nodes < 1:
            raise ValueError(f"total_nodes must be >= 1, got {total_nodes}")
        self.total_nodes = total_nodes
        self.now = float(now)
        self._deltas: dict[float, int] = {}

    def add_usage(self, start: float, end: float, nodes: int) -> None:
        """Mark ``nodes`` as busy during ``[start, end)`` (clipped to now)."""
        if nodes < 0:
            raise ValueError(f"nodes must be >= 0, got {nodes}")
        if nodes == 0 or end <= self.now or end <= start:
            return
        start = max(start, self.now)
        self._deltas[start] = self._deltas.get(start, 0) + nodes
        self._deltas[end] = self._deltas.get(end, 0) - nodes

    def _steps(self) -> tuple[list[float], list[int]]:
        """(times, usage) where usage[i] holds on [times[i], times[i+1])."""
        times = sorted(self._deltas)
        usage: list[int] = []
        running = 0
        for t in times:
            running += self._deltas[t]
            usage.append(running)
        return times, usage

    def available_during(self, start: float, duration: float) -> int:
        """Minimum free nodes over the window ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        start = max(start, self.now)
        end = start + duration
        times, usage = self._steps()
        if not times:
            return self.total_nodes
        # usage before times[0] is 0; find the step active at `start`
        peak = 0
        index = bisect.bisect_right(times, start) - 1
        if index >= 0:
            peak = usage[index]
        for i in range(max(index + 1, 0), len(times)):
            if times[i] >= end - _EPSILON:
                break
            peak = max(peak, usage[i])
        return self.total_nodes - peak

    def earliest_start(
        self, nodes: int, duration: float, not_before: float | None = None
    ) -> float:
        """Earliest ``t >= not_before`` with ``nodes`` free for ``duration``.

        Always terminates: beyond the last usage event the machine is empty,
        so a feasible start exists whenever ``nodes <= total_nodes``.
        """
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size "
                f"{self.total_nodes}"
            )
        floor = self.now if not_before is None else max(not_before, self.now)
        candidates = [floor] + [t for t in sorted(self._deltas) if t > floor]
        for candidate in candidates:
            if self.available_during(candidate, duration) >= nodes:
                return candidate
        # Unreachable: the final candidate is past all usage events.
        raise AssertionError("no feasible start found")  # pragma: no cover

    @classmethod
    def from_usages(
        cls,
        total_nodes: int,
        now: float,
        usages: Iterable[tuple[float, float, int]],
    ) -> "CapacityProfile":
        """Convenience constructor from ``(start, end, nodes)`` triples."""
        profile = cls(total_nodes, now)
        for start, end, nodes in usages:
            profile.add_usage(start, end, nodes)
        return profile
