"""Time-resolved modality measurements (figure F1: growth by quarter)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.classifier import AttributeClassifier, ClassifierConfig
from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.accounting import UsageRecord
from repro.infra.units import QUARTER

__all__ = ["quarterly_user_counts", "bucketed_nu"]


def _bucket_of(t: float, bucket: float) -> int:
    return int(t // bucket)


def quarterly_user_counts(
    records: Iterable[UsageRecord],
    classifier: Optional[AttributeClassifier] = None,
    bucket: float = QUARTER,
) -> dict[int, dict[Modality, int]]:
    """Users per primary modality, re-measured within each time bucket.

    Each bucket is classified independently from the records whose *end time*
    falls inside it — exactly how a quarterly operations report would be
    produced from the accounting database.
    """
    classifier = classifier or AttributeClassifier(ClassifierConfig())
    by_bucket: dict[int, list[UsageRecord]] = {}
    for record in records:
        by_bucket.setdefault(_bucket_of(record.end_time, bucket), []).append(record)
    series: dict[int, dict[Modality, int]] = {}
    for index in sorted(by_bucket):
        classification = classifier.classify(by_bucket[index])
        series[index] = classification.users_by_modality()
    return series


def bucketed_nu(
    records: Iterable[UsageRecord],
    classifier: Optional[AttributeClassifier] = None,
    bucket: float = QUARTER,
) -> dict[int, dict[Modality, float]]:
    """NUs charged per modality within each time bucket."""
    classifier = classifier or AttributeClassifier(ClassifierConfig())
    by_bucket: dict[int, list[UsageRecord]] = {}
    for record in records:
        by_bucket.setdefault(_bucket_of(record.end_time, bucket), []).append(record)
    series: dict[int, dict[Modality, float]] = {}
    for index in sorted(by_bucket):
        classification = classifier.classify(by_bucket[index])
        totals = {m: 0.0 for m in MODALITY_ORDER}
        for record in by_bucket[index]:
            totals[classification.job_labels[record.job_id]] += record.charged_nu
        series[index] = totals
    return series
