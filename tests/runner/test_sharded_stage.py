"""Tests for the sharded campaign stage: expansion, reuse, mode-tagged cache.

The runner-level acceptance contract of the scale tier: ``shards=N`` expands
each missing campaign into per-cell stage-1 tasks, the measurement stage
consumes the merged artifact unchanged, and the outputs are byte-identical
to the legacy unsharded run — at the canonical scale literally (one cell IS
the legacy simulation), at larger scales because reports are id-invariant.
"""

import pytest

from repro.experiments.base import _campaign_cache, campaign_key
from repro.runner import ArtifactStore, ParallelRunner, ResultCache
from repro.workloads.sharding import CellKey, cell_count


@pytest.fixture(autouse=True)
def fresh_campaign_memo():
    saved = dict(_campaign_cache)
    _campaign_cache.clear()
    yield
    _campaign_cache.clear()
    _campaign_cache.update(saved)


#: Canonical-scale sweep: two readers of ONE campaign (and one cell).
_CANONICAL = [("T1", {"days": 6.0}), ("T2", {"days": 6.0})]

#: One multi-cell campaign: R1 exposes the population_scale knob.
_MULTI = [("R1", {"days": 2.0, "seeds": (3,), "population_scale": 0.15})]


def _texts(outputs):
    return [(o.experiment_id, o.title, o.text, repr(o.data)) for o in outputs]


def test_sharded_canonical_sweep_is_byte_identical_to_legacy(tmp_path):
    legacy = ParallelRunner(jobs=1, use_cache=False)
    reference = _texts(legacy.run_many(_CANONICAL))

    _campaign_cache.clear()
    sharded = ParallelRunner(
        jobs=2, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path), shards=4,
    )
    outputs = sharded.run_many(_CANONICAL)
    assert _texts(outputs) == reference
    assert sharded.campaign_stats["distinct"] == 1
    assert sharded.campaign_stats["simulated"] == 1
    assert sharded.campaign_failures == []


def test_sharded_stage_stores_one_artifact_per_cell(tmp_path):
    store = ArtifactStore(root=tmp_path)
    runner = ParallelRunner(
        jobs=1, use_cache=False, artifacts=store, shards=2
    )
    runner.run_many(_MULTI)
    key = campaign_key(days=2.0, seed=3, population_scale=0.15)
    cells = cell_count(key.population_scale)
    assert cells == 3
    for cell in range(cells):
        assert store.has(CellKey.for_cell(key, cell, cells))
    # The merged artifact is recomputed on demand, never persisted.
    assert not store.has(key)


def test_sharded_multi_cell_outputs_are_jobs_invariant(tmp_path):
    """Multi-cell campaigns differ physically from the coupled legacy run
    (cells decouple contention — that is the point of the tier), so the
    guarantee here is invariance over execution arrangement: any ``--jobs``
    produces the same bytes for the same shard mode."""
    serial = ParallelRunner(
        jobs=1, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path / "serial"), shards=3,
    )
    reference = _texts(serial.run_many(_MULTI))

    _campaign_cache.clear()
    parallel = ParallelRunner(
        jobs=2, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path / "parallel"), shards=3,
    )
    outputs = parallel.run_many(_MULTI)
    assert _texts(outputs) == reference
    assert parallel.campaign_stats["distinct"] == 1
    assert parallel.campaign_stats["simulated"] == 1


def test_sharded_resume_reuses_stored_cells(tmp_path):
    first = ParallelRunner(
        jobs=1, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path), shards=2,
    )
    reference = _texts(first.run_many(_MULTI))

    _campaign_cache.clear()
    second = ParallelRunner(
        jobs=1, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path), shards=2,
    )
    outputs = second.run_many(_MULTI)
    assert _texts(outputs) == reference
    assert second.campaign_stats["simulated"] == 0
    assert second.campaign_stats["reused"] == 1


def test_shard_count_does_not_change_runner_outputs(tmp_path):
    a = ParallelRunner(
        jobs=1, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path / "a"), shards=1,
    )
    texts_a = _texts(a.run_many(_MULTI))

    _campaign_cache.clear()
    b = ParallelRunner(
        jobs=2, use_cache=False,
        artifacts=ArtifactStore(root=tmp_path / "b"), shards=3,
    )
    assert _texts(b.run_many(_MULTI)) == texts_a


def test_sharded_and_legacy_results_never_share_cache_entries(tmp_path):
    """Sharded task results are mode-tagged: a legacy rerun over the same
    cache must miss (multi-cell ids differ between modes)."""
    cache_root = tmp_path / "cache"
    sharded = ParallelRunner(
        jobs=1, cache=ResultCache(root=cache_root),
        artifacts=ArtifactStore(root=tmp_path / "store"), shards=2,
    )
    sharded.run_many(_MULTI)
    assert sharded.cache.stats.misses == 1
    assert sharded.cache.stats.hits == 0

    _campaign_cache.clear()
    legacy = ParallelRunner(jobs=1, cache=ResultCache(root=cache_root))
    legacy.run_many(_MULTI)
    assert legacy.cache.stats.hits == 0
    assert legacy.cache.stats.misses == 1

    # Same mode, same cache: now it hits.
    _campaign_cache.clear()
    rerun = ParallelRunner(
        jobs=1, cache=ResultCache(root=cache_root),
        artifacts=ArtifactStore(root=tmp_path / "store"), shards=2,
    )
    rerun.run_many(_MULTI)
    assert rerun.cache.stats.hits == 1


def test_shards_flag_validation():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=1, shards=0)
