"""Retry policy and failure taxonomy for the fault-tolerant runner.

The runner distinguishes two failure families and treats them oppositely:

* **Transient infrastructure failures** — a worker process died
  (``BrokenProcessPool`` / killed mid-task), or a task exceeded its
  wall-clock timeout.  These say nothing about the task itself, so the
  runner retries them: bounded attempts, exponential backoff, and a
  *deterministic* seeded jitter (a pure function of ``(seed, task key,
  attempt)``) so two runs of the same sweep back off identically.
* **Task exceptions** — the task's own code raised.  Retrying would
  re-raise deterministically, so these are never retried; they are
  recorded as structured :class:`TaskFailure` results and the sweep
  continues around them.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.sim.rng import derive_seed

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "TaskTimeout",
    "FAILURE_EXCEPTION",
    "FAILURE_TIMEOUT",
    "FAILURE_WORKER_CRASH",
    "wall_clock_limit",
]

#: ``TaskFailure.kind`` values.
FAILURE_EXCEPTION = "exception"      # the task's own code raised (not retried)
FAILURE_TIMEOUT = "timeout"          # exceeded the wall-clock limit (retried)
FAILURE_WORKER_CRASH = "worker-crash"  # the worker process died (retried)

#: Failure kinds the runner may retry.
TRANSIENT_KINDS = frozenset({FAILURE_TIMEOUT, FAILURE_WORKER_CRASH})


class TaskTimeout(Exception):
    """Raised (via SIGALRM) when a task exceeds its wall-clock limit."""


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that could not produce a result.

    Appears in place of the task's partial result; ``merge`` never sees it —
    the runner substitutes a failure report for the whole experiment instead
    of attempting a merge over holes.
    """

    experiment_id: str
    index: int
    seed: int
    kind: str  # one of FAILURE_* above
    error_type: str = ""
    message: str = ""
    attempts: int = 1

    def describe(self) -> str:
        detail = f"{self.error_type}: {self.message}" if self.error_type else self.message
        return (
            f"task {self.index} (seed {self.seed}) {self.kind} "
            f"after {self.attempts} attempt(s): {detail}".rstrip(": ")
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts every try including the first; transient
    failures are retried until it is exhausted, then the runner makes one
    final *degraded* in-process attempt (see ``parallel.py``).  Task
    exceptions are never retried regardless of this policy.
    """

    max_attempts: int = 5
    base_delay: float = 0.2     # seconds before the first retry
    backoff_factor: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.5         # fraction of the delay drawn as jitter
    seed: int = field(default=0)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def should_retry(self, kind: str, attempt: int) -> bool:
        """Whether a failure of ``kind`` on try number ``attempt`` retries."""
        return kind in TRANSIENT_KINDS and attempt < self.max_attempts

    def delay(self, task_key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        Deterministic: the jitter is derived from ``(policy seed, task key,
        attempt)`` via the same SHA-256 derivation the simulation seeds use,
        so identical sweeps sleep identically — no wall-clock or process
        state leaks into the schedule.
        """
        raw = self.base_delay * self.backoff_factor ** (attempt - 1)
        capped = min(raw, self.max_delay)
        if self.jitter == 0.0 or capped == 0.0:
            return capped
        unit = derive_seed(self.seed, f"backoff/{task_key}/{attempt}") / 2 ** 64
        # Jitter shrinks the delay (never grows it): full-jitter style keeps
        # the cap honest while decorrelating retry storms.
        return capped * (1.0 - self.jitter * unit)


@contextmanager
def wall_clock_limit(seconds):
    """Raise :class:`TaskTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM``, so it interrupts Python-level work (sleeps,
    event loops, simulation steps) but not a stuck C extension — the runner
    backstops that case with a driver-side watchdog that kills the worker
    pool.  No-op when ``seconds`` is falsy, on platforms without ``SIGALRM``,
    or off the main thread (signals only deliver there).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise TaskTimeout(f"exceeded wall-clock limit of {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
