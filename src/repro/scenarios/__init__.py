"""Scenario programs: a declarative DSL, a library, an oracle, and a fuzzer.

Import surface:

* the DSL dataclasses (:class:`ScenarioProgram` and its parts) and the
  dict/YAML loaders are dependency-free;
* :mod:`repro.scenarios.strategies` and :mod:`repro.scenarios.fuzz` need
  hypothesis and are imported lazily — ``import repro.scenarios`` works
  without it.
"""

from repro.scenarios.dsl import (
    SCHEDULERS,
    FederationDef,
    GatewayFleet,
    IngestFaults,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
)
from repro.scenarios.library import (
    SCENARIO_LIBRARY,
    deadline_gateway_campaign,
    grid5000_reconfig,
    osg_opportunistic,
    teragrid_baseline,
)
from repro.scenarios.loader import load_program, program_from_dict, program_from_yaml
from repro.scenarios.oracle import (
    OracleReport,
    Violation,
    check_merged_artifact,
    check_scenario,
)

__all__ = [
    "SCENARIO_LIBRARY",
    "SCHEDULERS",
    "FederationDef",
    "GatewayFleet",
    "IngestFaults",
    "LoadShape",
    "ModalityMix",
    "OracleReport",
    "OutageRegime",
    "RecoverySuite",
    "ScenarioProgram",
    "Violation",
    "check_merged_artifact",
    "check_scenario",
    "deadline_gateway_campaign",
    "grid5000_reconfig",
    "load_program",
    "osg_opportunistic",
    "program_from_dict",
    "program_from_yaml",
    "teragrid_baseline",
]
