"""Tests for named queues and routing."""

import pytest

import repro.infra as I
from repro.infra.cluster import Cluster
from repro.infra.job import AttributeKeys, Job
from repro.infra.queues import QueueSet, QueueSpec, default_queues
from repro.infra.units import DAY, HOUR
from repro.sim import Simulator


def cluster():
    return Cluster("mach", nodes=32, cores_per_node=8)  # 256 cores


def job(cores=8, walltime=HOUR, interactive=False, priority=0.0):
    attributes = {AttributeKeys.INTERACTIVE: True} if interactive else {}
    return Job(
        user="u", account="acct", cores=cores, walltime=walltime,
        true_runtime=walltime, attributes=attributes, priority=priority,
    )


def test_default_routing_by_shape():
    queues = default_queues(cluster())
    assert queues.route(job(cores=8, walltime=4 * HOUR)).name == "normal"
    assert queues.route(job(cores=200, walltime=12 * HOUR)).name == "wide"
    assert queues.route(job(cores=8, walltime=3 * DAY)).name == "long"
    assert queues.route(job(cores=200, walltime=3 * DAY)).name == "special"
    assert queues.route(job(cores=4, walltime=HOUR, interactive=True)).name == (
        "interactive"
    )


def test_interactive_queue_never_takes_batch_work():
    queues = default_queues(cluster())
    # A tiny short batch job still goes to normal, not interactive.
    assert queues.route(job(cores=1, walltime=600.0)).name == "normal"


def test_oversized_interactive_falls_back():
    queues = default_queues(cluster())
    routed = queues.route(job(cores=200, walltime=HOUR, interactive=True))
    assert routed.name == "wide"


def test_unroutable_job_rejected():
    queues = QueueSet([QueueSpec(name="normal", max_walltime=HOUR, max_cores=8)])
    with pytest.raises(ValueError):
        queues.route(job(cores=16, walltime=HOUR))


def test_queue_set_validation():
    with pytest.raises(ValueError):
        QueueSet([])
    spec = QueueSpec(name="q", max_walltime=HOUR, max_cores=8)
    with pytest.raises(ValueError):
        QueueSet([spec, spec])
    with pytest.raises(ValueError):
        QueueSpec(name="bad", max_walltime=0.0, max_cores=8)
    queues = QueueSet([spec])
    assert "q" in queues
    assert queues.get("q") is spec
    with pytest.raises(KeyError):
        queues.get("missing")


def test_site_records_routed_queue_and_boost():
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e9, users={"u"})
    central = I.CentralAccountingDB()
    site = I.ResourceProvider(sim, cluster(), ledger, central)
    wide = job(cores=200, walltime=12 * HOUR)
    site.submit(wide)
    assert wide.queue == "wide"
    assert wide.priority == 10.0  # wide queue boost
    sim.run(until=2 * DAY)
    site.feed.drain()
    record = central.all_records()[0]
    assert record.queue_name == "wide"


def test_custom_queue_set_on_site():
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e9, users={"u"})
    central = I.CentralAccountingDB()
    only_short = I.QueueSet(
        [I.QueueSpec(name="short", max_walltime=2 * HOUR, max_cores=256)]
    )
    site = I.ResourceProvider(sim, cluster(), ledger, central, queues=only_short)
    accepted = job(walltime=HOUR)
    site.submit(accepted)
    assert accepted.queue == "short"
    with pytest.raises(ValueError):
        site.submit(job(walltime=3 * HOUR))
