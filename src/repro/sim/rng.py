"""Reproducible named random streams.

Every stochastic component of the simulator draws from its own named stream so
that (a) runs are reproducible for a fixed master seed and (b) adding a new
component does not perturb the draws of existing ones (a classic variance-
reduction / reproducibility idiom in parallel simulation).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["BufferedStreams", "RandomStreams", "derive_seed"]

#: Seeds are drawn from a 64-bit space; SHA-256 keeps the derivation stable
#: across platforms and Python hash randomization (unlike ``hash()``).
_SEED_BITS = 64


def derive_seed(seed: int, key: str) -> int:
    """Derive a child master seed from ``(seed, key)``.

    The mapping is deterministic and collision-free for distinct keys (up to
    the 64-bit birthday bound), so callers may derive one seed per task —
    ``derive_seed(7, "R1:3")`` — and get the same stream no matter which
    worker, in which order, eventually runs the task.  The separator differs
    from the one :meth:`RandomStreams.stream` uses, so spawned-child seeds
    never collide with named-stream entropy of the same parent.
    """
    digest = hashlib.sha256(f"{int(seed)}/{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[: _SEED_BITS // 8], "big")


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed is derived from
    ``(master_seed, name)`` via SHA-256, so the mapping is stable across runs,
    platforms and Python hash randomization.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            entropy = int.from_bytes(digest[:16], "big")
            generator = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(entropy))
            )
            self._streams[name] = generator
        return generator

    def spawn(self, key: str | int) -> "RandomStreams":
        """A child factory with a seed derived from ``(self.seed, key)``.

        Each child is an independent universe of named streams: replicate
        ``k`` of a parallel sweep calls ``streams.spawn(k)`` and draws from
        its own streams without perturbing (or depending on) any sibling,
        regardless of the order in which the scheduler runs them.
        """
        return RandomStreams(seed=derive_seed(self.seed, str(key)))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> tuple[str, ...]:
        """Names of streams created so far."""
        return tuple(self._streams)


class BufferedStreams(RandomStreams):
    """Named streams backed by chunked vectorized pre-sampling.

    Drop-in for :class:`RandomStreams` where callers only need the
    Generator *methods* (all simulator components qualify): each named
    stream is a :class:`repro.sim.distributions.BufferedGenerator` whose
    per-distribution substream seeds derive from ``(master_seed, name)``,
    so the mapping stays order-independent and reproducible.  Used by the
    sharded scale tier; draw values intentionally differ from the plain
    sequential-interleaved :class:`RandomStreams` sequences (one shared
    cursor per name cannot be both interleaved and batched), which is why
    legacy unsharded runs keep :class:`RandomStreams`.
    """

    def __init__(self, seed: int = 0, chunk: int = 256) -> None:
        super().__init__(seed)
        self._chunk = int(chunk)
        self._buffered: dict[str, object] = {}

    def stream(self, name: str):  # type: ignore[override]
        generator = self._buffered.get(name)
        if generator is None:
            from repro.sim.distributions import BufferedGenerator

            generator = BufferedGenerator(
                derive_seed(self.seed, f"buffered:{name}"), chunk=self._chunk
            )
            self._buffered[name] = generator
        return generator

    def spawn(self, key: str | int) -> "BufferedStreams":
        return BufferedStreams(
            seed=derive_seed(self.seed, str(key)), chunk=self._chunk
        )

    def __contains__(self, name: str) -> bool:
        return name in self._buffered

    def names(self) -> tuple[str, ...]:
        return tuple(self._buffered)
