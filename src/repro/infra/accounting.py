"""Usage records and the central accounting database.

Every terminal job yields exactly one :class:`UsageRecord` — the observable
unit the paper's measurement methodology consumes.  Sites buffer records
locally and forward them to the :class:`CentralAccountingDB` in periodic
batches, mimicking the AMIE packet exchange between resource providers and
the TeraGrid central database (TGCDB).

Ground-truth fields of :class:`~repro.infra.job.Job` (``true_modality``,
``true_user``) are deliberately **not** part of the record schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.infra.job import Job, JobState
from repro.infra.units import HOUR
from repro.sim import Simulator

__all__ = ["UsageRecord", "CentralAccountingDB", "AmieFeed"]


@dataclass(frozen=True)
class UsageRecord:
    """One job's worth of accounting data, as the central database sees it."""

    job_id: int
    user: str  # the *local account* user (community account for gateways)
    account: str
    resource: str
    queue_name: str
    cores: int
    requested_walltime: float
    submit_time: float
    start_time: Optional[float]
    end_time: float
    final_state: JobState
    charged_nu: float
    attributes: dict[str, Any] = field(default_factory=dict)
    #: the charged allocation's discipline (how TG reports sliced by science)
    field_of_science: Optional[str] = None

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def elapsed(self) -> float:
        if self.start_time is None:
            return 0.0
        return self.end_time - self.start_time

    @property
    def core_hours(self) -> float:
        return self.cores * self.elapsed / HOUR

    @property
    def ran(self) -> bool:
        return self.start_time is not None

    @classmethod
    def from_job(
        cls,
        job: Job,
        queue_name: str = "normal",
        field_of_science: Optional[str] = None,
    ) -> "UsageRecord":
        """Extract the observable fields of a terminal job."""
        if not job.state.is_terminal:
            raise ValueError(f"job {job.job_id} is not terminal ({job.state})")
        if job.end_time is None or job.submit_time is None:
            raise ValueError(f"job {job.job_id} is missing timestamps")
        return cls(
            job_id=job.job_id,
            user=job.user,
            account=job.account,
            resource=job.resource or "unknown",
            queue_name=queue_name,
            cores=job.cores,
            requested_walltime=job.walltime,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            final_state=job.state,
            charged_nu=job.charged_nu,
            attributes=dict(job.attributes),
            field_of_science=field_of_science,
        )


class CentralAccountingDB:
    """The TGCDB stand-in: the union of all sites' usage records.

    Provides the indexed views the measurement system needs.  Records arrive
    in AMIE batches, so insertion order is not global time order; query
    methods sort where order matters.
    """

    def __init__(self) -> None:
        self._records: list[UsageRecord] = []
        self._by_user: dict[str, list[UsageRecord]] = {}
        self._by_resource: dict[str, list[UsageRecord]] = {}
        self._by_account: dict[str, list[UsageRecord]] = {}
        self._job_ids: set[int] = set()
        #: lifetime count of duplicate job ids skipped by :meth:`ingest`
        self.duplicates_skipped = 0

    def ingest(self, records: Iterable[UsageRecord]) -> tuple[int, int]:
        """Add a batch atomically and idempotently.

        Duplicate job ids (within the batch or against prior state) are
        skipped, not raised: a replayed AMIE packet must be a no-op, and a
        mid-batch duplicate must never leave the earlier records of its
        batch half-indexed.  Returns ``(added, duplicates)`` counters.
        """
        batch = list(records)
        fresh: list[UsageRecord] = []
        batch_ids: set[int] = set()
        duplicates = 0
        for record in batch:
            if record.job_id in self._job_ids or record.job_id in batch_ids:
                duplicates += 1
                continue
            batch_ids.add(record.job_id)
            fresh.append(record)
        # All-or-nothing from here: every validation already passed, so the
        # index updates below cannot partially apply.
        for record in fresh:
            self._job_ids.add(record.job_id)
            self._records.append(record)
            self._by_user.setdefault(record.user, []).append(record)
            self._by_resource.setdefault(record.resource, []).append(record)
            self._by_account.setdefault(record.account, []).append(record)
        self.duplicates_skipped += duplicates
        return len(fresh), duplicates

    # -- views --------------------------------------------------------------
    def all_records(self) -> list[UsageRecord]:
        return sorted(self._records, key=lambda r: (r.end_time, r.job_id))

    def records_of_user(self, user: str) -> list[UsageRecord]:
        return sorted(
            self._by_user.get(user, []), key=lambda r: (r.submit_time, r.job_id)
        )

    def records_on_resource(self, resource: str) -> list[UsageRecord]:
        return sorted(
            self._by_resource.get(resource, []),
            key=lambda r: (r.end_time, r.job_id),
        )

    def records_of_account(self, account: str) -> list[UsageRecord]:
        return sorted(
            self._by_account.get(account, []),
            key=lambda r: (r.submit_time, r.job_id),
        )

    def job_ids(self) -> frozenset[int]:
        """Every job id recorded — the oracle's no-double-charge hook."""
        return frozenset(self._job_ids)

    def users(self) -> list[str]:
        return sorted(self._by_user)

    def resources(self) -> list[str]:
        return sorted(self._by_resource)

    def total_nu(self) -> float:
        return sum(r.charged_nu for r in self._records)

    def __len__(self) -> int:
        return len(self._records)


class AmieFeed:
    """Buffers a site's records and flushes them centrally every ``interval``.

    ``on_flush`` (optional) observes each flushed batch — handy for tests.
    Call :meth:`drain` at the end of a run to push any remaining records.
    """

    def __init__(
        self,
        sim: Simulator,
        central: CentralAccountingDB,
        interval: float = 6 * HOUR,
        on_flush: Optional[Callable[[list[UsageRecord]], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.central = central
        self.interval = interval
        self.on_flush = on_flush
        self._buffer: list[UsageRecord] = []
        self.batches_sent = 0
        sim.process(self._pump(sim), name="amie-feed")

    def publish(self, record: UsageRecord) -> None:
        self._buffer.append(record)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def drain(self) -> int:
        """Flush whatever is buffered right now; returns records sent.

        If ingest fails, the batch is put back at the *front* of the buffer
        (records published mid-failure keep their order behind it), so a
        transient central-DB error delays the batch instead of losing it.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        try:
            self.central.ingest(batch)
        except Exception:
            self._buffer = batch + self._buffer
            raise
        self.batches_sent += 1
        if self.on_flush is not None:
            self.on_flush(batch)
        return len(batch)

    def _pump(self, sim: Simulator):
        while True:
            yield sim.timeout(self.interval)
            self.drain()
