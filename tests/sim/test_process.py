"""Tests for processes, events, interrupts and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator


def test_process_return_value_is_event_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == 42
    assert proc.ok


def test_process_can_wait_on_process():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(3.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        log.append((sim.now, result))

    sim.process(parent(sim))
    sim.run()
    assert log == [(3.0, "child-result")]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(1.0)
        return "done"

    def parent(sim, child_proc):
        yield sim.timeout(10.0)
        result = yield child_proc
        log.append((sim.now, result))

    child_proc = sim.process(child(sim))
    sim.process(parent(sim, child_proc))
    sim.run()
    assert log == [(10.0, "done")]


def test_child_failure_propagates_to_waiting_parent():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child failed"]


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    log = []

    def trigger(sim, event):
        yield sim.timeout(2.0)
        event.succeed("payload")

    def waiter(sim, event):
        value = yield event
        log.append((sim.now, value))

    event = sim.event()
    sim.process(trigger(sim, event))
    sim.process(waiter(sim, event))
    sim.run()
    assert log == [(2.0, "payload")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt(cause="wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(5.0, "wake up")]


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [6.0]


def test_interrupting_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    assert not proc.is_alive
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    log = []

    def worker(sim, delay, tag):
        yield sim.timeout(delay)
        return tag

    def parent(sim):
        procs = [sim.process(worker(sim, d, t)) for d, t in [(5, "a"), (2, "b"), (9, "c")]]
        results = yield AllOf(sim, procs)
        log.append((sim.now, sorted(results.values())))

    sim.process(parent(sim))
    sim.run()
    assert log == [(9.0, ["a", "b", "c"])]


def test_any_of_returns_on_first_event():
    sim = Simulator()
    log = []

    def worker(sim, delay, tag):
        yield sim.timeout(delay)
        return tag

    def parent(sim):
        procs = [sim.process(worker(sim, d, t)) for d, t in [(5, "a"), (2, "b")]]
        results = yield AnyOf(sim, procs)
        log.append((sim.now, list(results.values())))

    sim.process(parent(sim))
    sim.run()
    assert log == [(2.0, ["b"])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    log = []

    def parent(sim):
        results = yield AllOf(sim, [])
        log.append((sim.now, results))

    sim.process(parent(sim))
    sim.run()
    assert log == [(0.0, {})]


def test_all_of_fails_if_child_fails():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("bad child")

    def good(sim):
        yield sim.timeout(5.0)

    def parent(sim):
        try:
            yield AllOf(sim, [sim.process(bad(sim)), sim.process(good(sim))])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["bad child"]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(TypeError):
        sim.run()


def test_cross_simulator_event_rejected():
    sim_a, sim_b = Simulator(), Simulator()

    def proc(sim_a, sim_b):
        yield sim_b.timeout(1.0)

    sim_a.process(proc(sim_a, sim_b))
    with pytest.raises(RuntimeError):
        sim_a.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_name_defaults_to_generator_name():
    sim = Simulator()

    def my_worker(sim):
        yield sim.timeout(1.0)

    proc = sim.process(my_worker(sim))
    assert proc.name == "my_worker"
    named = sim.process(my_worker(sim), name="custom")
    assert named.name == "custom"
    sim.run()
