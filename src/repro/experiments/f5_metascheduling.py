"""F5 — Resource-selection strategies vs information staleness.

Shape expectation (the TeraGrid resource-selection-tools result): informed
strategies beat RANDOM/ROUND_ROBIN on time-to-start; PREDICTED_START (a
fresh scheduler probe) beats LEAST_LOADED; and LEAST_LOADED degrades toward
the uninformed strategies as the information service's publication interval
grows (herding on stale snapshots).
"""

from __future__ import annotations

import numpy as np

import repro.infra as infra
from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.infra.job import Job
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.units import DAY, HOUR, MINUTE
from repro.sim import RandomStreams, Simulator
from repro.sim.distributions import bounded_lognormal, log2_cores

__all__ = ["run"]


def _build_federation(sim, publish_interval):
    ledger = infra.AllocationLedger()
    ledger.create("acct", infra.AllocationType.RESEARCH, 1e12, users={"u"})
    central = infra.CentralAccountingDB()
    providers = [
        infra.ResourceProvider(
            sim,
            infra.Cluster(name, nodes=nodes, cores_per_node=8),
            ledger,
            central,
        )
        for name, nodes in [("alpha", 48), ("beta", 32), ("gamma", 16)]
    ]
    info = infra.InformationService(
        sim, providers, publish_interval=publish_interval
    )
    return providers, info


def _measure(strategy, publish_interval, days, seed, load):
    sim = Simulator()
    providers, info = _build_federation(sim, publish_interval)
    streams = RandomStreams(seed)
    meta = infra.Metascheduler(
        providers,
        strategy,
        rng=streams.stream("selection"),
        info_service=info,
    )
    rng = streams.stream("workload")
    total_cores = sum(p.cluster.total_cores for p in providers)
    mean_demand = (2 ** 3.5) * (2 * HOUR)
    rate = load * total_cores / mean_demand
    submitted = []

    def feeder(sim):
        horizon = days * DAY
        t = 0.0
        while True:
            gap = rng.exponential(1.0 / rate)
            t += gap
            if t >= horizon:
                return
            yield sim.timeout(gap)
            cores = log2_cores(rng, 1, 128, 3.0, 1.2)
            runtime = bounded_lognormal(rng, 90 * MINUTE, 1.0, 5 * MINUTE, 12 * HOUR)
            job = Job(
                user="u",
                account="acct",
                cores=cores,
                walltime=runtime * 1.5,
                true_runtime=runtime,
            )
            meta.submit(job)
            submitted.append(job)

    sim.process(feeder(sim), name="feeder")
    sim.run(until=days * DAY)
    waits = [
        j.wait_time / MINUTE for j in submitted if j.start_time is not None
    ]
    return {
        "mean_wait_min": float(np.mean(waits)) if waits else float("nan"),
        "p90_wait_min": float(np.percentile(waits, 90)) if waits else float("nan"),
        "n_started": len(waits),
        "n_submitted": len(submitted),
    }


@register("F5")
def run(days: float = 10.0, seed: int = 3, load: float = 0.8) -> ExperimentOutput:
    strategies = [
        SelectionStrategy.RANDOM,
        SelectionStrategy.ROUND_ROBIN,
        SelectionStrategy.LEAST_LOADED,
        SelectionStrategy.PREDICTED_START,
    ]
    staleness_level = 5 * MINUTE
    rows = []
    data: dict = {"strategies": {}, "staleness": {}}
    for strategy in strategies:
        outcome = _measure(strategy, staleness_level, days, seed, load)
        rows.append(
            [
                strategy.value,
                f"{outcome['mean_wait_min']:.1f} min",
                f"{outcome['p90_wait_min']:.1f} min",
            ]
        )
        data["strategies"][strategy.value] = outcome
    table_a = ascii_table(
        ["strategy", "mean time-to-start", "p90"],
        rows,
        title=(
            f"F5a — Resource selection strategies ({days:g} days, "
            f"load {load:.0%}, info published every 5 min)"
        ),
    )

    rows_b = []
    for interval in (1 * MINUTE, 15 * MINUTE, 1 * HOUR, 6 * HOUR):
        outcome = _measure(
            SelectionStrategy.LEAST_LOADED, interval, days, seed, load
        )
        rows_b.append(
            [
                f"{interval / MINUTE:.0f} min",
                f"{outcome['mean_wait_min']:.1f} min",
                f"{outcome['p90_wait_min']:.1f} min",
            ]
        )
        data["staleness"][interval] = outcome
    table_b = ascii_table(
        ["publish interval", "mean time-to-start", "p90"],
        rows_b,
        title="F5b — LEAST_LOADED vs information staleness",
    )
    return ExperimentOutput(
        experiment_id="F5",
        title="Metascheduling strategies and staleness",
        text=table_a + "\n\n" + table_b,
        data=data,
    )
