"""Metascheduler selection and failover around down or drained sites.

Covers the eligibility rules (down and fully-drained providers never get
selected; impossible jobs still raise the original no-fit error), the
LEAST_LOADED guard against drained denominators, stale-info failover on
submission, outage-time requeueing with bridged wait events, and that the
whole failover path is deterministic under a fixed seed.
"""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import Job, JobState
from repro.infra.metascheduler import NoEligibleSiteError
from repro.infra.scheduler.base import Reservation
from repro.infra.units import HOUR, MINUTE
from repro.sim import Simulator


def make_federation(n=3, nodes=8):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"u"})
    central = I.CentralAccountingDB()
    providers = [
        I.ResourceProvider(
            sim, I.Cluster(f"site{i}", nodes=nodes, cores_per_node=4),
            ledger, central,
        )
        for i in range(n)
    ]
    return sim, providers, central


def job(cores=4, walltime=2 * HOUR):
    return Job(user="u", account="acct", cores=cores, walltime=walltime,
               true_runtime=walltime / 2)


def test_select_excludes_down_provider():
    sim, providers, _ = make_federation()
    meta = I.Metascheduler(providers, I.SelectionStrategy.ROUND_ROBIN)
    providers[1].mark_down()
    picks = {meta.select(job()).name for _ in range(6)}
    assert picks == {"site0", "site2"}


def test_select_excludes_fully_drained_provider():
    sim, providers, _ = make_federation()
    meta = I.Metascheduler(providers, I.SelectionStrategy.PREDICTED_START)
    # An unplanned drain blocks every node of site0: up, but unusable.
    providers[0].scheduler.add_reservation(
        Reservation(start=0.0, end=10 * HOUR, nodes=8, access=None,
                    label="drain")
    )
    assert providers[0].up and providers[0].available_nodes == 0
    picks = {meta.select(job()).name for _ in range(6)}
    assert picks <= {"site1", "site2"}


def test_no_eligible_site_vs_no_fit_errors():
    sim, providers, _ = make_federation()
    meta = I.Metascheduler(providers, I.SelectionStrategy.PREDICTED_START)
    # A job too big for the whole federation keeps the original error...
    with pytest.raises(ValueError, match="fits on no site"):
        meta.select(job(cores=4096))
    # ...while a normal job with every site down gets the outage error.
    for provider in providers:
        provider.mark_down()
    with pytest.raises(NoEligibleSiteError):
        meta.select(job())


def test_least_loaded_survives_drained_site_without_div_by_zero():
    sim, providers, _ = make_federation()
    info = I.InformationService(sim, providers, publish_interval=5 * MINUTE)
    meta = I.Metascheduler(
        providers, I.SelectionStrategy.LEAST_LOADED, info_service=info
    )
    providers[0].scheduler.add_reservation(
        Reservation(start=0.0, end=10 * HOUR, nodes=8, access=None,
                    label="drain")
    )
    sim.run(until=6 * MINUTE)  # publish the drained (0 usable nodes) view
    assert info.query("site0")["available_nodes"] == 0
    choice = meta.select(job())  # must not raise ZeroDivisionError
    assert choice.name in {"site1", "site2"}


def test_submit_fails_over_past_stale_info():
    sim, providers, _ = make_federation()
    info = I.InformationService(
        sim, providers, publish_interval=5 * MINUTE,
        outage_propagation_lag=1 * HOUR,
    )
    meta = I.Metascheduler(
        providers, I.SelectionStrategy.LEAST_LOADED, info_service=info
    )
    outcome = {}

    def world(sim):
        yield sim.timeout(10 * MINUTE)
        providers[0].mark_down()
        yield sim.timeout(10 * MINUTE)
        # Inside the propagation window the dead site still looks up (and
        # empty, so LEAST_LOADED prefers it); submission discovers the truth.
        assert info.believed_up("site0")
        j = job()
        accepted = meta.submit(j)
        outcome["provider"] = accepted.name
        outcome["reroutes"] = meta.reroutes
        outcome["state"] = j.state

    sim.process(world(sim))
    sim.run(until=2 * HOUR)
    assert outcome["provider"] in {"site1", "site2"}
    assert outcome["reroutes"] >= 1
    assert outcome["state"] in (JobState.PENDING, JobState.RUNNING,
                                JobState.COMPLETED)


def test_handle_outage_requeues_pending_and_bridges_events():
    sim, providers, _ = make_federation(n=2, nodes=2)
    meta = I.Metascheduler(providers, I.SelectionStrategy.PREDICTED_START)
    log = []

    def world(sim):
        # Fill site0 so a metascheduled job queues behind the blocker, then
        # take site0 down and requeue: the job must land on site1 and the
        # *original* completion event must still release the waiter.
        blocker = job(cores=8, walltime=20 * HOUR)
        providers[0].submit(blocker)
        slower = job(cores=8, walltime=50 * HOUR)  # site1 looks even worse
        providers[1].submit(slower)
        pending = job(cores=4, walltime=1 * HOUR)
        chosen = meta.submit(pending)
        assert chosen is providers[0]
        waiter = chosen.scheduler.wait_for(pending)
        yield sim.timeout(1 * HOUR)
        assert pending.state is JobState.PENDING
        providers[0].mark_down()
        moved = meta.handle_outage(providers[0])
        log.append(("moved", moved))
        done = yield waiter
        log.append(("done", done.job_id, done.resource, done.state))

    sim.process(world(sim))
    sim.run(until=60 * HOUR)
    assert ("moved", 1) in log
    (_tag, job_id, resource, state) = log[-1]
    assert resource == "site1"
    assert state is JobState.COMPLETED
    assert meta.requeues == 1


def test_handle_outage_leaves_job_queued_when_no_alternative():
    sim, providers, _ = make_federation(n=2, nodes=2)
    meta = I.Metascheduler(providers, I.SelectionStrategy.PREDICTED_START)
    providers[1].mark_down()
    providers[0].submit(job(cores=8, walltime=20 * HOUR))  # fill site0
    pending = job()
    meta.submit(pending)  # only site0 is eligible; queues behind the blocker
    assert pending.state is JobState.PENDING
    providers[0].mark_down()
    assert meta.handle_outage(providers[0]) == 0
    assert pending.state is JobState.PENDING  # waiting out the outage


def _failover_trace(seed):
    sim, providers, _ = make_federation()
    info = I.InformationService(
        sim, providers, publish_interval=5 * MINUTE,
        outage_propagation_lag=30 * MINUTE,
    )
    meta = I.Metascheduler(
        providers, I.SelectionStrategy.RANDOM,
        rng=np.random.default_rng(seed), info_service=info,
    )
    trace = []

    def chaos(sim):
        yield sim.timeout(20 * MINUTE)
        providers[0].mark_down()
        yield sim.timeout(2 * HOUR)
        providers[0].mark_up()

    def feeder(sim):
        for i in range(20):
            j = job()
            accepted = meta.submit(j)
            trace.append((i, accepted.name))
            yield sim.timeout(11 * MINUTE)

    sim.process(chaos(sim))
    sim.process(feeder(sim))
    sim.run(until=6 * HOUR)
    return trace, meta.reroutes


def test_failover_is_deterministic_under_fixed_seed():
    first = _failover_trace(9)
    second = _failover_trace(9)
    assert first == second
    assert first[1] >= 1, "scenario must actually exercise failover"
    routed = [name for _i, name in first[0]]
    assert "site0" in routed, "site0 should be used outside its outage"
