"""F8 — Pilot jobs: ensemble throughput vs measurement visibility.

Pilot systems (SAGA BigJob, Condor glide-ins) were how serious ensemble
users escaped per-task queue waits on the TeraGrid.  Two consequences,
quantified here on the same busy machine:

* **measurement** (the reproduction target) — accounting sees *one
  placeholder job*: an uninstrumented pilot turns an ensemble user into a
  batch user in the measured modality table.  A pilot that forwards the
  ensemble attribute restores the truth — the paper's instrumentation
  argument extended to pilot middleware.  Shape expectation: records seen
  drop from W to 1; measured modality flips ENSEMBLE → BATCH for the
  untagged pilot and back for the tagged one.
* **performance** (reported, not asserted) — folklore says a W-task ensemble
  pays one queue wait instead of W.  Under this package's idealized EASY
  backfill that advantage does *not* materialize: tiny short tasks are
  perfect backfill filler and start almost immediately even on a saturated
  machine, while the medium-sized pilot placeholder waits like any other
  medium job.  The pilot's real-world wins rested on queue frictions outside
  this model (scheduler iteration intervals, deep priority backlogs,
  fair-share starvation of bursty users); the makespan column quantifies the
  gap under the frictions that *are* modeled (per-user eligibility caps).
"""

from __future__ import annotations

import repro.infra as infra
from repro.core import AttributeClassifier
from repro.core.modalities import Modality
from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.experiments.f3_wait_times import _feeder, single_site_workload
from repro.infra.job import AttributeKeys, Job
from repro.infra.pilot import PilotTask
from repro.infra.units import DAY, HOUR
from repro.sim import AllOf, RandomStreams, Simulator

__all__ = ["run"]

ENSEMBLE_USER = "ens_user"


def _make_site(sim, seed, days, load, max_eligible_per_user=4):
    """A busy site with a Moab-style per-user eligibility cap.

    The cap is what made pilots attractive in production: a 40-job sweep
    trickles through the scheduler ``max_eligible_per_user`` jobs at a time,
    while a pilot is one job.
    """
    from repro.infra.scheduler import EasyBackfillScheduler

    ledger = infra.AllocationLedger()
    ledger.create("acct", infra.AllocationType.RESEARCH, 1e12,
                  users={"u", ENSEMBLE_USER})
    central = infra.CentralAccountingDB()
    cluster = infra.Cluster("mach", nodes=64, cores_per_node=8)
    def factory(sim, cluster, on_job_end=None):
        return EasyBackfillScheduler(
            sim,
            cluster,
            on_job_end=on_job_end,
            max_eligible_per_user=max_eligible_per_user,
        )

    site = infra.ResourceProvider(
        sim, cluster, ledger, central, scheduler_factory=factory
    )
    rng = RandomStreams(seed).stream("f8-background")
    arrivals = single_site_workload(rng, cluster, days, load=load)
    sim.process(_feeder(sim, site.scheduler, arrivals), name="background")
    return site, central


def _classify_user(central) -> Modality:
    records = central.records_of_user(ENSEMBLE_USER)
    classification = AttributeClassifier().classify(records)
    return classification.identity_primary[ENSEMBLE_USER]


def _direct_arm(seed, days, load, width, task_cores, task_runtime):
    sim = Simulator()
    site, central = _make_site(sim, seed, days, load)

    outcome = {}

    def driver(sim):
        t0 = sim.now
        waits = []
        for i in range(width):
            job = Job(
                user=ENSEMBLE_USER,
                account="acct",
                cores=task_cores,
                walltime=task_runtime * 1.5,
                true_runtime=task_runtime,
                attributes={AttributeKeys.ENSEMBLE_ID: "f8-sweep"},
            )
            site.submit(job)
            waits.append(site.scheduler.wait_for(job))
            yield sim.timeout(10.0)
        yield AllOf(sim, waits)
        outcome["makespan_h"] = (sim.now - t0) / HOUR

    def starter(sim):
        yield sim.timeout(2 * DAY)  # let the queue fill first
        yield sim.process(driver(sim))

    sim.process(starter(sim), name="driver")
    sim.run(until=days * DAY)
    site.feed.drain()
    outcome["records_seen"] = len(central.records_of_user(ENSEMBLE_USER))
    outcome["measured_modality"] = _classify_user(central).value
    return outcome


def _pilot_arm(seed, days, load, width, task_cores, task_runtime, tagged):
    sim = Simulator()
    site, central = _make_site(sim, seed, days, load)
    manager = infra.PilotManager(sim)
    outcome = {}

    pilot_cores = 16 * task_cores // 2  # enough for 8 concurrent tasks
    work_hours = width * task_runtime / (pilot_cores / task_cores)
    walltime = work_hours * 1.3 + HOUR

    def driver(sim):
        t0 = sim.now
        attributes = (
            {AttributeKeys.ENSEMBLE_ID: "f8-sweep"} if tagged else {}
        )
        pilot = manager.launch(
            site,
            user=ENSEMBLE_USER,
            account="acct",
            cores=pilot_cores,
            walltime=walltime,
            attributes=attributes,
        )
        tasks = [
            pilot.submit_task(PilotTask(cores=task_cores, runtime=task_runtime))
            for _ in range(width)
        ]
        yield site.scheduler.wait_for(pilot.job)
        done = [t for t in tasks if t.done]
        outcome["tasks_completed"] = len(done)
        if done:
            outcome["makespan_h"] = (
                max(t.finished_at for t in done) - t0
            ) / HOUR

    def starter(sim):
        yield sim.timeout(2 * DAY)
        yield sim.process(driver(sim))

    sim.process(starter(sim), name="driver")
    sim.run(until=days * DAY)
    site.feed.drain()
    outcome["records_seen"] = len(central.records_of_user(ENSEMBLE_USER))
    outcome["measured_modality"] = _classify_user(central).value
    return outcome


@register("F8")
def run(
    days: float = 8.0,
    seed: int = 17,
    load: float = 0.85,
    width: int = 160,
    task_cores: int = 8,
    task_runtime: float = 0.25 * HOUR,
) -> ExperimentOutput:
    """Defaults model the canonical pilot use case — many *short* tasks,
    where per-wave queue waits (under the site's per-user eligibility cap)
    dwarf task runtime.  For hour-scale tasks the direct path competes; see
    the knobs to explore that regime."""
    direct = _direct_arm(seed, days, load, width, task_cores, task_runtime)
    pilot_untagged = _pilot_arm(
        seed, days, load, width, task_cores, task_runtime, tagged=False
    )
    pilot_tagged = _pilot_arm(
        seed, days, load, width, task_cores, task_runtime, tagged=True
    )
    rows = []
    for label, outcome in [
        (f"direct ({width} jobs)", direct),
        ("pilot (untagged)", pilot_untagged),
        ("pilot (ensemble attribute)", pilot_tagged),
    ]:
        rows.append(
            [
                label,
                f"{outcome.get('makespan_h', float('nan')):.1f}h",
                outcome["records_seen"],
                outcome["measured_modality"],
            ]
        )
    text = ascii_table(
        ["submission path", "ensemble makespan", "accounting records",
         "measured modality"],
        rows,
        title=(
            f"F8 — Pilot jobs vs direct submission "
            f"({width} x {task_cores}-core {task_runtime / HOUR:g}h tasks on a "
            f"machine at {load:.0%} load)"
        ),
    )
    return ExperimentOutput(
        experiment_id="F8",
        title="Pilot-job throughput and the pilot measurement gap",
        text=text,
        data={
            "direct": direct,
            "pilot_untagged": pilot_untagged,
            "pilot_tagged": pilot_tagged,
        },
    )
