"""F4 — Capability scheduling: plain EASY vs weekly-drain windows.

Shape expectation (Hazlewood et al., reproduced here): with full-machine
"hero" jobs in the mix, plain EASY loses utilization to opportunistic drains
every time a hero reaches the head of the queue, while the weekly-drain
policy confines that loss to scheduled windows — higher utilization at
bounded hero wait.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.experiments.f3_wait_times import _feeder, single_site_workload
from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler import EasyBackfillScheduler, WeeklyDrainScheduler
from repro.infra.units import DAY, HOUR, WEEK
from repro.sim import RandomStreams, Simulator

__all__ = ["run"]


def _hero_arrivals(rng, cluster, days, per_week=2):
    jobs = []
    horizon = days * DAY
    t = 0.0
    rate = per_week / WEEK
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        runtime = float(rng.uniform(4 * HOUR, 10 * HOUR))
        jobs.append(
            (
                t,
                Job(
                    user="hero",
                    account="acct",
                    cores=cluster.total_cores,
                    walltime=runtime * 1.2,
                    true_runtime=runtime,
                    # Capability runs are the mission: they jump the queue.
                    # Under plain EASY each arrival therefore forces its own
                    # opportunistic drain; the weekly policy batches them.
                    priority=100.0,
                ),
            )
        )
    return jobs


def _run(policy_factory, days, seed, load, per_week):
    sim = Simulator()
    cluster = Cluster("kraken-like", nodes=64, cores_per_node=8)
    scheduler = policy_factory(sim, cluster)
    streams = RandomStreams(seed)
    # Conservative walltime over-requests and longer jobs make opportunistic
    # drains expensive, the regime the weekly policy was designed for.
    background = single_site_workload(
        streams.stream("f4-background"),
        cluster,
        days,
        load=load,
        walltime_pad=(2.0, 5.0),
        runtime_median=4 * HOUR,
    )
    heroes = _hero_arrivals(
        streams.stream("f4-heroes"), cluster, days, per_week=per_week
    )
    arrivals = sorted(background + heroes, key=lambda pair: pair[0])
    sim.process(_feeder(sim, scheduler, arrivals), name="feeder")
    horizon = days * DAY
    sim.run(until=horizon)
    finished = [j for j in scheduler.completed if j.start_time is not None]
    delivered = sum(
        cluster.nodes_for(j.cores) * (min(j.end_time, horizon) - j.start_time)
        for j in finished
    )
    utilization = delivered / (cluster.nodes * horizon)
    hero_waits = [
        j.wait_time / HOUR for j in finished if j.user == "hero"
    ]
    background_waits = [
        j.wait_time / HOUR for j in finished if j.user != "hero"
    ]
    heroes_run = len(hero_waits)
    return {
        "utilization": utilization,
        "hero_median_wait_h": float(np.median(hero_waits)) if hero_waits else float("nan"),
        "background_median_wait_h": (
            float(np.median(background_waits)) if background_waits else float("nan")
        ),
        "heroes_run": heroes_run,
        "heroes_submitted": len(heroes),
    }


@register("F4")
def run(
    days: float = 56.0,
    seed: int = 11,
    load: float = 0.65,
    hero_rates: tuple[int, ...] = (1, 2, 4, 6),
) -> ExperimentOutput:
    """Sweep hero demand; report both policies and locate the crossover.

    The "traditional" arm is production-faithful: heroes carry priority and
    receive *fixed* (sticky) advance reservations, the Moab-era behavior
    whose bound-based idle gaps motivated the weekly drain.  The drain
    window scales with demand (as NICS sized theirs to their hero queue).
    """
    rows = []
    data = {}
    crossover = None
    for per_week in hero_rates:
        window_days = 1 if per_week <= 2 else 2
        easy = _run(
            lambda sim, cluster: EasyBackfillScheduler(
                sim, cluster, sticky_shadow=True
            ),
            days,
            seed,
            load,
            per_week,
        )
        drain = _run(
            lambda sim, cluster, w=window_days: WeeklyDrainScheduler(
                sim,
                cluster,
                capability_fraction=0.9,
                window=w * DAY,
                period=WEEK,
                first_window=3 * DAY,
            ),
            days,
            seed,
            load,
            per_week,
        )
        if crossover is None and drain["utilization"] > easy["utilization"]:
            crossover = per_week
        rows.append(
            [
                per_week,
                f"{100 * easy['utilization']:.1f}%",
                f"{100 * drain['utilization']:.1f}%",
                f"{easy['hero_median_wait_h']:.0f}h",
                f"{drain['hero_median_wait_h']:.0f}h",
                f"{easy['heroes_run']}/{drain['heroes_run']}",
            ]
        )
        data[per_week] = {"easy": easy, "drain": drain}
    text = ascii_table(
        [
            "heroes/week",
            "util (priority EASY)",
            "util (weekly drain)",
            "hero wait (EASY)",
            "hero wait (drain)",
            "heroes run (E/D)",
        ],
        rows,
        title=(
            f"F4 — Capability policies vs hero demand over {days:g} days "
            f"({load:.0%} background; drain wins utilization from "
            f"{crossover if crossover else '>max tested'} heroes/week)"
        ),
    )
    data["crossover_per_week"] = crossover
    return ExperimentOutput(
        experiment_id="F4",
        title="Utilization under capability policies",
        text=text,
        data=data,
    )
