"""Bench T2: regenerate the jobs/NUs-per-modality table."""

from repro.core.modalities import Modality


def test_t2_usage_by_modality(regenerate):
    output = regenerate("T2")
    nu_share = output.data["nu_share"]
    jobs = output.data["jobs"]
    # Batch dominates charged usage; exploratory dominates job count.
    assert nu_share[Modality.BATCH.value] > 0.5
    assert jobs[Modality.EXPLORATORY.value] > jobs[Modality.BATCH.value]
    # Gateways burn almost no NUs despite many jobs.
    assert nu_share[Modality.GATEWAY.value] < 0.05
