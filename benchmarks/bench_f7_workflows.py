"""Bench F7: regenerate workflow scaling and co-allocation overhead."""

import pytest


def test_f7_workflows(regenerate):
    output = regenerate("F7")
    sweep = dict(output.data["sweep"])
    # Sub-linear while the machine has room (staging adds only seconds),
    # then a saturation knee.
    assert sweep[8.0] == pytest.approx(sweep[4.0], rel=0.02)
    assert sweep[16.0] == pytest.approx(sweep[4.0], rel=0.02)
    assert sweep[64.0] > 1.5 * sweep[16.0]
    coupled = output.data["coupled"]
    # Coupled runtime pays roughly the WAN overhead factor.
    assert 1.15 < coupled["runtime_slowdown"] < 1.4
    assert coupled["synchronized"]
