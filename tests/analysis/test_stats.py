"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import bootstrap_ci, describe, seed_replicates


def test_describe_basic():
    stats = describe([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.n == 5
    assert stats.mean == 3.0
    assert stats.median == 3.0
    assert stats.minimum == 1.0
    assert stats.maximum == 5.0


def test_describe_single_value_has_zero_std():
    stats = describe([7.0])
    assert stats.std == 0.0
    assert stats.mean == 7.0


def test_describe_empty_raises():
    with pytest.raises(ValueError):
        describe([])


def test_bootstrap_ci_brackets_mean():
    rng = np.random.default_rng(5)
    sample = rng.normal(10.0, 2.0, size=400)
    point, low, high = bootstrap_ci(sample)
    assert low <= point <= high
    assert 9.5 < point < 10.5
    assert high - low < 1.0  # reasonably tight at n=400


def test_bootstrap_ci_deterministic():
    sample = np.random.default_rng(0).normal(size=100).tolist()
    assert bootstrap_ci(sample, seed=3) == bootstrap_ci(sample, seed=3)
    assert bootstrap_ci(sample, seed=3) != bootstrap_ci(sample, seed=4)


def test_bootstrap_ci_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], confidence=1.5)


def test_bootstrap_custom_statistic():
    point, low, high = bootstrap_ci([1, 2, 3, 100], statistic=np.median)
    assert point == 2.5
    assert low <= point <= high


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=80))
def test_bootstrap_ci_contains_point(values):
    point, low, high = bootstrap_ci(values, n_resamples=200)
    assert low - 1e-9 <= point <= high + 1e-9


def test_seed_replicates():
    stats = seed_replicates(lambda seed: float(seed * 2), seeds=[1, 2, 3])
    assert stats.n == 3
    assert stats.mean == 4.0
    with pytest.raises(ValueError):
        seed_replicates(lambda seed: 0.0, seeds=[])
