"""The function that runs inside pool workers.

Kept in its own module so only plain data (the :class:`ExperimentTask`)
crosses the pickle boundary: the worker re-imports the experiment registry
on its side and dispatches by id, which works under both fork and spawn
start methods.
"""

from __future__ import annotations

from typing import Any

__all__ = ["run_task"]


def run_task(task) -> Any:
    """Execute one task and return its picklable partial result."""
    # Importing the package (not just base) triggers experiment registration.
    import repro.experiments  # noqa: F401
    from repro.experiments.base import execute_task

    return execute_task(task)
