"""F2 — Job-size (cores) distribution per modality (CCDF).

Shape expectation: GATEWAY/EXPLORATORY curves sit far left (tiny jobs),
BATCH in the middle with a heavy tail, COUPLED far right; the BATCH and
COUPLED CCDFs cross everything else at large sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core import AttributeClassifier, compute_metrics
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table, series_block
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]

_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@register("F2")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)

    ccdf: dict[str, list[tuple[float, float]]] = {}
    percentiles = {}
    for modality in MODALITY_ORDER:
        sizes = np.asarray(metrics.job_sizes[modality], dtype=float)
        if sizes.size == 0:
            continue
        ccdf[modality.value] = [
            (float(s), float(np.mean(sizes >= s))) for s in _SIZES
        ]
        percentiles[modality] = (
            f"{np.percentile(sizes, 50):.0f}/"
            f"{np.percentile(sizes, 90):.0f}/"
            f"{sizes.max():.0f}"
        )

    table = ascii_table(
        ["modality", "cores p50/p90/max"],
        [[m.value, percentiles[m]] for m in MODALITY_ORDER if m in percentiles],
        title=f"F2 — Job sizes per modality over {days:g} days",
    )
    figure = series_block("F2 series (x=cores, y=P[size >= x])", ccdf)
    return ExperimentOutput(
        experiment_id="F2",
        title="Job-size CCDF per modality",
        text=table + "\n\n" + figure,
        data={"ccdf": ccdf},
    )


def _campaigns(params: dict) -> list:
    """The one campaign F2's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("F2", _campaigns)
