"""Tests for allocation accounts and charging."""

import pytest

from repro.infra.allocations import Allocation, AllocationLedger, AllocationType


def test_create_and_lookup():
    ledger = AllocationLedger()
    ledger.create("TG-A", AllocationType.RESEARCH, 1000.0, users={"alice", "bob"})
    allocation = ledger.get("TG-A")
    assert allocation.kind is AllocationType.RESEARCH
    assert allocation.remaining_nu == 1000.0
    assert "TG-A" in ledger
    assert len(ledger) == 1


def test_duplicate_account_rejected():
    ledger = AllocationLedger()
    ledger.create("TG-A", AllocationType.STARTUP, 10.0)
    with pytest.raises(ValueError):
        ledger.create("TG-A", AllocationType.STARTUP, 10.0)


def test_unknown_account_raises():
    with pytest.raises(KeyError):
        AllocationLedger().get("nope")


def test_charge_with_overdraft():
    allocation = Allocation("A", AllocationType.RESEARCH, budget_nu=100.0)
    assert allocation.charge(80.0) == 80.0
    assert allocation.charge(50.0) == 50.0  # overdraft allowed by default
    assert allocation.remaining_nu == -30.0
    assert allocation.exhausted


def test_charge_clipped_without_overdraft():
    allocation = Allocation(
        "A", AllocationType.STARTUP, budget_nu=100.0, overdraft_allowed=False
    )
    assert allocation.charge(80.0) == 80.0
    assert allocation.charge(50.0) == 20.0
    assert allocation.charge(50.0) == 0.0
    assert allocation.remaining_nu == 0.0


def test_negative_charge_rejected():
    allocation = Allocation("A", AllocationType.RESEARCH, budget_nu=10.0)
    with pytest.raises(ValueError):
        allocation.charge(-1.0)


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Allocation("A", AllocationType.RESEARCH, budget_nu=-5.0)


def test_accounts_of_user_and_add_user():
    ledger = AllocationLedger()
    ledger.create("A", AllocationType.RESEARCH, 10.0, users={"alice"})
    ledger.create("B", AllocationType.COMMUNITY, 10.0)
    ledger.add_user("B", "alice")
    ledger.add_user("B", "alice")  # idempotent
    accounts = {a.account_id for a in ledger.accounts_of("alice")}
    assert accounts == {"A", "B"}
    assert ledger.accounts_of("nobody") == []


def test_total_charged_sums_accounts():
    ledger = AllocationLedger()
    ledger.create("A", AllocationType.RESEARCH, 100.0)
    ledger.create("B", AllocationType.RESEARCH, 100.0)
    ledger.charge("A", 30.0)
    ledger.charge("B", 12.5)
    assert ledger.total_charged() == pytest.approx(42.5)
