"""ScenarioConfig rejects bad knobs at construction, not mid-simulation."""

import pytest

from repro.workloads import ScenarioConfig


@pytest.mark.parametrize(
    "knobs, message",
    [
        ({"days": -1.0}, "days must be positive"),
        ({"days": 0.0}, "days must be positive"),
        ({"gateway_tagging_coverage": -0.1}, "gateway_tagging_coverage"),
        ({"gateway_tagging_coverage": 1.5}, "gateway_tagging_coverage"),
        ({"gateway_backlog": -1}, "gateway_backlog must be >= 0"),
        ({"gateway_adoption_ramp_days": -2.0}, "gateway_adoption_ramp_days"),
        ({"amie_interval": 0.0}, "amie_interval must be positive"),
        ({"amie_interval": -3600.0}, "amie_interval must be positive"),
        ({"info_publish_interval": 0.0}, "info_publish_interval"),
        ({"outage_propagation_lag": -60.0}, "outage_propagation_lag"),
    ],
)
def test_bad_knob_rejected_with_nameable_error(knobs, message):
    with pytest.raises(ValueError, match=message):
        ScenarioConfig(**knobs)


def test_replace_revalidates():
    from dataclasses import replace

    config = ScenarioConfig()
    with pytest.raises(ValueError, match="days must be positive"):
        replace(config, days=-5.0)


def test_run_scenario_overrides_are_validated():
    from repro.workloads import run_scenario

    with pytest.raises(ValueError, match="gateway_backlog"):
        run_scenario(days=1.0, gateway_backlog=-4)


def test_defaults_still_valid():
    config = ScenarioConfig()
    assert config.days > 0
    assert config.horizon == config.days * 86400.0
