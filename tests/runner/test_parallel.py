"""Tests for the parallel runner: job resolution, task planning, caching."""

import pytest

from repro.experiments.base import (
    ExperimentTask,
    merge_tasks,
    plan_tasks,
    task_plans,
)
from repro.runner import ParallelRunner, ResultCache, resolve_jobs


# -- worker-count resolution ---------------------------------------------------

def test_explicit_jobs_win(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5


def test_env_must_be_integer(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs()


def test_default_is_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert resolve_jobs() == max(1, os.cpu_count() or 1)


def test_jobs_clamped_to_one():
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-4) == 1


# -- task planning -------------------------------------------------------------

def test_declared_plans_exist_for_replicate_experiments():
    for experiment_id in ("R1", "A3", "F6"):
        assert experiment_id in task_plans


def test_r1_plans_one_task_per_seed():
    tasks = plan_tasks("R1", days=3.0, seeds=(4, 9))
    assert [task.seed for task in tasks] == [4, 9]
    assert [task.index for task in tasks] == [0, 1]
    assert all(task.experiment_id == "R1" for task in tasks)


def test_undeclared_experiment_gets_single_task_plan():
    tasks = plan_tasks("T1", days=2.0)
    assert len(tasks) == 1
    assert tasks[0].params["__whole__"] == "T1"


def test_plan_tasks_rejects_unknown_experiment():
    with pytest.raises(KeyError, match="Z9"):
        plan_tasks("Z9")


def test_merge_tasks_default_plan_unwraps_single_partial():
    sentinel = object()
    assert merge_tasks("T1", [sentinel]) is sentinel


def test_tasks_are_picklable():
    import pickle

    task = ExperimentTask("R1", 0, {"days": 1.0, "seed": 3}, 3)
    assert pickle.loads(pickle.dumps(task)) == task


# -- execution + caching -------------------------------------------------------

def test_cached_rerun_recomputes_nothing(tmp_path):
    knobs = dict(days=1.0, seeds=(1, 2))
    first = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    out_first = first.run("R1", **knobs)
    assert first.cache_stats.misses == 2 and first.cache_stats.writes == 2

    second = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    out_second = second.run("R1", **knobs)
    assert second.cache_stats.hits == 2 and second.cache_stats.misses == 0
    assert out_second.text == out_first.text
    assert out_second.data == out_first.data


def test_changed_knobs_miss_the_cache(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    runner.run("R1", days=1.0, seeds=(1,))
    runner.run("R1", days=1.0, seeds=(2,))
    assert runner.cache_stats.hits == 0
    assert runner.cache_stats.misses == 2


def test_partial_cache_overlap_only_computes_new_seeds(tmp_path):
    warm = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    warm.run("R1", days=1.0, seeds=(1, 2))
    extended = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    extended.run("R1", days=1.0, seeds=(1, 2, 3))
    assert extended.cache_stats.hits == 2
    assert extended.cache_stats.misses == 1


def test_no_cache_mode_touches_no_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never-created"))
    runner = ParallelRunner(jobs=1, use_cache=False)
    runner.run("R1", days=1.0, seeds=(1,))
    assert runner.cache_stats is None
    assert not (tmp_path / "never-created").exists()


def test_run_many_returns_outputs_in_request_order(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    outputs = runner.run_many(
        [
            ("F6", dict(days=1.0, coverages=(0.0, 1.0))),
            ("R1", dict(days=1.0, seeds=(1,))),
        ]
    )
    assert [output.experiment_id for output in outputs] == ["F6", "R1"]


def test_pool_execution_matches_inline(tmp_path):
    knobs = dict(days=1.0, seeds=(1, 2))
    inline = ParallelRunner(jobs=1, use_cache=False).run("R1", **knobs)
    pooled = ParallelRunner(jobs=2, use_cache=False).run("R1", **knobs)
    assert pooled.text == inline.text
    assert pooled.data == inline.data
