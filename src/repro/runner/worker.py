"""The functions that run inside pool workers.

Kept in its own module so only plain data crosses the pickle boundary: the
worker re-imports the experiment registry on its side and dispatches by id,
which works under both fork and spawn start methods.

:func:`run_task_hardened` is the fault-tolerant entry point: it applies the
chaos harness (when ``REPRO_CHAOS`` is set), enforces the task's wall-clock
limit with a worker-side alarm, and **returns** structured outcomes instead
of raising — a task exception crossing the pickle boundary as an exception
would be indistinguishable from worker damage, and the parent must treat
the two oppositely (record vs retry).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Optional

from repro.runner.retry import TaskTimeout, wall_clock_limit

__all__ = ["run_task", "run_task_hardened", "WorkerSpec", "WorkerOutcome"]

OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one hardened execution needs (plain picklable data)."""

    task: Any  # ExperimentTask
    timeout: Optional[float]  # wall-clock seconds; None = unlimited
    attempt: int  # 1-based try number (keys the chaos draws)
    task_key: str  # stable identity for chaos/backoff derivations
    #: campaign artifact store root; None = two-stage mode disabled
    artifact_dir: Optional[str] = None
    #: trace the task's simulations and ship the sim-domain summary back
    trace_sim: bool = False
    #: scale-tier shard count; None = legacy whole-campaign resolution
    shards: Optional[int] = None


@dataclass(frozen=True)
class WorkerOutcome:
    """What came back: a value, a timeout, or the task's own exception."""

    status: str  # OUTCOME_OK | OUTCOME_TIMEOUT | OUTCOME_ERROR
    value: Any = None
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    elapsed: float = 0.0
    #: wall-clock epoch when the worker picked the task up — lets the driver
    #: place this execution's span on the run timeline (telemetry only)
    started_at: float = 0.0
    #: artifact-store counter deltas from this execution (loads, load
    #: seconds, simulations, fallbacks, ...); empty/None = nothing happened
    artifact_stats: Optional[dict] = None
    #: deterministic sim-tracer slice of this execution (``trace_sim`` only);
    #: a pure function of the task, so identical at any ``--jobs`` value
    sim_summary: Optional[dict] = None


def run_task(task) -> Any:
    """Execute one task and return its picklable partial result."""
    # Importing the package (not just base) triggers experiment registration.
    import repro.experiments  # noqa: F401
    from repro.experiments.base import execute_task

    return execute_task(task)


def run_task_hardened(spec: WorkerSpec) -> WorkerOutcome:
    """Chaos-aware, timeout-limited execution with structured outcomes."""
    from repro.runner import artifacts as artifact_mod
    from repro.runner.chaos import chaos_from_env

    started = time.monotonic()
    started_wall = time.time()
    chaos = chaos_from_env()
    if spec.artifact_dir is not None:
        # Activate (or reuse) this process's artifact store so campaign()
        # resolves through it; the store and its deserialization memo
        # persist for the life of the worker.
        artifact_mod.ensure_active_store(spec.artifact_dir)
    # Align this (possibly reused) worker's campaign-resolution mode with
    # the driver's: set every task, since the pool interleaves specs.
    from repro.workloads import sharding

    sharding.set_shard_mode(spec.shards)
    stats_before = artifact_mod.stats_snapshot()
    sim_summary = None
    try:
        with wall_clock_limit(spec.timeout):
            if chaos.active:
                # May os._exit (kill) or sleep (hang) — inside the limit, so
                # an injected hang surfaces as an ordinary task timeout.
                chaos.pre_task(spec.task_key, spec.attempt)
            if spec.trace_sim:
                from repro.obs.trace import traced_simulation

                with traced_simulation() as tracer:
                    value = run_task(spec.task)
                # Only completed executions report: a partial trace from an
                # interrupted task would not be seed-stable.
                sim_summary = tracer.sim_summary()
            else:
                value = run_task(spec.task)
    except TaskTimeout as exc:
        return WorkerOutcome(
            status=OUTCOME_TIMEOUT,
            message=str(exc),
            elapsed=time.monotonic() - started,
            started_at=started_wall,
            artifact_stats=artifact_mod.stats_delta(stats_before),
        )
    except BaseException as exc:  # the task's own failure: record, never retry
        return WorkerOutcome(
            status=OUTCOME_ERROR,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
            elapsed=time.monotonic() - started,
            started_at=started_wall,
            artifact_stats=artifact_mod.stats_delta(stats_before),
        )
    return WorkerOutcome(
        status=OUTCOME_OK,
        value=value,
        elapsed=time.monotonic() - started,
        started_at=started_wall,
        artifact_stats=artifact_mod.stats_delta(stats_before),
        sim_summary=sim_summary,
    )
