"""Measurement-side views over the central accounting stream.

Classification needs two things the raw record list does not give directly:
an *identity resolution* step (who is the end user behind each record —
the crux of the gateway measurement problem) and per-identity *feature
extraction* (the behavioural statistics heuristics operate on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.infra.accounting import UsageRecord
from repro.infra.job import AttributeKeys, JobState

__all__ = [
    "resolve_identity",
    "IdentityView",
    "RecordFeatures",
    "build_identity_views",
    "strip_attributes",
]


def resolve_identity(record: UsageRecord, use_attributes: bool = True) -> str:
    """The end-user identity a record is attributed to.

    With instrumentation, a tagged gateway job resolves to
    ``"<gateway>:<end user>"``; everything else (including *untagged*
    gateway jobs) resolves to the local account user.  Without
    instrumentation all gateway users collapse onto the community user —
    the measurement gap the paper is about.
    """
    if use_attributes:
        gateway_user = record.attributes.get(AttributeKeys.GATEWAY_USER)
        if gateway_user is not None:
            gateway = record.attributes.get(AttributeKeys.GATEWAY_NAME, "gateway")
            return f"{gateway}:{gateway_user}"
    return record.user


def strip_attributes(records: Iterable[UsageRecord]) -> list[UsageRecord]:
    """Copies of ``records`` with the instrumentation attributes removed.

    Used to evaluate what measurement can do from a *pre-instrumentation*
    accounting stream (experiment T3): the structural fields remain, the
    proposed job attributes disappear.
    """
    stripped = []
    for record in records:
        stripped.append(
            UsageRecord(
                job_id=record.job_id,
                user=record.user,
                account=record.account,
                resource=record.resource,
                queue_name=record.queue_name,
                cores=record.cores,
                requested_walltime=record.requested_walltime,
                submit_time=record.submit_time,
                start_time=record.start_time,
                end_time=record.end_time,
                final_state=record.final_state,
                charged_nu=record.charged_nu,
                attributes={},
                # The allocation's field predates the proposed per-job
                # attributes; pre-instrumentation accounting had it too.
                field_of_science=record.field_of_science,
            )
        )
    return stripped


@dataclass
class RecordFeatures:
    """Behavioural statistics of one identity's records."""

    n_jobs: int
    median_elapsed: float
    median_cores: float
    max_cores: int
    failure_fraction: float  # FAILED or KILLED_WALLTIME
    cancelled_fraction: float
    interactive_fraction: float
    total_nu: float
    resources: tuple[str, ...]
    burst_fraction: float  # jobs submitted in bursts of similar jobs

    @classmethod
    def from_records(
        cls,
        records: list[UsageRecord],
        burst_window: float = 1800.0,
        burst_min_size: int = 5,
    ) -> "RecordFeatures":
        if not records:
            raise ValueError("cannot build features from zero records")
        elapsed = np.array([r.elapsed for r in records if r.ran], dtype=float)
        cores = np.array([r.cores for r in records], dtype=float)
        bad = sum(
            1
            for r in records
            if r.final_state in (JobState.FAILED, JobState.KILLED_WALLTIME)
        )
        cancelled = sum(
            1 for r in records if r.final_state is JobState.CANCELLED
        )
        interactive = sum(1 for r in records if r.queue_name == "interactive")
        return cls(
            n_jobs=len(records),
            median_elapsed=float(np.median(elapsed)) if elapsed.size else 0.0,
            median_cores=float(np.median(cores)),
            max_cores=int(cores.max()),
            failure_fraction=bad / len(records),
            cancelled_fraction=cancelled / len(records),
            interactive_fraction=interactive / len(records),
            total_nu=sum(r.charged_nu for r in records),
            resources=tuple(sorted({r.resource for r in records})),
            burst_fraction=_burst_fraction(records, burst_window, burst_min_size),
        )


def burst_membership(
    records: list[UsageRecord], window: float, min_size: int
) -> list[bool]:
    """Which of ``records`` belong to a same-size submission burst.

    The submission-burst signature of ensembles/parameter sweeps: runs of at
    least ``min_size`` jobs with identical core counts whose consecutive
    submissions are less than ``window`` apart.  Input order must be
    submission order; the returned flags align with it.
    """
    ordered = sorted(records, key=lambda r: (r.submit_time, r.job_id))
    if ordered != records:
        raise ValueError("records must be given in submission order")
    in_burst = [False] * len(ordered)
    if len(ordered) < min_size:
        return in_burst
    run_start = 0
    for i in range(1, len(ordered) + 1):
        boundary = (
            i == len(ordered)
            or ordered[i].cores != ordered[i - 1].cores
            or ordered[i].submit_time - ordered[i - 1].submit_time > window
        )
        if boundary:
            if i - run_start >= min_size:
                for k in range(run_start, i):
                    in_burst[k] = True
            run_start = i
    return in_burst


def _burst_fraction(
    records: list[UsageRecord], window: float, min_size: int
) -> float:
    ordered = sorted(records, key=lambda r: (r.submit_time, r.job_id))
    flags = burst_membership(ordered, window, min_size)
    return sum(flags) / len(flags) if flags else 0.0


@dataclass
class IdentityView:
    """All records of one resolved identity, plus their features."""

    identity: str
    records: list[UsageRecord] = field(default_factory=list)
    features: Optional[RecordFeatures] = None

    def finalize(self) -> "IdentityView":
        self.features = RecordFeatures.from_records(self.records)
        return self


def build_identity_views(
    records: Iterable[UsageRecord], use_attributes: bool = True
) -> dict[str, IdentityView]:
    """Group records by resolved identity and compute features."""
    views: dict[str, IdentityView] = {}
    for record in records:
        identity = resolve_identity(record, use_attributes=use_attributes)
        views.setdefault(identity, IdentityView(identity)).records.append(record)
    for view in views.values():
        view.records.sort(key=lambda r: (r.submit_time, r.job_id))
        view.finalize()
    return views
