"""The paper's contribution: defining and *measuring* usage modalities.

The TeraGrid could see jobs, users, accounts and charges — but not what its
users were *trying to do*.  This package defines the modality taxonomy
(:mod:`~repro.core.modalities`), extracts measurement features from the
central accounting stream (:mod:`~repro.core.records`), classifies usage into
modalities with and without the paper's proposed job-attribute
instrumentation (:mod:`~repro.core.classifier`), aggregates usage metrics
(:mod:`~repro.core.metrics`, :mod:`~repro.core.timeseries`), models the
survey channel for the "why" (:mod:`~repro.core.survey`), scores the
measurement system against simulation ground truth
(:mod:`~repro.core.evaluation`) and renders the tables/figures
(:mod:`~repro.core.report`).
"""

from repro.core.modalities import Modality, MODALITY_TAXONOMY, ModalityDescription
from repro.core.records import IdentityView, RecordFeatures, build_identity_views
from repro.core.classifier import (
    AttributeClassifier,
    ClassifierConfig,
    Classification,
    HeuristicClassifier,
)
from repro.core.metrics import ModalityMetrics, compute_metrics
from repro.core.timeseries import quarterly_user_counts
from repro.core.survey import SurveyInstrument, SurveyResult
from repro.core.evaluation import ConfusionSummary, score_classification
from repro.core import report

__all__ = [
    "AttributeClassifier",
    "Classification",
    "ClassifierConfig",
    "ConfusionSummary",
    "HeuristicClassifier",
    "IdentityView",
    "MODALITY_TAXONOMY",
    "Modality",
    "ModalityDescription",
    "ModalityMetrics",
    "RecordFeatures",
    "SurveyInstrument",
    "SurveyResult",
    "build_identity_views",
    "compute_metrics",
    "quarterly_user_counts",
    "report",
    "score_classification",
]
