"""Tests for workload distributions and arrival processes."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.distributions import (
    DiurnalProfile,
    SECONDS_PER_DAY,
    bounded_lognormal,
    bounded_weibull,
    discrete_choice,
    hyperexponential,
    log2_cores,
    nonhomogeneous_poisson,
    zipf_weights,
)
from tests.strategies import lognormal_medians, lognormal_sigmas


def rng():
    return np.random.default_rng(1234)


@given(lognormal_medians, lognormal_sigmas)
def test_bounded_lognormal_respects_bounds(median, sigma):
    generator = np.random.default_rng(0)
    low, high = 0.5, 1e5
    for _ in range(20):
        value = bounded_lognormal(generator, median, sigma, low, high)
        assert low <= value <= high


def test_bounded_lognormal_median_is_roughly_right():
    generator = rng()
    draws = [bounded_lognormal(generator, 100.0, 1.0, 1e-3, 1e9) for _ in range(4000)]
    assert 85.0 < float(np.median(draws)) < 115.0


def test_bounded_lognormal_validation():
    with pytest.raises(ValueError):
        bounded_lognormal(rng(), -1.0, 1.0, 1.0, 2.0)
    with pytest.raises(ValueError):
        bounded_lognormal(rng(), 1.0, 1.0, 5.0, 2.0)


def test_bounded_weibull_respects_bounds():
    generator = rng()
    for _ in range(100):
        assert 1.0 <= bounded_weibull(generator, 10.0, 0.7, 1.0, 50.0) <= 50.0


def test_hyperexponential_mean():
    generator = rng()
    draws = [hyperexponential(generator, [1.0, 100.0], [0.9, 0.1]) for _ in range(20000)]
    expected = 0.9 * 1.0 + 0.1 * 100.0
    assert abs(np.mean(draws) - expected) / expected < 0.1


def test_zipf_weights_normalized_and_decreasing():
    weights = zipf_weights(10, alpha=1.2)
    assert math.isclose(weights.sum(), 1.0, rel_tol=1e-12)
    assert all(weights[i] > weights[i + 1] for i in range(9))


def test_zipf_weights_validation():
    with pytest.raises(ValueError):
        zipf_weights(0)


def test_discrete_choice_uses_weights():
    generator = rng()
    picks = [discrete_choice(generator, ["a", "b"], [0.0, 1.0]) for _ in range(50)]
    assert set(picks) == {"b"}


def test_discrete_choice_rejects_zero_weights():
    with pytest.raises(ValueError):
        discrete_choice(rng(), ["a"], [0.0])


def test_log2_cores_is_power_of_two_within_bounds():
    generator = rng()
    for _ in range(200):
        cores = log2_cores(generator, 1, 1024, mean_log2=5, sigma_log2=2)
        assert 1 <= cores <= 1024
        assert cores & (cores - 1) == 0  # power of two


def test_log2_cores_respects_non_power_bounds():
    generator = rng()
    for _ in range(100):
        cores = log2_cores(generator, 3, 100, mean_log2=10, sigma_log2=0.1)
        assert 3 <= cores <= 100


def test_diurnal_profile_peak_exceeds_trough():
    profile = DiurnalProfile(day_amplitude=0.5, weekend_factor=1.0, peak_hour=15.0)
    peak = profile.intensity(15 * 3600.0)
    trough = profile.intensity(3 * 3600.0)
    assert peak > trough
    assert math.isclose(peak, 1.5, rel_tol=1e-9)


def test_diurnal_profile_weekend_scaling():
    profile = DiurnalProfile(day_amplitude=0.0, weekend_factor=0.5, peak_hour=12.0)
    monday = profile.intensity(0.0)
    saturday = profile.intensity(5 * SECONDS_PER_DAY)
    assert math.isclose(saturday, 0.5 * monday, rel_tol=1e-9)


def test_poisson_arrivals_increasing_and_rate_close():
    generator = rng()
    arrivals = list(itertools.islice(
        nonhomogeneous_poisson(generator, base_rate=0.01), 2000))
    assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
    mean_gap = arrivals[-1] / len(arrivals)
    assert abs(mean_gap - 100.0) / 100.0 < 0.1


def test_modulated_poisson_concentrates_at_peak():
    generator = rng()
    profile = DiurnalProfile(day_amplitude=0.9, weekend_factor=1.0, peak_hour=12.0)
    arrivals = list(itertools.islice(
        nonhomogeneous_poisson(generator, base_rate=0.01, profile=profile), 5000))
    hours = [(t % SECONDS_PER_DAY) / 3600.0 for t in arrivals]
    near_peak = sum(1 for h in hours if 9 <= h <= 15)
    near_trough = sum(1 for h in hours if h <= 3 or h >= 21)
    assert near_peak > 2 * near_trough


def test_poisson_rate_validation():
    with pytest.raises(ValueError):
        next(nonhomogeneous_poisson(rng(), base_rate=0.0))


# -- vectorized pre-sampling --------------------------------------------------

from repro.sim.distributions import BufferedGenerator  # noqa: E402
from repro.sim.rng import derive_seed  # noqa: E402


def _child(seed, label):
    """The same derivation BufferedGenerator uses for its children."""
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(derive_seed(seed, label))))


def test_buffered_draws_are_bit_identical_to_scalar_draws():
    buffered = BufferedGenerator(seed=42, chunk=7)
    scalar = _child(42, "exponential:(3.0,)")
    assert [buffered.exponential(3.0) for _ in range(25)] == \
           [scalar.exponential(3.0) for _ in range(25)]


def test_buffered_draws_are_chunk_invariant():
    draws = lambda chunk: [
        op(gen)
        for gen in [BufferedGenerator(seed=7, chunk=chunk)]
        for op in [
            lambda g: g.random(), lambda g: g.exponential(2.0),
            lambda g: g.uniform(1.0, 5.0), lambda g: g.normal(10.0, 2.0),
            lambda g: g.standard_normal(), lambda g: g.integers(0, 100),
        ] * 20
    ]
    assert draws(1) == draws(5) == draws(256)


def test_buffered_streams_are_per_signature_independent():
    """Interleaving draws of one (method, args) never shifts another."""
    solo = BufferedGenerator(seed=3, chunk=4)
    alone = [solo.exponential(1.5) for _ in range(10)]

    mixed = BufferedGenerator(seed=3, chunk=4)
    interleaved = []
    for _ in range(10):
        mixed.random()
        mixed.uniform(0.0, 2.0)
        interleaved.append(mixed.exponential(1.5))
    assert alone == interleaved


def test_buffered_distinct_args_use_distinct_children():
    gen = BufferedGenerator(seed=11)
    a = [gen.exponential(1.0) for _ in range(5)]
    b = [gen.exponential(2.0) for _ in range(5)]
    assert a != b
    # ...and each matches its own dedicated child stream.
    child = _child(11, "exponential:(1.0,)")
    assert a == [child.exponential(1.0) for _ in range(5)]


def test_buffered_fallback_delegates_unbuffered_methods():
    gen = BufferedGenerator(seed=5)
    fallback = _child(5, "fallback")
    assert gen.choice([10, 20, 30]) == fallback.choice([10, 20, 30])
    assert gen.weibull(1.5) == fallback.weibull(1.5)


def test_buffered_rejects_bad_chunk():
    with pytest.raises(ValueError):
        BufferedGenerator(seed=1, chunk=0)
