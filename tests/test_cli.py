"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("T1", "F7", "A1"):
        assert experiment_id in out


def test_taxonomy_prints_table(capsys):
    assert main(["taxonomy"]) == 0
    out = capsys.readouterr().out
    assert "Science-gateway access" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "T99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_executes_experiment(capsys):
    assert main(["run", "f3", "--days", "2", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "F3" in out
    assert "EASY" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_report_subset(capsys):
    assert main(["report", "--fast", "--only", "A1"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "regenerated in" in out


def test_report_unknown_experiment(tmp_path):
    import pytest as _pytest
    with _pytest.raises(KeyError):
        main(["report", "--only", "ZZ"])


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["report", "--fast", "--only", "A2", "--out", str(target)]) == 0
    assert "A2" in target.read_text()


# -- run-all / parallel / caching ---------------------------------------------

def _run_all(tmp_path, name, *extra):
    target = tmp_path / name
    code = main(
        ["run-all", "--fast", "--only", "R1", "--out", str(target),
         "--cache-dir", str(tmp_path / "cache"),
         "--runs-dir", str(tmp_path / "runs"), *extra]
    )
    return code, target


def test_run_all_writes_report_without_timing_lines(tmp_path, capsys):
    code, target = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    text = target.read_text()
    assert "R1" in text
    assert "regenerated in" not in text  # timing is stderr-only noise
    captured = capsys.readouterr()
    assert "jobs=1" in captured.err
    assert f"report written to {target}" in captured.out


def test_run_all_cache_miss_then_hit(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "first.txt", "--jobs", "1")
    assert code == 0
    assert "3 misses" in capsys.readouterr().err  # R1 fast = 3 replicate tasks

    code, _ = _run_all(tmp_path, "second.txt", "--jobs", "1")
    assert code == 0
    assert "3 hits, 0 misses" in capsys.readouterr().err


def test_run_all_reports_are_byte_identical_across_jobs(tmp_path, capsys):
    code, serial = _run_all(tmp_path, "serial.txt", "--jobs", "1", "--no-cache")
    assert code == 0
    code, parallel = _run_all(tmp_path, "parallel.txt", "--jobs", "2", "--no-cache")
    assert code == 0
    assert serial.read_bytes() == parallel.read_bytes()


def test_run_all_no_cache_skips_the_cache(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1", "--no-cache")
    assert code == 0
    assert "cache: off" in capsys.readouterr().err
    assert not (tmp_path / "cache").exists()


def test_run_all_unknown_experiment_fails(tmp_path, capsys):
    code = main(["run-all", "--only", "ZZ", "--no-cache", "--no-journal",
                 "--out", str(tmp_path / "r.txt")])
    assert code == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_run_with_jobs_and_cache_flags(tmp_path, capsys):
    argv = ["run", "r1", "--days", "1", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    assert "R1" in capsys.readouterr().out
    assert (tmp_path / "cache").is_dir()  # results were cached

    assert main(argv) == 0  # second invocation served from cache
    assert "R1" in capsys.readouterr().out


def test_bad_repro_jobs_env_is_a_clean_error(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    code = main(["run-all", "--fast", "--only", "R1", "--no-cache",
                 "--no-journal", "--out", str(tmp_path / "r.txt")])
    assert code == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


def test_bad_chaos_spec_is_a_clean_error(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CHAOS", "explode:yes")
    code = main(["run-all", "--fast", "--only", "R1", "--no-cache",
                 "--no-journal", "--out", str(tmp_path / "r.txt")])
    assert code == 2
    assert "unknown chaos kind" in capsys.readouterr().err


def test_negative_retries_is_a_clean_error(tmp_path, capsys):
    code = main(["run-all", "--fast", "--only", "R1", "--no-cache",
                 "--no-journal", "--retries", "-1",
                 "--out", str(tmp_path / "r.txt")])
    assert code == 2
    assert "--retries" in capsys.readouterr().err


# -- journal / resume ----------------------------------------------------------

def test_run_all_journals_by_default(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    assert "journal at" in capsys.readouterr().err
    (journal,) = (tmp_path / "runs").glob("*/journal.jsonl")
    text = journal.read_text()
    assert '"event":"run-started"' in text
    assert '"event":"run-completed"' in text


def test_no_journal_opts_out(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1", "--no-journal")
    assert code == 0
    assert "journal at" not in capsys.readouterr().err
    assert not (tmp_path / "runs").exists()


def test_resume_skips_completed_tasks(tmp_path, capsys):
    code, first = _run_all(tmp_path, "first.txt", "--jobs", "1")
    assert code == 0
    capsys.readouterr()
    (journal,) = (tmp_path / "runs").glob("*/journal.jsonl")
    run_id = journal.parent.name

    code, second = _run_all(
        tmp_path, "second.txt", "--jobs", "1", "--resume", run_id
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "3 hits, 0 misses" in err
    assert "resumed: 3 skipped" in err
    assert first.read_bytes() == second.read_bytes()


def test_resume_unknown_run_id_fails_cleanly(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "r.txt", "--resume", "never-ran")
    assert code == 2
    assert "no journal" in capsys.readouterr().err


def test_resume_requires_the_cache(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "r.txt", "--resume", "whatever", "--no-cache")
    assert code == 2
    assert "--resume needs the result cache" in capsys.readouterr().err


def test_task_timeout_failures_exit_nonzero_without_crashing(tmp_path, capsys):
    # Drop the in-process campaign memo: memoized tasks return instantly and
    # would never hit the wall-clock limit this test is about.
    from repro.experiments.base import _campaign_cache

    _campaign_cache.clear()
    code, target = _run_all(
        tmp_path, "report.txt", "--jobs", "1", "--no-cache",
        "--task-timeout", "0.05", "--retries", "0",
    )
    assert code == 3  # completed-with-failures, not a crash
    captured = capsys.readouterr()
    assert "failed: 3" in captured.err
    assert "[task failed] R1" in captured.err
    text = target.read_text()
    assert "FAILED" in text and "task(s) failed" in text


def test_run_no_cache_flag(tmp_path, capsys):
    assert main(["run", "r1", "--days", "1", "--jobs", "1", "--no-cache"]) == 0
    assert "R1" in capsys.readouterr().out


def test_cache_info_and_clear(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(["run", "r1", "--days", "1", "--jobs", "1",
                 "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()

    assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
    info = capsys.readouterr().out
    assert str(cache_dir) in info
    assert "entries:      5" in info  # R1 default seeds = 5 replicates
    assert "quarantined:  0" in info

    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 5 cached results" in capsys.readouterr().out

    assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
    assert "entries:      0" in capsys.readouterr().out


# -- campaign artifact store: stats / gc / --timings / --no-artifacts ----------

def test_run_all_populates_the_artifact_store(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    capsys.readouterr()
    artifacts = tmp_path / "cache" / "artifacts"
    assert artifacts.is_dir()
    assert list(artifacts.glob("*/*.pkl"))  # one per distinct campaign


def test_no_artifacts_flag_disables_the_store_same_bytes(tmp_path, capsys):
    code, with_store = _run_all(tmp_path, "with.txt", "--jobs", "1")
    assert code == 0
    code, without = _run_all(
        tmp_path, "without.txt", "--jobs", "1", "--no-cache", "--no-artifacts"
    )
    assert code == 0
    capsys.readouterr()
    assert with_store.read_bytes() == without.read_bytes()


def test_timings_flag_prints_stage_and_campaign_counters(tmp_path, capsys):
    from repro.experiments.base import _campaign_cache

    _campaign_cache.clear()  # deterministic "simulated" count in one process
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1", "--timings")
    assert code == 0
    err = capsys.readouterr().err
    assert "[timings:" in err and "campaign:" in err
    assert "[campaigns: 3 distinct, 3 simulated" in err  # R1 fast = 3 seeds
    assert "0 fallback simulations" in err


def test_cache_stats_reports_artifacts(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "artifact dir:" in out
    assert "artifacts:    3 (3 current code version)" in out
    assert "artifact size:" in out and "0 bytes" not in out.split("artifact size:")[1]


def test_cache_gc_prunes_stale_code_versions(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    stale = tmp_path / "cache" / "artifacts" / "0123456789abcdef"
    stale.mkdir()
    (stale / "feedface-s1.pkl").write_bytes(b"old")
    capsys.readouterr()

    assert main(["cache", "gc", "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "pruned 1 stale artifact(s)" in capsys.readouterr().out
    assert not stale.exists()

    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "artifacts:    3 (3 current code version)" in capsys.readouterr().out


def test_run_command_accepts_timings_flag(tmp_path, capsys):
    assert main(["run", "r1", "--days", "1", "--timings",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    captured = capsys.readouterr()
    assert "R1" in captured.out
    assert "[timings:" in captured.err
    assert "[campaigns:" in captured.err


# -- observability: profile / stats / cache hit rates ---------------------------

def test_profile_prints_hot_path_table_and_chrome_trace(tmp_path, capsys):
    from repro.obs import validate_chrome_trace

    chrome = tmp_path / "trace.json"
    code = main(["profile", "t2_usage", "--days", "2", "--top", "5",
                 "--chrome", str(chrome)])
    assert code == 0
    captured = capsys.readouterr()
    assert "event kernel hot paths" in captured.out
    assert "top event types" in captured.out
    assert "top process types" in captured.out
    assert f"[chrome trace written to {chrome}]" in captured.err

    import json
    validate_chrome_trace(json.loads(chrome.read_text()))


def test_profile_unknown_experiment_fails(capsys):
    assert main(["profile", "nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_stats_renders_the_latest_sidecar(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    capsys.readouterr()
    assert main(["stats", "--runs-dir", str(tmp_path / "runs")]) == 0
    out = capsys.readouterr().out
    assert "sidecar:" in out
    assert "run statistics" in out
    assert "stage wall-clock:" in out
    assert "result cache:" in out
    assert "metrics registry:" in out


def test_stats_without_any_sidecar_fails_cleanly(tmp_path, capsys):
    assert main(["stats", "--runs-dir", str(tmp_path / "nothing")]) == 2
    assert "no telemetry sidecar" in capsys.readouterr().err


def test_cache_stats_surfaces_last_run_hit_rate(tmp_path, capsys):
    code, _ = _run_all(tmp_path, "first.txt", "--jobs", "1")
    assert code == 0
    code, _ = _run_all(tmp_path, "second.txt", "--jobs", "1")
    assert code == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache"),
                 "--runs-dir", str(tmp_path / "runs")]) == 0
    out = capsys.readouterr().out
    # The second run served everything from the result cache, so the
    # campaign stage never ran and only the hit-rate line appears.
    assert "last run:     3 hits, 0 misses (100.0% hit rate)" in out


def test_run_all_writes_sidecar_next_to_the_journal(tmp_path, capsys):
    from repro.obs import read_sidecar, sidecar_summary

    code, _ = _run_all(tmp_path, "report.txt", "--jobs", "1")
    assert code == 0
    assert "telemetry sidecar written to" in capsys.readouterr().err
    (sidecar,) = (tmp_path / "runs").glob("*/telemetry.jsonl")
    records = read_sidecar(sidecar)
    assert records[0]["run_id"] == sidecar.parent.name
    summary = sidecar_summary(records)
    # 3 campaign-stage pseudo-tasks + 3 measurement tasks.
    assert summary["metrics"]["runner.tasks_completed"] == 6


# -- scale tier: --shards, sidecar tie-break, profile --json -------------------

def test_latest_sidecar_mtime_breaks_lexical_ties(tmp_path):
    import argparse
    import os

    from repro.__main__ import _latest_sidecar

    runs = tmp_path / "runs"
    older = runs / "20260101-120000-zzzz"
    newer = runs / "20260101-120000-aaaa"
    for run_dir in (older, newer):
        run_dir.mkdir(parents=True)
        (run_dir / "telemetry.jsonl").write_text("{}\n")
    os.utime(older / "telemetry.jsonl", (1000.0, 1000.0))
    os.utime(newer / "telemetry.jsonl", (2000.0, 2000.0))
    args = argparse.Namespace(runs_dir=str(runs))
    # Newest mtime wins even though its run id sorts lexically first.
    assert _latest_sidecar(args) == newer / "telemetry.jsonl"


def test_latest_sidecar_equal_mtimes_fall_back_to_path_order(tmp_path):
    import argparse
    import os

    from repro.__main__ import _latest_sidecar

    runs = tmp_path / "runs"
    paths = []
    for run_id in ("20260101-120000-bbbb", "20260101-120000-aaaa"):
        run_dir = runs / run_id
        run_dir.mkdir(parents=True)
        sidecar = run_dir / "telemetry.jsonl"
        sidecar.write_text("{}\n")
        os.utime(sidecar, (1500.0, 1500.0))
        paths.append(sidecar)
    args = argparse.Namespace(runs_dir=str(runs))
    # Same second: the lexically last path wins, deterministically.
    assert _latest_sidecar(args) == paths[0]
    assert _latest_sidecar(args) == paths[0]  # stable across calls


def test_run_all_sharded_report_is_byte_identical_to_unsharded(tmp_path):
    code, baseline = _run_all(tmp_path, "baseline.txt", "--jobs", "1", "--no-cache")
    assert code == 0
    code, sharded = _run_all(
        tmp_path, "sharded.txt", "--jobs", "2", "--no-cache", "--shards", "4"
    )
    assert code == 0
    assert baseline.read_bytes() == sharded.read_bytes()


def test_run_command_accepts_shards_flag(tmp_path, capsys):
    assert main(["run", "r1", "--days", "1", "--shards", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "R1" in capsys.readouterr().out


def test_scenario_run_accepts_shards_flag(capsys):
    assert main(["scenario", "run", "teragrid-baseline",
                 "--days", "2", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "cells=1 shards=2" in out
    assert "ok   merge-order" in out


def test_profile_json_writes_benchmark_payload(tmp_path, capsys):
    import json

    payload_path = tmp_path / "bench.json"
    code = main(["profile", "t2_usage", "--days", "1",
                 "--json", str(payload_path)])
    assert code == 0
    assert f"[profile json written to {payload_path}]" in capsys.readouterr().err
    payload = json.loads(payload_path.read_text())
    assert payload["bench"] == "profile"
    assert payload["experiment"] == "T2"
    assert payload["sim_events"] > 0
    assert payload["events_per_second"] > 0
    assert payload["wall_seconds"] > 0
