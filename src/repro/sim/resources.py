"""Shared resources for simulation processes: counting resources and stores."""

from __future__ import annotations

from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.process import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Request", "Resource", "Store"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Triggers (succeeds) when the claim is granted.  Use as::

        req = resource.request()
        yield req
        ...  # holding the resource
        resource.release(req)

    ``amount`` lets one request claim several units of capacity at once
    (e.g. cores of a node); the resource grants strictly in queue order, so a
    large request at the head blocks later small ones (no starvation).
    """

    __slots__ = ("resource", "amount", "priority", "key")

    def __init__(self, resource: "Resource", amount: int, priority: float) -> None:
        super().__init__(resource.sim)
        if amount < 1:
            raise ValueError(f"request amount must be >= 1, got {amount}")
        if amount > resource.capacity:
            raise ValueError(
                f"request for {amount} exceeds capacity {resource.capacity}"
            )
        self.resource = resource
        self.amount = int(amount)
        self.priority = priority

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A counting resource with ``capacity`` units and a priority queue.

    Lower ``priority`` values are served first; ties are FIFO.  The grant
    discipline is strict queue order (like a conservative batch queue): the
    head request must be satisfiable before any later request is considered.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self._in_use = 0
        self._seq = count()
        # (priority, seq, request); kept sorted lazily since queues are short
        self._queue: list[tuple[float, int, Request]] = []

    # -- introspection ----------------------------------------------------
    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of ungranted requests."""
        return len(self._queue)

    # -- operations ----------------------------------------------------------
    def request(self, amount: int = 1, priority: float = 0.0) -> Request:
        """Claim ``amount`` units; the returned event triggers when granted."""
        req = Request(self, amount, priority)
        self._queue.append((priority, next(self._seq), req))
        self._queue.sort(key=lambda item: (item[0], item[1]))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return the units held by a granted ``request``."""
        if not request.triggered:
            raise RuntimeError("release() of an ungranted request; use cancel()")
        self._in_use -= request.amount
        if self._in_use < 0:  # pragma: no cover - defensive
            raise RuntimeError("resource released below zero in-use")
        self._grant()

    def _cancel(self, request: Request) -> None:
        for i, (_p, _s, queued) in enumerate(self._queue):
            if queued is request:
                del self._queue[i]
                self._grant()
                return

    def _grant(self) -> None:
        while self._queue:
            _priority, _seq, head = self._queue[0]
            if head.amount > self.capacity - self._in_use:
                return
            self._queue.pop(0)
            self._in_use += head.amount
            head.succeed(head)


class Store:
    """An unbounded FIFO buffer of items passed between processes.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item (immediately if one is available).  A ``filter`` predicate on
    ``get`` retrieves the first matching item instead.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the first compatible waiting getter."""
        self._items.append(item)
        self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that triggers with the next (matching) item."""
        event = Event(self.sim)
        self._getters.append((event, filter))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        # Pair waiting getters with buffered items, in order, until no
        # getter at the head can be satisfied.
        progress = True
        while progress and self._getters and self._items:
            progress = False
            for gi, (event, predicate) in enumerate(self._getters):
                match_index = None
                for ii, item in enumerate(self._items):
                    if predicate is None or predicate(item):
                        match_index = ii
                        break
                if match_index is not None:
                    del self._getters[gi]
                    item = self._items[match_index]
                    del self._items[match_index]
                    event.succeed(item)
                    progress = True
                    break
