"""Two-domain tracing: deterministic sim-time, sidecar-only wall-time.

Every quantity this tracer records lives in exactly one of two domains, and
the domain decides where the data may flow:

* **sim-time** — event counts by type, process resume counts by process
  type, event-heap high-water marks, and process lifetime spans measured on
  the *simulated* clock.  These are pure functions of the scenario seed:
  safe to assert on in tests, safe to diff across ``--jobs`` values, safe
  (in principle) to print — though reports still omit them, because report
  bytes predate this layer and must not change.
* **wall-time** — per-event-type wall-clock shares measured around the
  kernel's callback dispatch.  Nondeterministic by nature (scheduling,
  cache temperature, host load); it exists only to rank hot paths for the
  vectorization work and is confined to the telemetry sidecar and the
  ``repro profile`` diagnostic output.  It must never reach a report.

The tracer attaches to the kernel through :func:`repro.sim.engine.set_default_tracer`
(or a ``Simulator(tracer=...)`` argument); with no tracer installed the
kernel pays one ``is None`` check per step and nothing else.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Optional

__all__ = ["SimTracer", "process_type", "traced_simulation"]

_NUMERIC_SUFFIX = re.compile(r"-\d+$")

#: Cap on retained per-process lifetime spans: long campaigns spawn one
#: process per user plus transient ack-watch/transit processes; the hot-path
#: ranking needs aggregates, not a million span rows.
DEFAULT_SPAN_CAP = 5000


def process_type(name: str) -> str:
    """Collapse a process instance name to its type.

    Process names follow ``<type>:<instance>`` (``outage:SiteA``,
    ``amie-feed:SiteB``) or ``<type>-<serial>`` (``job-523``).  The serial
    suffix must go: job ids come from a process-global counter, so keying
    sim-domain aggregates on them would break seed-stability whenever two
    campaigns run in one process.
    """
    return _NUMERIC_SUFFIX.sub("", name.split(":", 1)[0])


class SimTracer:
    """Collects both trace domains for one (or more) simulator runs.

    One tracer may observe several :class:`~repro.sim.Simulator` instances
    (a sweep's campaigns); counts accumulate.  The deterministic slice is
    exposed by :meth:`sim_summary`, the nondeterministic one by
    :meth:`wall_summary` — keep them apart.
    """

    def __init__(self, span_cap: int = DEFAULT_SPAN_CAP) -> None:
        # -- sim-time domain (deterministic) --
        self.events_total = 0
        self.events_by_type: dict[str, int] = {}
        self.resumes_by_process: dict[str, int] = {}
        self.heap_high_water = 0
        self.span_cap = span_cap
        #: retained process lifetime spans: (type, name, start, end) sim-time
        self.process_spans: list[tuple[str, str, float, Optional[float]]] = []
        self.spans_dropped = 0
        self._open_spans: dict[int, int] = {}  # id(process) -> span index
        # -- wall-time domain (sidecar/profile only) --
        self.wall_by_event_type: dict[str, float] = {}
        self.wall_total = 0.0

    # -- kernel hooks (hot path: keep them cheap) -----------------------------
    def on_schedule(self, heap_size: int) -> None:
        if heap_size > self.heap_high_water:
            self.heap_high_water = heap_size

    def on_event(self, event, now: float, wall: float) -> None:
        kind = type(event).__name__
        self.events_total += 1
        self.events_by_type[kind] = self.events_by_type.get(kind, 0) + 1
        self.wall_by_event_type[kind] = (
            self.wall_by_event_type.get(kind, 0.0) + wall
        )
        self.wall_total += wall

    def on_resume(self, process, now: float) -> None:
        kind = process_type(process.name)
        self.resumes_by_process[kind] = self.resumes_by_process.get(kind, 0) + 1

    def on_process_start(self, process, now: float) -> None:
        if len(self.process_spans) >= self.span_cap:
            self.spans_dropped += 1
            return
        self._open_spans[id(process)] = len(self.process_spans)
        self.process_spans.append(
            (process_type(process.name), process.name, now, None)
        )

    def on_process_end(self, process, now: float) -> None:
        index = self._open_spans.pop(id(process), None)
        if index is None:
            return
        kind, name, start, _ = self.process_spans[index]
        self.process_spans[index] = (kind, name, start, now)

    # -- summaries ------------------------------------------------------------
    def sim_summary(self) -> dict:
        """The deterministic slice: identical for identical seeds."""
        return {
            "domain": "sim",
            "events_total": self.events_total,
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "resumes_by_process": dict(sorted(self.resumes_by_process.items())),
            "heap_high_water": self.heap_high_water,
            "process_spans_retained": len(self.process_spans),
            "process_spans_dropped": self.spans_dropped,
        }

    def wall_summary(self) -> dict:
        """The nondeterministic slice: sidecar/profile only, never reports."""
        return {
            "domain": "wall",
            "wall_total_seconds": self.wall_total,
            "wall_by_event_type": dict(sorted(self.wall_by_event_type.items())),
        }

    def hot_events(self, top: int = 10) -> list[tuple[str, int, float]]:
        """``(event type, sim count, wall share)`` rows, busiest first.

        The ordering key is the deterministic sim-event count; the wall
        share rides along as diagnostic color.
        """
        rows = []
        for kind, count in self.events_by_type.items():
            wall = self.wall_by_event_type.get(kind, 0.0)
            share = wall / self.wall_total if self.wall_total > 0 else 0.0
            rows.append((kind, count, share))
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows[:top]

    def hot_processes(self, top: int = 10) -> list[tuple[str, int]]:
        """``(process type, resume count)`` rows, busiest first."""
        rows = sorted(
            self.resumes_by_process.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return rows[:top]


@contextmanager
def traced_simulation(span_cap: int = DEFAULT_SPAN_CAP):
    """Install a fresh :class:`SimTracer` as the kernel default, yield it.

    Every :class:`~repro.sim.Simulator` constructed inside the ``with``
    block reports to the yielded tracer; the previous default (usually
    ``None``) is restored on exit.  This is how ``repro profile`` and the
    benchmark harness observe simulations built many layers below them.
    """
    from repro.sim import engine

    tracer = SimTracer(span_cap=span_cap)
    previous = engine.default_tracer()
    engine.set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        engine.set_default_tracer(previous)
