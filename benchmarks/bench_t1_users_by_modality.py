"""Bench T1: regenerate the users-per-modality headline table."""

from repro.core.modalities import MODALITY_ORDER, Modality


def test_t1_users_by_modality(regenerate):
    output = regenerate("T1")
    true = output.data["true"]
    instrumented = output.data["instrumented"]
    uninstrumented = output.data["uninstrumented"]
    # Paper shape: BATCH > EXPLORATORY > GATEWAY > ENSEMBLE >> VIZ > COUPLED.
    order = [m.value for m in MODALITY_ORDER]
    counts = [true[name] for name in order]
    assert counts == sorted(counts, reverse=True)
    # Instrumented measurement tracks truth closely.
    for name in order:
        assert abs(instrumented[name] - true[name]) <= max(1, 0.25 * true[name])
    # Without attributes, gateway users collapse to community accounts.
    assert uninstrumented[Modality.GATEWAY.value] < true[Modality.GATEWAY.value] / 3
