"""Smoke test of the full 8-site TeraGrid-2010 federation."""

import pytest

from repro.core import AttributeClassifier, compute_metrics
from repro.core.modalities import Modality
from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, TERAGRID_2010, run_scenario


@pytest.fixture(scope="module")
def full_run():
    return run_scenario(
        ScenarioConfig(
            scale="full",
            days=7,
            seed=13,
            population=PopulationSpec(scale=0.04, n_gateways=4),
        )
    )


def test_all_eight_sites_participate(full_run):
    assert len(full_run.providers) == len(TERAGRID_2010) == 8
    busy_sites = {r.resource for r in full_run.records}
    assert len(busy_sites) >= 6  # nearly every site saw work in a week


def test_normalization_factors_differ_by_site(full_run):
    by_site = {p.name: p.cluster.nu_per_core_hour for p in full_run.providers}
    assert by_site["kraken"] > by_site["bigred"]


def test_measurement_pipeline_scales_to_full_federation(full_run):
    classification = AttributeClassifier().classify(full_run.records)
    metrics = compute_metrics(full_run.records, classification)
    assert metrics.total_jobs == len(full_run.records) > 500
    assert metrics.users[Modality.BATCH] > 0
    assert metrics.users[Modality.GATEWAY] > 0
    # Charges conserved across all eight ledger/site pairs.
    assert full_run.central.total_nu() == pytest.approx(
        full_run.ledger.total_charged()
    )
