"""Tests for the job model and cluster description."""

import pytest

from repro.infra.cluster import Cluster
from repro.infra.job import AttributeKeys, Job, JobState


def make_job(**kwargs):
    defaults = dict(
        user="alice", account="acct", cores=4, walltime=3600.0, true_runtime=1800.0
    )
    defaults.update(kwargs)
    return Job(**defaults)


def test_job_ids_are_unique():
    assert make_job().job_id != make_job().job_id


def test_job_validation():
    with pytest.raises(ValueError):
        make_job(cores=0)
    with pytest.raises(ValueError):
        make_job(walltime=0.0)
    with pytest.raises(ValueError):
        make_job(true_runtime=-1.0)


def test_true_user_defaults_to_user():
    assert make_job().true_user == "alice"
    assert make_job(true_user="bob").true_user == "bob"


def test_bounded_runtime_clamps_to_walltime():
    assert make_job(true_runtime=5000.0, walltime=3600.0).bounded_runtime == 3600.0
    assert make_job(true_runtime=100.0).bounded_runtime == 100.0


def test_final_state_precedence():
    assert (
        make_job(true_runtime=100.0).final_state_when_run_to_completion()
        is JobState.COMPLETED
    )
    assert (
        make_job(true_runtime=100.0, will_fail=True)
        .final_state_when_run_to_completion()
        is JobState.FAILED
    )
    # walltime kill happens before the (later) failure could occur
    assert (
        make_job(true_runtime=5000.0, will_fail=True)
        .final_state_when_run_to_completion()
        is JobState.KILLED_WALLTIME
    )


def test_derived_times_none_until_set():
    job = make_job()
    assert job.wait_time is None
    assert job.elapsed is None
    job.submit_time, job.start_time, job.end_time = 10.0, 60.0, 100.0
    assert job.wait_time == 50.0
    assert job.elapsed == 40.0


def test_interactive_flag_via_attributes():
    assert not make_job().is_interactive
    assert make_job(attributes={AttributeKeys.INTERACTIVE: True}).is_interactive


def test_terminal_states():
    terminal = {
        JobState.COMPLETED,
        JobState.FAILED,
        JobState.KILLED_WALLTIME,
        JobState.CANCELLED,
    }
    for state in JobState:
        assert state.is_terminal == (state in terminal)


def test_cluster_totals_and_node_rounding():
    cluster = Cluster("mach", nodes=10, cores_per_node=16)
    assert cluster.total_cores == 160
    assert cluster.nodes_for(1) == 1
    assert cluster.nodes_for(16) == 1
    assert cluster.nodes_for(17) == 2
    assert cluster.nodes_for(160) == 10


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster("m", nodes=0, cores_per_node=4)
    with pytest.raises(ValueError):
        Cluster("m", nodes=4, cores_per_node=4, nu_per_core_hour=0.0)
    cluster = Cluster("m", nodes=2, cores_per_node=4)
    with pytest.raises(ValueError):
        cluster.nodes_for(9)
    with pytest.raises(ValueError):
        cluster.nodes_for(0)
