"""Tests for the capacity profile (step-function availability)."""

import pytest
from hypothesis import given, strategies as st

from repro.infra.scheduler.profile import CapacityProfile


def test_empty_profile_is_fully_available():
    profile = CapacityProfile(10, now=0.0)
    assert profile.available_during(0.0, 100.0) == 10
    assert profile.earliest_start(10, 50.0) == 0.0


def test_single_usage_blocks_window():
    profile = CapacityProfile(10, now=0.0)
    profile.add_usage(0.0, 100.0, 6)
    assert profile.available_during(0.0, 50.0) == 4
    assert profile.available_during(100.0, 50.0) == 10
    # window straddling the release sees the minimum
    assert profile.available_during(50.0, 100.0) == 4


def test_earliest_start_waits_for_release():
    profile = CapacityProfile(10, now=0.0)
    profile.add_usage(0.0, 100.0, 6)
    assert profile.earliest_start(4, 10.0) == 0.0
    assert profile.earliest_start(5, 10.0) == 100.0


def test_earliest_start_finds_gap_between_usages():
    profile = CapacityProfile(10, now=0.0)
    profile.add_usage(0.0, 50.0, 8)
    profile.add_usage(200.0, 300.0, 8)
    # 10-duration window for 5 nodes fits in the gap [50, 200)
    assert profile.earliest_start(5, 10.0) == 50.0
    # but a 200-duration window must wait until the second usage ends
    assert profile.earliest_start(5, 200.0) == 300.0


def test_usage_in_the_past_is_clipped():
    profile = CapacityProfile(10, now=100.0)
    profile.add_usage(0.0, 50.0, 10)  # fully in the past: ignored
    assert profile.available_during(100.0, 10.0) == 10
    profile.add_usage(0.0, 150.0, 4)  # clipped to [100, 150)
    assert profile.available_during(100.0, 10.0) == 6


def test_not_before_respected():
    profile = CapacityProfile(10, now=0.0)
    assert profile.earliest_start(10, 10.0, not_before=500.0) == 500.0


def test_overlapping_usages_accumulate():
    profile = CapacityProfile(10, now=0.0)
    profile.add_usage(0.0, 100.0, 4)
    profile.add_usage(50.0, 150.0, 4)
    assert profile.available_during(0.0, 49.0) == 6
    assert profile.available_during(50.0, 10.0) == 2
    assert profile.available_during(100.0, 10.0) == 6


def test_window_ending_exactly_at_usage_start_is_free():
    profile = CapacityProfile(10, now=0.0)
    profile.add_usage(100.0, 200.0, 10)
    assert profile.available_during(0.0, 100.0) == 10
    assert profile.earliest_start(10, 100.0) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        CapacityProfile(0, now=0.0)
    profile = CapacityProfile(5, now=0.0)
    with pytest.raises(ValueError):
        profile.add_usage(0.0, 10.0, -1)
    with pytest.raises(ValueError):
        profile.available_during(0.0, 0.0)
    with pytest.raises(ValueError):
        profile.earliest_start(6, 10.0)
    with pytest.raises(ValueError):
        profile.earliest_start(0, 10.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000),  # start
            st.floats(min_value=1, max_value=500),  # length
            st.integers(min_value=1, max_value=5),  # nodes
        ),
        max_size=15,
    ),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=1, max_value=400),
)
def test_earliest_start_result_is_actually_feasible(usages, nodes, duration):
    """Property: the window returned by earliest_start really has capacity."""
    profile = CapacityProfile(8, now=0.0)
    for start, length, used in usages:
        profile.add_usage(start, start + length, used)
    start = profile.earliest_start(nodes, duration)
    assert start >= 0.0
    assert profile.available_during(start, duration) >= nodes


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=1, max_value=5),
        ),
        max_size=10,
    ),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=40),
)
def test_earliest_start_is_minimal_on_integer_grid(usages, nodes, duration):
    """Property: no strictly earlier integer start is feasible."""
    profile = CapacityProfile(8, now=0.0)
    for start, length, used in usages:
        profile.add_usage(float(start), float(start + length), used)
    best = profile.earliest_start(nodes, float(duration))
    for candidate in range(int(best)):
        assert profile.available_during(float(candidate), float(duration)) < nodes
