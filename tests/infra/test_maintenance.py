"""Tests for scheduled maintenance windows."""

import pytest

import repro.infra as I
from repro.infra.cluster import Cluster
from repro.infra.job import Job, JobState
from repro.infra.scheduler import EasyBackfillScheduler
from repro.infra.units import DAY, HOUR, WEEK
from repro.sim import Simulator


def test_jobs_do_not_cross_maintenance_window():
    sim = Simulator()
    cluster = Cluster("mach", nodes=4, cores_per_node=1)
    scheduler = EasyBackfillScheduler(sim, cluster)
    I.MaintenanceSchedule(
        sim, scheduler, period=WEEK, duration=8 * HOUR,
        first=2 * DAY, lead=3 * DAY,
    )
    # Submitted 1 day before the window with a 2-day walltime: must wait.
    long_job = Job(user="u", account="a", cores=4, walltime=2 * DAY,
                   true_runtime=2 * DAY)

    def submit_later(sim):
        yield sim.timeout(1 * DAY)
        scheduler.submit(long_job)

    sim.process(submit_later(sim))
    sim.run(until=WEEK)
    assert long_job.start_time == 2 * DAY + 8 * HOUR  # after the PM window


def test_short_job_runs_before_window():
    sim = Simulator()
    cluster = Cluster("mach", nodes=4, cores_per_node=1)
    scheduler = EasyBackfillScheduler(sim, cluster)
    I.MaintenanceSchedule(
        sim, scheduler, period=WEEK, duration=8 * HOUR,
        first=2 * DAY, lead=3 * DAY,
    )
    quick = Job(user="u", account="a", cores=4, walltime=HOUR,
                true_runtime=HOUR)

    def submit_later(sim):
        yield sim.timeout(1 * DAY)
        scheduler.submit(quick)

    sim.process(submit_later(sim))
    sim.run(until=3 * DAY)
    assert quick.start_time == 1 * DAY


def test_windows_recur():
    sim = Simulator()
    cluster = Cluster("mach", nodes=2, cores_per_node=1)
    scheduler = EasyBackfillScheduler(sim, cluster)
    schedule = I.MaintenanceSchedule(
        sim, scheduler, period=WEEK, duration=4 * HOUR,
        first=1 * DAY, lead=12 * HOUR,
    )
    sim.run(until=3 * WEEK)
    assert schedule.windows_taken == 3


def test_validation():
    sim = Simulator()
    cluster = Cluster("mach", nodes=2, cores_per_node=1)
    scheduler = EasyBackfillScheduler(sim, cluster)
    with pytest.raises(ValueError):
        I.MaintenanceSchedule(sim, scheduler, period=HOUR, duration=2 * HOUR)
    with pytest.raises(ValueError):
        I.MaintenanceSchedule(sim, scheduler, lead=-1.0)
