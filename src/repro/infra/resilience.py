"""Unplanned site outages and the arithmetic of recovery.

TeraGrid sites went down *unannounced* — power events, filesystem losses,
interconnect faults — and the federation's value proposition was that users
could keep working through them (metascheduling around a dead site, gateways
queueing requests, pilots re-provisioning).  This module injects that failure
surface:

* :class:`SiteOutageInjector` — a Poisson process per site producing
  whole-site outages (every running job dies, the scheduler suspends,
  submissions are rejected) and partial-rack outages (a slice of the machine
  drops out behind an unplanned drain reservation).  Repair times are drawn
  from a bounded lognormal; all draws come from one supplied generator so
  outage schedules are seed-stable.
* :class:`OutagePolicy` — the knobs (full/partial MTBF, repair distribution).
* :func:`saved_progress` — the checkpoint arithmetic shared by the A3/A4
  recovery paths: work saved after ``elapsed`` seconds of execution under a
  checkpoint interval.  Keeping it in one place lets a property test bound
  the loss per failure for every consumer at once.

It is deliberately distinct from the *scheduled* :class:`MaintenanceSchedule`
(announced in advance, drained gracefully) and the per-node
:class:`NodeFailureInjector` (kills one job, machine stays up): an unplanned
outage is the only one of the three that the information service can
misrepresent and that the federation layer must route around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.infra.scheduler.base import Reservation
from repro.infra.site import ResourceProvider, SiteDownError
from repro.infra.units import DAY, HOUR
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.sim.distributions import bounded_lognormal

__all__ = [
    "OutageEvent",
    "OutagePolicy",
    "SiteDownError",
    "SiteOutageInjector",
    "saved_progress",
]


def saved_progress(elapsed: float, checkpoint_interval: Optional[float]) -> float:
    """Work preserved after ``elapsed`` seconds under checkpoint discipline.

    With no checkpointing everything is lost; otherwise progress is saved at
    every full interval boundary, so the loss per failure is strictly less
    than one ``checkpoint_interval`` (the property test in
    ``tests/users/test_recovery.py`` holds every consumer to that bound).
    """
    if checkpoint_interval is None:
        return 0.0
    if checkpoint_interval <= 0:
        raise ValueError(
            f"checkpoint_interval must be positive, got {checkpoint_interval}"
        )
    if elapsed <= 0:
        return 0.0
    return (elapsed // checkpoint_interval) * checkpoint_interval


@dataclass(frozen=True)
class OutagePolicy:
    """Failure/repair distribution knobs for one site's outage process.

    ``site_mtbf``/``partial_mtbf`` are means of exponential inter-outage
    gaps; zero disables that outage kind.  Repair durations are bounded
    lognormals (median/sigma/min/max); partial outages take a slice of
    ``partial_fraction`` of the machine down behind a drain reservation.
    """

    site_mtbf: float = 45 * DAY
    partial_mtbf: float = 0.0
    partial_fraction: float = 0.125
    repair_median: float = 6 * HOUR
    repair_sigma: float = 0.8
    repair_min: float = 1 * HOUR
    repair_max: float = 3 * DAY

    def __post_init__(self) -> None:
        if self.site_mtbf < 0 or self.partial_mtbf < 0:
            raise ValueError("MTBFs must be >= 0 (0 disables)")
        if not (0.0 < self.partial_fraction <= 1.0):
            raise ValueError(
                f"partial_fraction must be in (0, 1], got {self.partial_fraction}"
            )
        if self.repair_min <= 0 or self.repair_max < self.repair_min:
            raise ValueError("repair bounds must satisfy 0 < min <= max")


@dataclass
class OutageEvent:
    """One outage as it happened: for metrics and time-to-recover."""

    site: str
    kind: str  # "full" | "partial"
    nodes: int
    start: float
    repair: float
    jobs_killed: int = 0
    end: Optional[float] = None


class SiteOutageInjector:
    """Drives a site through unplanned full and partial outages.

    A *full* outage calls :meth:`ResourceProvider.mark_down` (running jobs
    die with cause ``"site_outage"``, the scheduler suspends, submissions
    raise :class:`SiteDownError`) and, when a metascheduler is attached, asks
    it to requeue the pending jobs it had routed there.  A *partial* outage
    kills enough node-weighted victims to free the failed slice and blocks it
    with an unplanned drain :class:`Reservation` until repair.

    Every draw (gap, repair time, victim choice) comes from ``rng``, so the
    whole outage history is a pure function of the stream seed.
    """

    def __init__(
        self,
        sim: Simulator,
        provider: ResourceProvider,
        rng: np.random.Generator,
        policy: Optional[OutagePolicy] = None,
        metascheduler=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.provider = provider
        self.rng = rng
        self.policy = policy if policy is not None else OutagePolicy()
        self.metascheduler = metascheduler
        self.outages: list[OutageEvent] = []
        # Registry-backed counters under ``resilience.<site>.*``; the
        # attribute API stays (setters keep external ``+=`` working).
        registry = metrics if metrics is not None else MetricsRegistry()
        scope = registry.scoped(f"resilience.{provider.name}")
        self._jobs_killed = scope.counter("jobs_killed")
        self._requeued = scope.counter("requeued")
        if self.policy.site_mtbf > 0:
            sim.process(
                self._full_cycle(sim), name=f"outage:{provider.name}"
            )
        if self.policy.partial_mtbf > 0:
            sim.process(
                self._partial_cycle(sim), name=f"rack-outage:{provider.name}"
            )

    # -- introspection ------------------------------------------------------
    @property
    def outage_count(self) -> int:
        return len(self.outages)

    @property
    def jobs_killed(self) -> int:
        return self._jobs_killed.value

    @jobs_killed.setter
    def jobs_killed(self, value: int) -> None:
        self._jobs_killed.set(value)

    @property
    def requeued(self) -> int:
        return self._requeued.value

    @requeued.setter
    def requeued(self, value: int) -> None:
        self._requeued.set(value)

    def _repair_time(self) -> float:
        policy = self.policy
        return bounded_lognormal(
            self.rng,
            policy.repair_median,
            policy.repair_sigma,
            policy.repair_min,
            policy.repair_max,
        )

    # -- outage processes ---------------------------------------------------
    def _full_cycle(self, sim: Simulator):
        while True:
            yield sim.timeout(float(self.rng.exponential(self.policy.site_mtbf)))
            if not self.provider.up:
                continue  # a gap elapsed inside someone else's outage
            repair = self._repair_time()
            outage = OutageEvent(
                site=self.provider.name,
                kind="full",
                nodes=self.provider.cluster.nodes,
                start=sim.now,
                repair=repair,
            )
            outage.jobs_killed = self.provider.mark_down()
            self.jobs_killed += outage.jobs_killed
            self.outages.append(outage)
            if self.metascheduler is not None:
                self.requeued += self.metascheduler.handle_outage(self.provider)
            yield sim.timeout(repair)
            self.provider.mark_up()
            outage.end = sim.now

    def _partial_cycle(self, sim: Simulator):
        scheduler = self.provider.scheduler
        cluster = self.provider.cluster
        while True:
            yield sim.timeout(
                float(self.rng.exponential(self.policy.partial_mtbf))
            )
            if not self.provider.up:
                continue  # the whole machine is already down
            repair = self._repair_time()
            nodes_down = max(
                1, int(round(self.policy.partial_fraction * cluster.nodes))
            )
            nodes_down = min(nodes_down, cluster.nodes)
            outage = OutageEvent(
                site=self.provider.name,
                kind="partial",
                nodes=nodes_down,
                start=sim.now,
                repair=repair,
            )
            # Kill just enough running work to vacate the failed slice.
            # Victims are node-weighted (big jobs absorb more of the rack);
            # interrupts are deferred URGENT events, so selecting the whole
            # set before delivering any interrupt is safe.
            running = list(scheduler.running.values())
            need = nodes_down - scheduler.free_nodes
            victims = []
            while need > 0 and running:
                weights = np.array([e.nodes for e in running], dtype=float)
                index = int(
                    self.rng.choice(len(running), p=weights / weights.sum())
                )
                victim = running.pop(index)
                victims.append(victim)
                need -= victim.nodes
            for entry in victims:
                entry.runner.interrupt("site_outage")
            outage.jobs_killed = len(victims)
            self.jobs_killed += len(victims)
            scheduler.add_reservation(
                Reservation(
                    start=sim.now,
                    end=sim.now + repair,
                    nodes=nodes_down,
                    access=None,
                    label=f"outage-{self.provider.name}-{len(self.outages)}",
                )
            )
            self.outages.append(outage)
            yield sim.timeout(repair)
            outage.end = sim.now
