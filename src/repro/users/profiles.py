"""Behavioural parameter sets, one per modality.

Every quantity a behaviour process samples comes from here, so profiles are
the single calibration surface of the workload model.  Magnitudes follow the
parallel-workload literature (Lublin–Feitelson runtimes/sizes, heavy think
times) specialized per modality as described in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.modalities import Modality
from repro.infra.units import DAY, HOUR, MINUTE

__all__ = ["BehaviorProfile", "DEFAULT_PROFILES"]


@dataclass(frozen=True)
class BehaviorProfile:
    """Parameters of one modality's behaviour process.

    Time units are seconds; core counts are sampled as power-of-two-leaning
    (``log2`` normal) within ``[min_cores, max_cores]``.
    """

    modality: Modality
    #: mean time between activity sessions (exponential)
    think_time_mean: float
    #: session size range (uniform inclusive)
    jobs_per_session: tuple[int, int]
    #: core-count sampling: min, max, mean of log2, sigma of log2
    min_cores: int
    max_cores: int
    mean_log2_cores: float
    sigma_log2_cores: float
    #: runtime sampling (bounded lognormal)
    runtime_median: float
    runtime_sigma: float
    runtime_min: float
    runtime_max: float
    #: requested walltime = runtime estimate x pad (users over-request)
    walltime_pad: float
    #: probability a job fails early (application error)
    failure_prob: float
    #: probability the user underestimates the walltime (job gets killed)
    underestimate_prob: float = 0.03
    #: viz only: patience before cancelling an unstarted interactive session
    patience: float = 20 * MINUTE
    #: ensemble only: sweep width range
    sweep_width: tuple[int, int] = (8, 40)
    #: ensemble only: probability a sweep runs through the workflow engine
    workflow_prob: float = 0.5
    #: coupled only: number of sites spanned
    n_sites: tuple[int, int] = (2, 3)

    def __post_init__(self) -> None:
        if self.think_time_mean <= 0:
            raise ValueError("think_time_mean must be positive")
        lo, hi = self.jobs_per_session
        if not (1 <= lo <= hi):
            raise ValueError("jobs_per_session must satisfy 1 <= lo <= hi")
        if not (1 <= self.min_cores <= self.max_cores):
            raise ValueError("need 1 <= min_cores <= max_cores")
        if not (0 < self.runtime_min <= self.runtime_median <= self.runtime_max):
            raise ValueError("need 0 < runtime_min <= median <= runtime_max")
        if self.walltime_pad < 1.0:
            raise ValueError("walltime_pad must be >= 1")
        if not (0.0 <= self.failure_prob <= 1.0):
            raise ValueError("failure_prob must be in [0, 1]")


DEFAULT_PROFILES: dict[Modality, BehaviorProfile] = {
    # The workhorse: production simulation campaigns. Hours-long, mid-size,
    # reliable; a couple of jobs at a time, every day or two.
    Modality.BATCH: BehaviorProfile(
        modality=Modality.BATCH,
        think_time_mean=1.5 * DAY,
        jobs_per_session=(1, 3),
        min_cores=8,
        max_cores=1024,
        mean_log2_cores=6.0,
        sigma_log2_cores=1.5,
        runtime_median=4 * HOUR,
        runtime_sigma=1.0,
        runtime_min=10 * MINUTE,
        runtime_max=24 * HOUR,
        walltime_pad=2.0,
        failure_prob=0.05,
    ),
    # Porting and testing: bursts of tiny, short, failure-prone jobs.
    Modality.EXPLORATORY: BehaviorProfile(
        modality=Modality.EXPLORATORY,
        think_time_mean=8 * HOUR,
        jobs_per_session=(3, 10),
        min_cores=1,
        max_cores=32,
        mean_log2_cores=1.0,
        sigma_log2_cores=1.0,
        runtime_median=8 * MINUTE,
        runtime_sigma=1.2,
        runtime_min=30.0,
        runtime_max=2 * HOUR,
        walltime_pad=4.0,
        failure_prob=0.35,
        underestimate_prob=0.10,
    ),
    # A gateway end user: occasional small short runs through a portal.
    Modality.GATEWAY: BehaviorProfile(
        modality=Modality.GATEWAY,
        think_time_mean=5 * DAY,
        jobs_per_session=(1, 6),
        min_cores=1,
        max_cores=16,
        mean_log2_cores=1.0,
        sigma_log2_cores=1.0,
        runtime_median=15 * MINUTE,
        runtime_sigma=1.0,
        runtime_min=60.0,
        runtime_max=4 * HOUR,
        walltime_pad=3.0,
        failure_prob=0.08,
    ),
    # Parameter sweeps / workflows: wide bursts of similar mid-small jobs.
    Modality.ENSEMBLE: BehaviorProfile(
        modality=Modality.ENSEMBLE,
        think_time_mean=3 * DAY,
        jobs_per_session=(1, 1),  # one sweep per session
        min_cores=4,
        max_cores=64,
        mean_log2_cores=4.0,
        sigma_log2_cores=0.8,
        runtime_median=1 * HOUR,
        runtime_sigma=0.7,
        runtime_min=5 * MINUTE,
        runtime_max=6 * HOUR,
        walltime_pad=2.0,
        failure_prob=0.05,
        sweep_width=(8, 40),
        workflow_prob=0.5,
    ),
    # Interactive steering/visualization: small sessions wanted *now*.
    Modality.VIZ: BehaviorProfile(
        modality=Modality.VIZ,
        think_time_mean=1.5 * DAY,
        jobs_per_session=(1, 2),
        min_cores=1,
        max_cores=16,
        mean_log2_cores=2.0,
        sigma_log2_cores=1.0,
        runtime_median=2 * HOUR,
        runtime_sigma=0.5,
        runtime_min=20 * MINUTE,
        runtime_max=8 * HOUR,
        walltime_pad=1.2,
        failure_prob=0.02,
        patience=20 * MINUTE,
    ),
    # Tightly-coupled multi-site runs: rare and huge.
    Modality.COUPLED: BehaviorProfile(
        modality=Modality.COUPLED,
        think_time_mean=10 * DAY,
        jobs_per_session=(1, 1),
        min_cores=64,
        max_cores=512,
        mean_log2_cores=7.0,
        sigma_log2_cores=0.8,
        runtime_median=3 * HOUR,
        runtime_sigma=0.5,
        runtime_min=30 * MINUTE,
        runtime_max=12 * HOUR,
        walltime_pad=1.5,
        failure_prob=0.05,
        n_sites=(2, 3),
    ),
}
