"""Common machinery shared by all batch scheduling policies."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.infra.cluster import Cluster
from repro.infra.job import Job, JobState
from repro.infra.scheduler.profile import CapacityProfile
from repro.sim import Interrupt, Simulator
from repro.sim.process import Process

__all__ = ["BatchScheduler", "Reservation", "RunningJob"]

_reservation_ids = itertools.count(1)


@dataclass
class Reservation:
    """An advance reservation of ``nodes`` over ``[start, end)``.

    ``access`` decides which jobs may start inside the reserved window; jobs
    that do not satisfy it see the reserved nodes as busy.  ``None`` means
    nobody may use them (a pure drain).
    """

    start: float
    end: float
    nodes: int
    access: Optional[Callable[[Job], bool]] = None
    label: str = ""
    reservation_id: int = field(default_factory=lambda: next(_reservation_ids))

    def admits(self, job: Job) -> bool:
        return self.access is not None and self.access(job)


@dataclass
class RunningJob:
    """Bookkeeping for a job currently occupying nodes."""

    job: Job
    nodes: int
    end_estimate: float  # start + requested walltime (scheduler's bound)
    runner: Process


class BatchScheduler:
    """Base class: queue/running-set bookkeeping, start/finish mechanics.

    Subclasses implement :meth:`_schedule_pass`, called whenever the state
    changes (submission, completion, cancellation, reservation edge).

    ``on_job_end`` is invoked with each job reaching a terminal state; the
    owning :class:`~repro.infra.site.ResourceProvider` uses it to charge the
    allocation and emit the usage record.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        on_job_end: Optional[Callable[[Job], None]] = None,
        max_eligible_per_user: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.on_job_end = on_job_end
        #: per-user scheduling-eligibility cap (Moab MAXIJOB-style): a user's
        #: queued jobs beyond this limit are held invisible to the policy
        #: until earlier ones start. None = unlimited.
        self.max_eligible_per_user = max_eligible_per_user
        self.queue: list[Job] = []
        self.running: dict[int, RunningJob] = {}
        self.reservations: list[Reservation] = []
        self.free_nodes = cluster.nodes
        #: while True, policy passes are no-ops (machine down); queued jobs
        #: survive the outage, exactly as a PBS server restart preserves them
        self.suspended = False
        self.completed: list[Job] = []
        self._seq = itertools.count()
        self._arrival_order: dict[int, int] = {}
        self._completions: dict[int, object] = {}
        self._starts: dict[int, object] = {}
        self._next_wake: Optional[float] = None
        self._wake_epoch = 0

    # -- public interface ---------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Enqueue ``job`` and immediately attempt a scheduling pass."""
        if job.state is not JobState.CREATED:
            raise ValueError(f"job {job.job_id} was already submitted")
        if job.cores > self.cluster.total_cores:
            raise ValueError(
                f"job {job.job_id} requests {job.cores} cores; "
                f"{self.cluster.name} has {self.cluster.total_cores}"
            )
        job.state = JobState.PENDING
        job.submit_time = self.sim.now
        job.resource = self.cluster.name
        self._completions[job.job_id] = self.sim.event()
        self._starts[job.job_id] = self.sim.event()
        self.queue.append(job)
        self._arrival_order[job.job_id] = next(self._seq)
        self._schedule_pass()
        return job

    def wait_for(self, job: Job):
        """Event that triggers with ``job`` when it reaches a terminal state."""
        try:
            return self._completions[job.job_id]
        except KeyError:
            raise KeyError(
                f"job {job.job_id} was not submitted to this scheduler"
            ) from None

    def wait_for_start(self, job: Job):
        """Event that triggers with ``job`` when it begins running.

        A job cancelled while pending never starts; its start event triggers
        with ``None`` so waiters are always released.
        """
        try:
            return self._starts[job.job_id]
        except KeyError:
            raise KeyError(
                f"job {job.job_id} was not submitted to this scheduler"
            ) from None

    def cancel(self, job: Job) -> None:
        """Remove a pending job, or kill a running one."""
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            job.state = JobState.CANCELLED
            job.end_time = self.sim.now
            self._emit_end(job)
            self._schedule_pass()
        elif job.state is JobState.RUNNING:
            self.running[job.job_id].runner.interrupt("cancelled")
        elif job.state.is_terminal:
            pass  # cancelling a finished job is a harmless race
        else:
            raise ValueError(f"cannot cancel job in state {job.state}")

    def withdraw(self, job: Job) -> tuple:
        """Silently pull a *pending* job back out (metascheduler failover).

        Unlike :meth:`cancel` this is not a terminal transition: no usage
        record is emitted and the job reverts to ``CREATED`` as if it had
        never been submitted here, ready for resubmission elsewhere.  The
        job's (completion, start) events are returned so the caller can
        bridge existing waiters onto wherever the job lands next.
        """
        if job.state is not JobState.PENDING:
            raise ValueError(
                f"can only withdraw a pending job; {job.job_id} is {job.state}"
            )
        self.queue.remove(job)
        self._arrival_order.pop(job.job_id, None)
        completion = self._completions.pop(job.job_id)
        start = self._starts.pop(job.job_id)
        job.state = JobState.CREATED
        job.submit_time = None
        job.resource = None
        self._schedule_pass()
        return completion, start

    def suspend(self) -> None:
        """Freeze scheduling (site outage): nothing starts until resume."""
        self.suspended = True

    def resume(self) -> None:
        """Lift a suspension and immediately re-run the policy."""
        self.suspended = False
        self._schedule_pass()

    def add_reservation(self, reservation: Reservation) -> Reservation:
        """Register an advance reservation and re-run scheduling at its edges."""
        if reservation.end <= reservation.start:
            raise ValueError("reservation end must be after start")
        if reservation.nodes > self.cluster.nodes:
            raise ValueError("reservation exceeds machine size")
        self.reservations.append(reservation)

        def edge_watcher(sim, reservation):
            # Wake the scheduler when the window opens and when it closes.
            if reservation.start > sim.now:
                yield sim.timeout(reservation.start - sim.now)
                self._schedule_pass()
            if reservation.end > sim.now:
                yield sim.timeout(reservation.end - sim.now)
                self._drop_reservation(reservation)
                self._schedule_pass()

        self.sim.process(
            edge_watcher(self.sim, reservation),
            name=f"reservation-{reservation.reservation_id}",
        )
        self._schedule_pass()
        return reservation

    # -- introspection --------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def busy_nodes(self) -> int:
        return self.cluster.nodes - self.free_nodes

    def pending_node_seconds(self) -> float:
        """Total outstanding work in the queue (nodes x requested walltime)."""
        return sum(
            self.cluster.nodes_for(job.cores) * job.walltime for job in self.queue
        )

    def utilization_snapshot(self) -> float:
        """Fraction of nodes busy right now."""
        return self.busy_nodes / self.cluster.nodes

    # -- policy hook ------------------------------------------------------------
    def _schedule_pass(self) -> None:
        """Run the policy, then arm a timer for time-blocked heads.

        Completions and submissions trigger passes naturally; a head blocked
        purely by *time* (a ``not_before`` constraint, or waiting out a
        reservation on an otherwise idle machine) needs an explicit wake-up.
        """
        if self.suspended:
            return
        self._policy_pass()
        self._arm_head_wakeup()

    def _policy_pass(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _head_wake_time(self, head: Job) -> float:
        """When a time-blocked head should next be reconsidered."""
        return self.earliest_start(head)

    def _arm_head_wakeup(self) -> None:
        order = self._ordered_queue()
        if not order:
            return
        head = order[0]
        wake_at = self._head_wake_time(head)
        if wake_at <= self.sim.now + 1e-9:
            return
        if self._next_wake is not None and wake_at >= self._next_wake - 1e-9:
            return  # an equal-or-earlier wake-up is already armed
        self._next_wake = wake_at
        self._wake_epoch += 1
        epoch = self._wake_epoch

        def waker(sim, delay, epoch):
            yield sim.timeout(delay)
            if epoch == self._wake_epoch:
                self._next_wake = None
                self._schedule_pass()

        self.sim.process(
            waker(self.sim, wake_at - self.sim.now, epoch), name="sched-wake"
        )

    def _ordered_queue(self) -> list[Job]:
        """Queue in service order: higher ``job.priority`` first, then FIFO.

        All jobs default to priority 0, so the default order is pure FIFO;
        interactive/urgent queues get a boost by setting a higher priority.
        Policies override for richer orders (e.g. fairshare).  With
        ``max_eligible_per_user`` set, each user's jobs beyond the cap are
        dropped from the eligible order (they remain queued).
        """
        order = sorted(
            self.queue,
            key=lambda job: (-job.priority, self._arrival_order[job.job_id]),
        )
        return self._apply_user_cap(order)

    def _apply_user_cap(self, order: list[Job]) -> list[Job]:
        if self.max_eligible_per_user is None:
            return order
        seen: dict[str, int] = {}
        eligible = []
        for job in order:
            count = seen.get(job.user, 0)
            if count < self.max_eligible_per_user:
                eligible.append(job)
                seen[job.user] = count + 1
        return eligible

    # -- capacity reasoning -------------------------------------------------------
    def build_profile(
        self, for_job: Optional[Job] = None, include_running: bool = True
    ) -> CapacityProfile:
        """Availability profile as seen by ``for_job``.

        Reservations admitting the job do not count as busy for it; all other
        reservations and (optionally) running jobs do.
        """
        profile = CapacityProfile(self.cluster.nodes, self.sim.now)
        if include_running:
            for running in self.running.values():
                # A running job holds its nodes until its walltime bound at
                # the latest; the scheduler plans with that bound.
                profile.add_usage(self.sim.now, running.end_estimate, running.nodes)
        for reservation in self.reservations:
            if for_job is not None and reservation.admits(for_job):
                continue
            profile.add_usage(reservation.start, reservation.end, reservation.nodes)
        return profile

    def can_start_now(self, job: Job) -> bool:
        """Whether ``job`` can start immediately without violating anything."""
        if job.not_before is not None and self.sim.now < job.not_before - 1e-9:
            return False
        nodes = self.cluster.nodes_for(job.cores)
        if nodes > self.free_nodes:
            return False
        profile = self.build_profile(for_job=job)
        return profile.available_during(self.sim.now, job.walltime) >= nodes

    def earliest_start(self, job: Job, not_before: Optional[float] = None) -> float:
        """Earliest feasible start time for ``job`` under current knowledge."""
        nodes = self.cluster.nodes_for(job.cores)
        floor = not_before
        if job.not_before is not None:
            floor = job.not_before if floor is None else max(floor, job.not_before)
        profile = self.build_profile(for_job=job)
        return profile.earliest_start(nodes, job.walltime, not_before=floor)

    # -- mechanics ----------------------------------------------------------------
    def _start(self, job: Job) -> None:
        nodes = self.cluster.nodes_for(job.cores)
        assert nodes <= self.free_nodes, "policy started a job without room"
        self.queue.remove(job)
        self.free_nodes -= nodes
        job.state = JobState.RUNNING
        job.start_time = self.sim.now
        # Events stay registered after triggering so that wait_for_start /
        # wait_for work regardless of when the caller asks (a job may start
        # synchronously inside submit()).
        start_event = self._starts.get(job.job_id)
        if start_event is not None:
            start_event.succeed(job)
        runner = self.sim.process(
            self._runner(job, nodes), name=f"job-{job.job_id}"
        )
        self.running[job.job_id] = RunningJob(
            job=job,
            nodes=nodes,
            end_estimate=self.sim.now + job.walltime,
            runner=runner,
        )

    def _runner(self, job: Job, nodes: int):
        try:
            yield self.sim.timeout(job.bounded_runtime)
            final_state = job.final_state_when_run_to_completion()
        except Interrupt as interrupt:
            # A user cancellation and a hardware fault end the job the same
            # way mechanically, but accounting distinguishes them.
            if interrupt.cause in ("node_failure", "site_outage"):
                final_state = JobState.FAILED
            else:
                final_state = JobState.CANCELLED
        del self.running[job.job_id]
        self.free_nodes += nodes
        job.state = final_state
        job.end_time = self.sim.now
        self._emit_end(job)
        self._schedule_pass()

    def _emit_end(self, job: Job) -> None:
        self.completed.append(job)
        if self.on_job_end is not None:
            self.on_job_end(job)
        start_event = self._starts.get(job.job_id)
        if start_event is not None and not start_event.triggered:
            start_event.succeed(None)  # terminal without ever starting
        completion = self._completions.get(job.job_id)
        if completion is not None:
            completion.succeed(job)

    def _drop_reservation(self, reservation: Reservation) -> None:
        try:
            self.reservations.remove(reservation)
        except ValueError:  # pragma: no cover - already expired
            pass
