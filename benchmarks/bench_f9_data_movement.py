"""Bench F9: regenerate the data-movement-by-modality table."""


def test_f9_data_movement(regenerate):
    output = regenerate("F9")
    batch = output.data["batch"]
    ensemble = output.data["ensemble"]
    coupled = output.data["coupled"]
    # Batch dominates volume; ensemble dominates transfer count.
    assert batch["bytes"] > 0.5 * output.data["total_bytes"]
    assert ensemble["transfers"] > batch["transfers"]
    # Coupled runs move data on every launch (inputs to each part).
    assert coupled["transfers"] > 0
    # Portal/porting/viz users do not move data over the WAN.
    for quiet in ("gateway", "exploratory", "viz"):
        assert output.data[quiet]["transfers"] == 0
