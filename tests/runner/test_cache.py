"""Tests for the on-disk result cache: key scheme, checksums, quarantine."""

import pytest

from repro.runner.cache import (
    ResultCache,
    code_version,
    default_cache_dir,
    read_entry,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


def test_round_trip(cache):
    cache.put("T1", {"days": 5.0}, 1, {"answer": 42})
    hit, value = cache.get("T1", {"days": 5.0}, 1)
    assert hit and value == {"answer": 42}
    assert cache.stats.hits == 1 and cache.stats.writes == 1


def test_miss_on_empty_cache(cache):
    hit, value = cache.get("T1", {"days": 5.0}, 1)
    assert not hit and value is None
    assert cache.stats.misses == 1


def test_key_depends_on_every_component(cache):
    base = cache.key("T1", {"days": 5.0}, 1)
    assert cache.key("T2", {"days": 5.0}, 1) != base
    assert cache.key("T1", {"days": 6.0}, 1) != base
    assert cache.key("T1", {"days": 5.0}, 2) != base
    other_version = ResultCache(root=cache.root, version="deadbeef")
    assert other_version.key("T1", {"days": 5.0}, 1) != base


def test_key_is_insensitive_to_dict_ordering(cache):
    a = cache.key("T1", {"days": 5.0, "seed": 3}, 1)
    b = cache.key("T1", {"seed": 3, "days": 5.0}, 1)
    assert a == b


def test_key_distinguishes_tuple_knob_values(cache):
    a = cache.key("R1", {"seeds": (1, 2)}, 1)
    b = cache.key("R1", {"seeds": (1, 3)}, 1)
    assert a != b


def test_corrupt_entry_is_a_miss_and_quarantined(cache):
    cache.put("T1", {}, 1, "value")
    (entry,) = cache.entries()
    entry.write_bytes(b"not a pickle")
    hit, value = cache.get("T1", {}, 1)
    assert not hit and value is None
    assert cache.entries() == []
    assert cache.stats.quarantined == 1
    # Forensics beat deletion: the damaged bytes are kept aside.
    (kept,) = cache.quarantined_entries()
    assert kept.read_bytes() == b"not a pickle"


def test_bitflip_fails_checksum_and_quarantines(cache):
    cache.put("T1", {}, 1, {"rows": [1, 2, 3]})
    (entry,) = cache.entries()
    blob = bytearray(entry.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # single flipped bit-pattern in the payload
    entry.write_bytes(bytes(blob))
    hit, value = cache.get("T1", {}, 1)
    assert not hit and value is None
    assert cache.stats.quarantined == 1


def test_truncated_entry_is_quarantined_not_raised(cache):
    cache.put("T1", {}, 1, list(range(100)))
    (entry,) = cache.entries()
    entry.write_bytes(entry.read_bytes()[:20])  # torn write survivor
    hit, value = cache.get("T1", {}, 1)
    assert not hit and value is None
    assert cache.stats.quarantined == 1


def test_quarantined_entries_do_not_shadow_recomputes(cache):
    cache.put("T1", {}, 1, "good")
    (entry,) = cache.entries()
    entry.write_bytes(b"garbage")
    cache.get("T1", {}, 1)  # quarantines
    cache.put("T1", {}, 1, "recomputed")
    hit, value = cache.get("T1", {}, 1)
    assert hit and value == "recomputed"


def test_clear_removes_everything(cache):
    for seed in range(3):
        cache.put("T1", {}, seed, seed)
    assert len(cache.entries()) == 3
    assert cache.clear() == 3
    assert cache.entries() == []
    assert cache.size_bytes() == 0


def test_clear_removes_quarantined_entries_too(cache):
    cache.put("T1", {}, 1, "value")
    (entry,) = cache.entries()
    entry.write_bytes(b"junk")
    cache.get("T1", {}, 1)
    assert cache.clear() == 1
    assert cache.quarantined_entries() == []


def test_put_overwrites_atomically(cache):
    cache.put("T1", {}, 1, "old")
    cache.put("T1", {}, 1, "new")
    hit, value = cache.get("T1", {}, 1)
    assert hit and value == "new"
    # No leftover temp files from the write-and-rename protocol.
    assert [p for p in cache.root.iterdir() if p.suffix == ".tmp"] == []


def test_entries_are_loadable_checksummed_blobs(cache):
    cache.put("T1", {"days": 1.0}, 7, {"rows": [1, 2, 3]})
    (entry,) = cache.entries()
    assert entry.read_bytes().startswith(b"RPC1")
    assert read_entry(entry) == {"rows": [1, 2, 3]}


def test_read_entry_rejects_foreign_files(tmp_path):
    foreign = tmp_path / "foreign.pkl"
    foreign.write_bytes(b"anything at all")
    with pytest.raises(ValueError, match="not a checksummed"):
        read_entry(foreign)


def test_code_version_is_stable_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"
