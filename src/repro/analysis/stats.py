"""Summary statistics and uncertainty quantification for experiments.

Single-run tables are fine for shape checks, but claims like "strategy A
beats strategy B" deserve uncertainty: :func:`bootstrap_ci` gives
nonparametric confidence intervals over per-job samples, and
:func:`seed_replicates` re-runs a measurement across seeds for run-to-run
spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["SummaryStats", "bootstrap_ci", "describe", "seed_replicates"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of one sample."""

    n: int
    mean: float
    std: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"n={self.n} mean={self.mean:.3g} median={self.median:.3g} "
            f"p10={self.p10:.3g} p90={self.p90:.3g}"
        )


def describe(values: Iterable[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("describe() of an empty sample")
    return SummaryStats(
        n=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        median=float(np.median(array)),
        p10=float(np.percentile(array, 10)),
        p90=float(np.percentile(array, 90)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI: returns ``(point, low, high)``.

    Deterministic for a fixed ``seed``; the point estimate is the statistic
    on the full sample.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("bootstrap of an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    point = float(statistic(array))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        resampled[i] = statistic(
            array[rng.integers(0, array.size, size=array.size)]
        )
    alpha = (1.0 - confidence) / 2.0
    low = float(np.percentile(resampled, 100 * alpha))
    high = float(np.percentile(resampled, 100 * (1 - alpha)))
    return point, low, high


def seed_replicates(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> SummaryStats:
    """Run ``measure(seed)`` per seed and summarize the replicate spread."""
    if not seeds:
        raise ValueError("need at least one seed")
    return describe(measure(seed) for seed in seeds)
