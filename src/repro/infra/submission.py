"""Submission interfaces: how jobs reach a site's batch system.

The paper's instrumentation hinges on the *submission path* being recorded as
a job attribute.  Direct login submission and GRAM middleware submission are
modelled here; gateway portal submission lives in
:mod:`repro.infra.gateway` because gateways add community-account semantics.
"""

from __future__ import annotations

from repro.infra.job import AttributeKeys, Job, SubmissionInterface
from repro.infra.site import ResourceProvider

__all__ = ["LoginSubmitter", "GramSubmitter"]


class LoginSubmitter:
    """Direct ``qsub`` from a login node: the classic path."""

    interface = SubmissionInterface.LOGIN

    def submit(self, site: ResourceProvider, job: Job) -> Job:
        job.attributes[AttributeKeys.SUBMIT_INTERFACE] = self.interface.value
        return site.submit(job)


class GramSubmitter:
    """Remote submission through grid middleware (GRAM).

    Counts submissions per user, which an information-service consumer could
    audit; the attribute stamped on the job is what accounting sees.
    """

    interface = SubmissionInterface.GRAM

    def __init__(self) -> None:
        self.submissions: dict[str, int] = {}

    def submit(self, site: ResourceProvider, job: Job) -> Job:
        job.attributes[AttributeKeys.SUBMIT_INTERFACE] = self.interface.value
        self.submissions[job.user] = self.submissions.get(job.user, 0) + 1
        return site.submit(job)
