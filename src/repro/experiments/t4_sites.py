"""T4 — Per-site modality breakdown (NU share per resource x modality).

Shape expectation: every site is BATCH-dominated; gateway and exploratory
usage concentrate NU-wise on the smaller, cheaper machines in relative
terms; the largest machines host the coupled runs.
"""

from __future__ import annotations

from repro.core import AttributeClassifier, compute_metrics
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T4")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    classification = AttributeClassifier().classify(records)
    metrics = compute_metrics(records, classification)

    sites = sorted(metrics.by_site_nu)
    headers = ["site", "total NUs", *[m.value for m in MODALITY_ORDER]]
    rows = []
    for site in sites:
        split = metrics.by_site_nu[site]
        total = sum(split.values())
        row = [site, f"{total:,.0f}"]
        for modality in MODALITY_ORDER:
            share = split.get(modality, 0.0) / total if total else 0.0
            row.append(f"{100 * share:.1f}%")
        rows.append(row)
    text = ascii_table(
        headers,
        rows,
        title=f"T4 — NU share per site x modality over {days:g} days",
    )
    return ExperimentOutput(
        experiment_id="T4",
        title="Per-site modality breakdown",
        text=text,
        data={
            site: {
                m.value: metrics.by_site_nu[site].get(m, 0.0)
                for m in MODALITY_ORDER
            }
            for site in sites
        },
    )


def _campaigns(params: dict) -> list:
    """The one campaign T4's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T4", _campaigns)
