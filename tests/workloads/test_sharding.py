"""Tests for the scale tier: cells, scoped counters, merge, determinism.

The acceptance contract of the sharded campaign path: cell decomposition is
a pure function of the campaign key, cell simulations are isolated from
process history, the merge is deterministic, and — the headline property —
the merged artifact is byte-identical at any shard count, collapsing to the
literal legacy bytes at the canonical population scale.
"""

import pickle
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.modalities import Modality
from repro.infra.accounting import UsageRecord
from repro.infra.job import AttributeKeys, JobState
from repro.runner import ArtifactStore
from repro.scenarios import check_merged_artifact
from repro.scenarios.strategies import scenario_programs
from repro.sim.rng import RandomStreams
from repro.users.population import PopulationSpec, build_population, cell_members
from repro.workloads import sharding
from repro.workloads.sharding import (
    CELL_ID_STRIDE,
    CELL_SCALE,
    CellKey,
    cell_count,
    merge_cell_artifacts,
    resolve_sharded_campaign,
    run_scenario_sharded,
    scoped_id_counters,
)
from repro.workloads.synthetic import (
    CampaignArtifact,
    CampaignKey,
    ScenarioConfig,
    run_scenario,
)


# -- cell decomposition --------------------------------------------------------

def test_canonical_scale_is_one_cell():
    assert cell_count(CELL_SCALE) == 1
    assert cell_count(PopulationSpec(scale=CELL_SCALE)) == 1


def test_cell_count_scales_with_population():
    assert cell_count(0.2) == 4
    assert cell_count(0.5) == 10


def test_cell_count_is_never_zero():
    assert cell_count(0.001) == 1


def _tiny_population(scale=0.1):
    from repro import infra

    sim_ledger = infra.AllocationLedger()
    central = infra.CentralAccountingDB()
    from repro.sim import Simulator

    sim = Simulator()
    providers = [
        infra.ResourceProvider(
            sim, infra.Cluster("big", nodes=16, cores_per_node=8),
            sim_ledger, central,
        )
    ]
    return build_population(
        PopulationSpec(scale=scale),
        RandomStreams(seed=3).stream("population"),
        providers,
        sim_ledger,
    )


def test_cell_members_partition_the_population():
    population = _tiny_population(scale=0.1)
    cells = 3
    members = [cell_members(population, c, cells) for c in range(cells)]
    union = set().union(*members)
    assert union == set(range(len(population.users)))
    assert sum(len(m) for m in members) == len(population.users)


def test_cell_members_rejects_bad_cell():
    population = _tiny_population(scale=CELL_SCALE)
    with pytest.raises(ValueError):
        cell_members(population, 2, 2)


# -- CellKey -------------------------------------------------------------------

def test_cell_key_seed_is_spawn_derived():
    key = CampaignKey.make(days=4.0, seed=11, population_scale=0.2)
    cell_key = CellKey.for_cell(key, 1, 4)
    assert cell_key.seed == RandomStreams(11).spawn("shard:1/4").seed
    assert cell_key.campaign_seed == 11
    assert cell_key.campaign_key == key


def test_cell_key_seeds_are_distinct_across_cells():
    key = CampaignKey.make(days=4.0, seed=11, population_scale=0.2)
    seeds = {CellKey.for_cell(key, c, 4).seed for c in range(4)}
    assert len(seeds) == 4


def test_cell_key_rejects_out_of_range_cell():
    key = CampaignKey.make(days=4.0, seed=11, population_scale=0.2)
    with pytest.raises(ValueError):
        CellKey.for_cell(key, 4, 4)


def test_single_cell_config_has_no_shard_filter():
    key = CampaignKey.make(days=4.0, seed=11, population_scale=CELL_SCALE)
    assert CellKey.for_cell(key, 0, 1).config().shard is None


def test_multi_cell_config_carries_its_shard():
    key = CampaignKey.make(days=4.0, seed=11, population_scale=0.2)
    assert CellKey.for_cell(key, 2, 4).config().shard == (2, 4)


# -- scoped id counters --------------------------------------------------------

def test_scoped_id_counters_restart_and_restore():
    import repro.infra.job as job_mod

    before = next(job_mod._job_ids)
    with scoped_id_counters():
        assert next(job_mod._job_ids) == 1
        assert next(job_mod._job_ids) == 2
    assert next(job_mod._job_ids) == before + 1


def test_scoped_id_counters_restore_on_error():
    import repro.users.behavior as behavior_mod

    before = next(behavior_mod._ensemble_ids)
    with pytest.raises(RuntimeError):
        with scoped_id_counters():
            raise RuntimeError("boom")
    assert next(behavior_mod._ensemble_ids) == before + 1


# -- the deterministic merge ---------------------------------------------------

def _record(job_id, end_time, attributes=None, charged=1.0):
    return UsageRecord(
        job_id=job_id,
        user="u",
        account="a",
        resource="r",
        queue_name="normal",
        cores=4,
        requested_walltime=100.0,
        submit_time=0.0,
        start_time=1.0,
        end_time=end_time,
        final_state=JobState.COMPLETED,
        charged_nu=charged,
        attributes=dict(attributes or {}),
    )


def _artifact(records, total_nu, snapshot=None):
    return CampaignArtifact(
        key=None,
        records=records,
        job_truth={r.job_id: Modality.BATCH for r in records},
        identity_truth={"id0": Modality.BATCH},
        active_identities=frozenset({"id0"}),
        community_accounts=frozenset({"acct"}),
        total_nu=total_nu,
        transfers=(),
        metric_snapshot=dict(snapshot or {}),
    )


def test_merge_renumbers_into_cell_namespaces():
    a = _artifact([_record(1, 10.0), _record(2, 5.0)], total_nu=2.0)
    b = _artifact([_record(1, 7.0)], total_nu=1.0)
    merged = merge_cell_artifacts(None, [a, b])
    assert [r.job_id for r in merged.records] == [2, CELL_ID_STRIDE + 1, 1]
    assert set(merged.job_truth) == {1, 2, CELL_ID_STRIDE + 1}
    assert merged.total_nu == 3.0


def test_merge_orders_by_sim_time_then_shard_ordinal():
    # An end-time tie between cells resolves by job id, i.e. shard ordinal
    # (cell 0's ids sort below cell 1's strided ids).
    a = _artifact([_record(5, 10.0)], total_nu=1.0)
    b = _artifact([_record(3, 10.0)], total_nu=1.0)
    merged = merge_cell_artifacts(None, [a, b])
    assert [r.job_id for r in merged.records] == [5, CELL_ID_STRIDE + 3]


def test_merge_renumbers_counter_attributes():
    a = _artifact(
        [_record(1, 2.0, {AttributeKeys.WORKFLOW_ID: "wf-1"})], total_nu=1.0
    )
    b = _artifact(
        [
            _record(
                1,
                3.0,
                {AttributeKeys.WORKFLOW_ID: "wf-1", AttributeKeys.ENSEMBLE_ID: 7},
            )
        ],
        total_nu=1.0,
    )
    merged = merge_cell_artifacts(None, [a, b])
    by_job = {r.job_id: r.attributes for r in merged.records}
    # Every cell gets a prefix (cell 0 included), so equal local values
    # from different cells can never collide in the merged stream.
    assert by_job[1][AttributeKeys.WORKFLOW_ID] == "c0:wf-1"
    assert by_job[CELL_ID_STRIDE + 1][AttributeKeys.WORKFLOW_ID] == "c1:wf-1"
    assert by_job[CELL_ID_STRIDE + 1][AttributeKeys.ENSEMBLE_ID] == CELL_ID_STRIDE + 7


def test_merge_rejects_job_id_overflowing_its_cell():
    a = _artifact([_record(1, 1.0)], total_nu=1.0)
    b = _artifact([_record(CELL_ID_STRIDE, 1.0)], total_nu=1.0)
    with pytest.raises(ValueError, match="stride"):
        merge_cell_artifacts(None, [a, b])


def test_merge_combines_metric_snapshots():
    a = _artifact(
        [_record(1, 1.0)],
        total_nu=1.0,
        snapshot={
            "jobs": 3,
            "queue": {"value": 2, "high_water": 5},
            "wait": {"count": 2, "total": 10.0, "min": 1.0, "max": 9.0},
        },
    )
    b = _artifact(
        [_record(1, 2.0)],
        total_nu=1.0,
        snapshot={
            "jobs": 4,
            "queue": {"value": 1, "high_water": 7},
            "wait": {"count": 0, "total": 0.0, "min": float("inf"), "max": 0.0},
        },
    )
    merged = merge_cell_artifacts(None, [a, b])
    assert merged.metric_snapshot["jobs"] == 7
    assert merged.metric_snapshot["queue"] == {"value": 3, "high_water": 7}
    # The empty cell histogram must not poison min/max.
    assert merged.metric_snapshot["wait"] == {
        "count": 2, "total": 10.0, "min": 1.0, "max": 9.0,
    }


def test_single_cell_merge_stamps_the_campaign_key():
    key = CampaignKey.make(days=2.0, seed=1)
    artifact = _artifact([_record(1, 1.0)], total_nu=1.0)
    merged = merge_cell_artifacts(key, [artifact])
    assert merged.key == key
    assert merged.records is artifact.records


def test_merge_requires_at_least_one_artifact():
    with pytest.raises(ValueError):
        merge_cell_artifacts(None, [])


# -- end-to-end determinism (the headline properties) --------------------------

def _merged_bytes(config, shards):
    return pickle.dumps(run_scenario_sharded(config, shards=shards))


def test_canonical_scale_sharded_equals_legacy_bytes():
    """K == 1 cell: the sharded path IS the legacy path, byte for byte."""
    config = ScenarioConfig(
        days=2.0, seed=7, population=PopulationSpec(scale=CELL_SCALE)
    )
    with scoped_id_counters():
        legacy = CampaignArtifact.from_result(run_scenario(config))
    assert pickle.dumps(legacy) == _merged_bytes(config, shards=4)


def test_shard_count_never_changes_the_merged_bytes():
    """3 cells visited in different orders (shards=1: 0,1,2; shards=2:
    0,2,1) must produce identical artifacts — cell isolation in action."""
    config = ScenarioConfig(
        days=1.5, seed=5, population=PopulationSpec(scale=0.15)
    )
    assert cell_count(config.population) == 3
    reference = _merged_bytes(config, shards=1)
    assert reference == _merged_bytes(config, shards=2)
    assert reference == _merged_bytes(config, shards=4)


def test_merged_artifact_satisfies_the_oracle():
    config = ScenarioConfig(
        days=1.5, seed=5, population=PopulationSpec(scale=0.15)
    )
    report = check_merged_artifact(run_scenario_sharded(config, shards=2))
    assert report.ok, report.summary()


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(program=scenario_programs(), scale=st.sampled_from([CELL_SCALE, 0.15]))
def test_random_programs_are_shard_invariant(program, scale):
    """Property: for random scenario programs, shards=1 and shards=4 merge
    to byte-identical artifacts (and thus identical derived reports)."""
    from repro.scenarios import FederationDef

    # Scale-based populations submit canonical-sized jobs, so swap the
    # drawn micro-federation for the standard preset they are sized for;
    # outages, faults, load shape, scheduling etc. stay random.
    program = replace(
        program,
        federation=FederationDef(preset="small", sites=None),
        mix=None,
        population_scale=scale,
    )
    config = program.compile(days=1.5)
    one = run_scenario_sharded(config, shards=1)
    four = run_scenario_sharded(config, shards=4)
    assert pickle.dumps(one) == pickle.dumps(four)
    assert check_merged_artifact(four).ok


# -- store-backed resolution ---------------------------------------------------

def test_resolve_sharded_campaign_saves_and_reuses_cells(tmp_path, monkeypatch):
    key = CampaignKey.make(days=1.5, seed=3, population_scale=0.15)
    store = ArtifactStore(root=tmp_path)
    first = resolve_sharded_campaign(key, store)
    for cell in range(cell_count(key.population_scale)):
        assert store.has(CellKey.for_cell(key, cell, 3))

    # A second resolution must come entirely from the store.
    def _no_sim(*args, **kwargs):
        raise AssertionError("cell resimulated despite stored artifact")

    monkeypatch.setattr(sharding, "simulate_cell", _no_sim)
    second = resolve_sharded_campaign(key, store)
    assert pickle.dumps(first) == pickle.dumps(second)
    assert first.key == key


def test_resolve_sharded_campaign_without_store_simulates(tmp_path):
    key = CampaignKey.make(days=1.5, seed=3, population_scale=CELL_SCALE)
    merged = resolve_sharded_campaign(key, None)
    assert merged.key == key
    assert merged.records


# -- shard-mode plumbing -------------------------------------------------------

def test_shard_mode_context_restores_previous_value():
    assert sharding.shard_mode() is None
    with sharding.sharded(4):
        assert sharding.shard_mode() == 4
        with sharding.sharded(2):
            assert sharding.shard_mode() == 2
        assert sharding.shard_mode() == 4
    assert sharding.shard_mode() is None


def test_shard_mode_rejects_nonpositive():
    with pytest.raises(ValueError):
        sharding.set_shard_mode(0)


def test_run_scenario_sharded_rejects_nonpositive_shards():
    config = ScenarioConfig(days=1.0, seed=1)
    with pytest.raises(ValueError):
        run_scenario_sharded(config, shards=0)


def test_simulate_cell_config_rejects_presharded_config():
    config = ScenarioConfig(
        days=1.0, seed=1, population=PopulationSpec(scale=0.15), shard=(0, 3)
    )
    with pytest.raises(ValueError, match="shard"):
        sharding.simulate_cell_config(config, 0, 3)
