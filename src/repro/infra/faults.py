"""Hardware fault injection.

Large machines lose nodes continuously; a node loss kills whatever job owns
it.  :class:`NodeFailureInjector` models that as a Poisson process over a
cluster's *busy* nodes: each running job is exposed in proportion to the
nodes it holds, and a struck job dies in :attr:`JobState.FAILED` (the
scheduler frees its nodes and accounting charges the time actually used —
failure semantics identical to an application crash, which is exactly how
2010-era accounting saw node losses).
"""

from __future__ import annotations

import numpy as np

from repro.infra.scheduler.base import BatchScheduler
from repro.infra.units import HOUR
from repro.sim import Simulator

__all__ = ["NodeFailureInjector"]


class NodeFailureInjector:
    """Kills running jobs at a per-node MTBF.

    ``node_mtbf`` is the mean time between failures of a *single node*; the
    instantaneous kill rate is ``busy_nodes / node_mtbf``.  The injector
    polls at ``tick`` resolution and draws the number of strikes per tick
    from the matching Poisson distribution — several nodes can fail in one
    interval, so several distinct jobs can die in one tick (capping at one
    kill per tick would systematically undercount failures on large busy
    machines).  Victims are node-weighted without replacement; the draw is
    fully determined by the supplied generator, so runs are seed-stable.

    Nodes inside an *active maintenance window* (a drain reservation with
    ``access=None``) are powered down and cannot strike anyone.  Running
    jobs avoid drained nodes whenever capacity allows, so only the overlap
    the pigeonhole principle forces — ``busy + drained - total`` nodes —
    is protected; during a full-machine window every busy node is drained
    and the injector goes quiet entirely.
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler: BatchScheduler,
        rng: np.random.Generator,
        node_mtbf: float = 5000 * HOUR,
        tick: float = 0.25 * HOUR,
    ) -> None:
        if node_mtbf <= 0 or tick <= 0:
            raise ValueError("node_mtbf and tick must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.rng = rng
        self.node_mtbf = node_mtbf
        self.tick = tick
        self.failures_injected = 0
        sim.process(self._inject(sim), name="fault-injector")

    def _inject(self, sim: Simulator):
        while True:
            yield sim.timeout(self.tick)
            running = list(self.scheduler.running.values())
            if not running:
                continue
            busy_nodes = sum(entry.nodes for entry in running)
            now = sim.now
            drained = sum(
                r.nodes
                for r in self.scheduler.reservations
                if r.access is None and r.start <= now < r.end
            )
            # Busy nodes forced into the drained set are powered down with
            # it and cannot fail a job (satellite: faults x maintenance).
            total = self.scheduler.cluster.nodes
            exposed = busy_nodes - max(busy_nodes + drained - total, 0)
            if exposed <= 0:
                continue
            # Strikes this tick ~ Poisson(exposed-node failure rate * tick);
            # a strike on an already-dead job's node is absorbed by the cap.
            strikes = int(
                self.rng.poisson(exposed * self.tick / self.node_mtbf)
            )
            if strikes == 0:
                continue
            strikes = min(strikes, len(running))
            # Victims are node-weighted: big jobs absorb more failures.
            weights = np.array([entry.nodes for entry in running], dtype=float)
            victims = self.rng.choice(
                len(running), size=strikes, replace=False,
                p=weights / weights.sum(),
            )
            # Interrupts are deferred (URGENT events), so killing several
            # victims in one pass is safe; sorted order keeps the event
            # sequence independent of choice()'s internal permutation.
            for index in np.sort(victims):
                running[int(index)].runner.interrupt("node_failure")
                self.failures_injected += 1
