"""Scheduled maintenance outages.

Production machines take periodic preventive-maintenance (PM) windows — a
full-machine reservation nobody may use.  Because the reservation is laid
down in advance, the scheduler drains toward it naturally (no job whose
walltime crosses the window is started), exactly like real PM drains.
"""

from __future__ import annotations

from repro.infra.scheduler.base import BatchScheduler, Reservation
from repro.infra.units import DAY, WEEK
from repro.sim import Simulator

__all__ = ["MaintenanceSchedule"]


class MaintenanceSchedule:
    """Recurring full-machine PM windows on one scheduler.

    ``period`` between window starts, ``duration`` of each window,
    ``first`` the start of the first window, ``lead`` how far in advance the
    reservation is announced (users see the drain coming).
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler: BatchScheduler,
        period: float = 4 * WEEK,
        duration: float = 8 * 3600.0,
        first: float = 2 * WEEK,
        lead: float = 3 * DAY,
    ) -> None:
        if duration <= 0 or period <= 0 or duration > period:
            raise ValueError("need 0 < duration <= period")
        if lead < 0:
            raise ValueError("lead must be >= 0")
        self.sim = sim
        self.scheduler = scheduler
        self.period = period
        self.duration = duration
        self.lead = lead
        self.windows_taken = 0
        sim.process(self._cycle(sim, first), name="maintenance")

    def _cycle(self, sim: Simulator, first: float):
        next_start = first
        while True:
            announce_at = max(next_start - self.lead, sim.now)
            if announce_at > sim.now:
                yield sim.timeout(announce_at - sim.now)
            self.scheduler.add_reservation(
                Reservation(
                    start=next_start,
                    end=next_start + self.duration,
                    nodes=self.scheduler.cluster.nodes,
                    access=None,  # nobody runs during PM
                    label=f"maintenance-{self.windows_taken + 1}",
                )
            )
            self.windows_taken += 1
            yield sim.timeout(next_start + self.duration - sim.now)
            next_start += self.period
