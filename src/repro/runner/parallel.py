"""The fault-tolerant parallel runner: plan tasks, fan out, survive, merge.

Determinism contract: for a fixed experiment list and knobs, the merged
outputs are byte-identical at any ``jobs`` value.  Three properties deliver
it — every task carries its own seed (no shared RNG state), workers compute
pure partials (no global mutation crosses back), and merging consumes
partials strictly in task-index order (never completion order).

Fault-tolerance contract (the reason this module looks the way it does):

* **Transient failures are invisible in the output.**  A killed worker
  (``BrokenProcessPool``), a task that blew its wall-clock limit, or a
  wedged pool is retried under a :class:`~repro.runner.retry.RetryPolicy`
  (bounded attempts, exponential backoff, deterministic jitter).  When the
  retries are exhausted, the task gets one final *degraded* attempt inline
  in this process — so infrastructure trouble can slow a sweep down but
  never change its bytes.
* **Task exceptions are contained, never retried.**  The task's own raise
  is deterministic; it is recorded as a structured
  :class:`~repro.runner.retry.TaskFailure` and the experiment it belongs to
  renders a failure report instead of a merged table.  The sweep — and the
  CLI — always finish.
* **Pools are cattle.**  A dead pool is torn down (workers killed) and a
  fresh one built; after ``max_pool_deaths`` deaths the runner stops
  trusting pools entirely and finishes the sweep serially in-process.
* **Progress is durable.**  With a :class:`~repro.runner.journal.RunJournal`
  attached, every task start/completion/failure is fsynced to
  ``runs/<run-id>/journal.jsonl``; ``run-all --resume <run-id>`` skips
  recorded completions (values come from the result cache) and re-runs
  only pending or failed tasks.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict
from typing import Iterable, Optional, Sequence

from repro.experiments.base import (
    CAMPAIGN_STAGE_ID,
    ExperimentOutput,
    ExperimentTask,
    execute_task,
    merge_tasks,
    plan_tasks,
    plan_timeout,
    task_campaign_keys,
)
from repro.runner.artifacts import (
    ArtifactStore,
    activated_store,
    record_metrics,
    stats_delta,
    stats_snapshot,
)
from repro.runner.cache import CacheStats, ResultCache
from repro.runner.journal import RunJournal, task_key
from repro.runner.retry import (
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    RetryPolicy,
    TaskFailure,
    TaskTimeout,
    wall_clock_limit,
)
from repro.runner.worker import (
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    WorkerSpec,
    run_task_hardened,
)

__all__ = ["ParallelRunner", "resolve_jobs"]

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Pool deaths tolerated before permanently degrading to serial execution.
MAX_POOL_DEATHS = 5


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit value > ``REPRO_JOBS`` env > ``os.cpu_count()``; minimum 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


class ParallelRunner:
    """Run experiments as task fan-outs with caching and fault tolerance.

    ``jobs=1`` executes inline in this process (sharing the in-process
    campaign memo exactly like the classic serial path); ``jobs>1`` uses a
    :class:`~concurrent.futures.ProcessPoolExecutor` with crash containment.
    ``cache=None`` with ``use_cache=True`` builds the default on-disk cache;
    ``use_cache=False`` disables caching entirely.

    ``task_timeout`` is the default wall-clock limit per task (seconds);
    an experiment's :func:`~repro.experiments.base.register_tasks` override
    wins where declared.  ``retry`` bounds transient-failure retries;
    ``journal``/``resume_keys`` wire up durable progress (see module
    docstring).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        task_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        resume_keys: Iterable[str] = (),
        max_pool_deaths: int = MAX_POOL_DEATHS,
        artifacts: Optional[ArtifactStore] = None,
        telemetry=None,
        trace_sim: bool = False,
        shards: Optional[int] = None,
    ) -> None:
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.jobs = resolve_jobs(jobs)
        #: scale tier: resolve campaigns as population cells merged
        #: deterministically; ``shards`` bounds how many stage-1 tasks one
        #: campaign's cells are grouped into (None = legacy whole-campaign
        #: simulation).  An execution knob like ``jobs`` — never part of a
        #: campaign's identity.
        self.shards = int(shards) if shards is not None else None
        self.cache: Optional[ResultCache] = (
            cache if cache is not None else (ResultCache() if use_cache else None)
        )
        self.task_timeout = task_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        self.resume_keys = frozenset(resume_keys)
        self.max_pool_deaths = max(1, int(max_pool_deaths))
        #: campaign artifact store; None disables the two-stage task DAG
        self.artifacts = artifacts
        #: wall-domain recorder (repro.obs.telemetry.Telemetry, duck-typed);
        #: strictly off the report path — None disables every hook
        self.telemetry = telemetry
        #: trace each task's simulations (inline or in workers) and record
        #: the deterministic sim-domain summary per task in the sidecar
        self.trace_sim = bool(trace_sim) and telemetry is not None
        if self.telemetry is not None and self.cache is not None:
            # Re-home the cache counters onto the run-wide registry so the
            # sidecar's metrics snapshot includes ``cache.*`` (any values
            # already accumulated carry over).
            stats = self.cache.stats
            self.cache.stats = CacheStats(
                hits=stats.hits,
                misses=stats.misses,
                writes=stats.writes,
                quarantined=stats.quarantined,
                metrics=self.telemetry.metrics,
            )
        # -- per-runner telemetry (surfaced on stderr by the CLI) --
        self.failures: list[TaskFailure] = []
        self.degraded_tasks: list[str] = []
        self.pool_deaths = 0
        self.retries = 0
        self.resume_skipped = 0
        #: stage-1 failures (never fatal: measurement tasks fall back to
        #: live simulation, so these are logged, not merged into failures)
        self.campaign_failures: list[TaskFailure] = []
        #: campaign dedup counters: distinct keys planned, simulated this
        #: run, reused (artifact or memo), plus fallback simulations and
        #: artifact load telemetry aggregated across worker processes
        self.campaign_stats: dict = {
            "distinct": 0, "simulated": 0, "reused": 0,
            "fallbacks": 0, "loads": 0, "load_seconds": 0.0,
        }
        #: wall-clock per phase of the latest run_many (stderr-only data)
        self.stage_seconds: dict[str, float] = {}

    # -- public API ----------------------------------------------------------
    def run(self, experiment_id: str, **knobs) -> ExperimentOutput:
        """Run one experiment (its tasks still fan out across workers)."""
        return self.run_many([(experiment_id, knobs)])[0]

    def run_many(
        self, requests: Sequence[tuple[str, dict]]
    ) -> list[ExperimentOutput]:
        """Run ``[(experiment_id, knobs), ...]``; outputs in request order.

        Experiments whose tasks recorded a :class:`TaskFailure` render a
        failure report in place of their merged output — one broken
        experiment never aborts the rest of the sweep.

        With an :class:`ArtifactStore` attached, execution is a two-stage
        DAG: the distinct campaigns the planned tasks depend on are
        simulated exactly once each (stage 1, parallel across campaigns),
        then the measurement tasks fan out over the stored artifacts
        (stage 2).  The store stays active in this process too, so inline
        and degraded executions resolve campaigns identically to workers.
        """
        from repro.workloads import sharding

        stats_before = stats_snapshot()
        with activated_store(self.artifacts), sharding.sharded(self.shards):
            started = time.monotonic()
            wall_started = time.time()
            plans: list[list[ExperimentTask]] = [
                plan_tasks(experiment_id, **knobs)
                for experiment_id, knobs in requests
            ]
            self.stage_seconds["plan"] = time.monotonic() - started
            self._tel_span(
                "stage:plan", wall_started, self.stage_seconds["plan"],
                tasks=sum(len(tasks) for tasks in plans),
            )
            all_tasks = [task for tasks in plans for task in tasks]
            partials = self._execute(all_tasks)
        self._absorb_artifact_stats(stats_delta(stats_before))
        if self.telemetry is not None:
            self.telemetry.finish(self)

        outputs = []
        cursor = 0
        for (experiment_id, knobs), tasks in zip(requests, plans):
            chunk = partials[cursor : cursor + len(tasks)]
            cursor += len(tasks)
            if any(isinstance(partial, TaskFailure) for partial in chunk):
                outputs.append(self._failure_output(experiment_id, chunk))
            else:
                outputs.append(merge_tasks(experiment_id, chunk, **knobs))
        return outputs

    @property
    def cache_stats(self):
        return self.cache.stats if self.cache is not None else None

    # -- execution -----------------------------------------------------------
    def _execute(self, tasks: Iterable[ExperimentTask]) -> list:
        tasks = list(tasks)
        sink: dict[int, object] = {}
        pending: list[tuple[int, ExperimentTask]] = []
        for position, task in enumerate(tasks):
            key = self._key(task)
            if self.cache is not None:
                hit, value = self.cache.get(
                    task.experiment_id, self._cache_params(task), task.seed
                )
                if hit:
                    sink[position] = value
                    resumed = key in self.resume_keys
                    if resumed:
                        self.resume_skipped += 1
                    self._tel_event(
                        "cache-hit", key=key,
                        experiment=task.experiment_id, resumed=resumed,
                    )
                    self._tel_count("runner.cache_hits")
                    self._journal(
                        "task-completed", task, key,
                        attempts=0, cached=True, resumed=resumed,
                    )
                    continue
            pending.append((position, task))

        if pending and self.artifacts is not None:
            started = time.monotonic()
            wall_started = time.time()
            self._campaign_stage(pending)
            self.stage_seconds["campaign"] = time.monotonic() - started
            self._tel_span(
                "stage:campaign", wall_started, self.stage_seconds["campaign"]
            )

        if pending:
            started = time.monotonic()
            wall_started = time.time()
            if self.jobs == 1:
                for position, task in pending:
                    self._run_inline(position, task, sink)
            else:
                self._run_pool(pending, sink)
            self.stage_seconds["measure"] = time.monotonic() - started
            self._tel_span(
                "stage:measure", wall_started, self.stage_seconds["measure"],
                tasks=len(pending),
            )
        return [sink[position] for position in range(len(tasks))]

    # -- stage 1: the campaign tasks ------------------------------------------
    def _campaign_stage(self, pending: Sequence[tuple[int, ExperimentTask]]) -> None:
        """Simulate each distinct campaign the pending tasks need, once.

        The distinct :class:`CampaignKey` set comes from the experiments'
        :func:`~repro.experiments.base.register_campaigns` declarations.
        Keys whose artifact already exists are *reused*; the rest become
        synthetic ``__campaign__`` tasks run through the same
        inline/pool/retry machinery as any other task (parallel across
        campaigns).  Stage-1 failures are contained separately — a
        measurement task whose campaign is missing falls back to a live
        simulation in its own worker, so stage 1 can only cost time, never
        change bytes.
        """
        keys: list = []
        for _position, task in pending:
            for key in task_campaign_keys(task):
                if key not in keys:
                    keys.append(key)
        if not keys:
            return
        self.campaign_stats["distinct"] += len(keys)

        todo = []
        for key in keys:
            if self._campaign_ready(key):
                self.campaign_stats["reused"] += 1
                self._tel_event("campaign-dedup", campaign=key.asdict())
                self._tel_count("runner.campaigns_reused")
            else:
                todo.append(key)
        if not todo:
            return

        if self.shards is None:
            stage_tasks = [
                ExperimentTask(
                    experiment_id=CAMPAIGN_STAGE_ID,
                    index=index,
                    params={CAMPAIGN_STAGE_ID: key.asdict()},
                    seed=key.seed,
                )
                for index, key in enumerate(todo)
            ]
        else:
            # Scale tier: each campaign expands into min(shards, cells)
            # stage-1 tasks; group g simulates cells g, g+groups, ... into
            # their per-cell artifacts.  Task seeds are the spawn-derived
            # per-shard seeds, so worker dispatch identity is stable no
            # matter how the pool schedules the groups.
            from repro.workloads import sharding

            stage_tasks = []
            for key in todo:
                cells = sharding.cell_count(key.population_scale)
                groups = min(self.shards, cells)
                for group in range(groups):
                    stage_tasks.append(
                        ExperimentTask(
                            experiment_id=CAMPAIGN_STAGE_ID,
                            index=len(stage_tasks),
                            params={
                                CAMPAIGN_STAGE_ID: key.asdict(),
                                "__shard_group__": (group, groups),
                            },
                            seed=sharding.CellKey.for_cell(key, group, cells).seed,
                        )
                    )
        stage_sink: dict[int, object] = {}
        failures_before = len(self.failures)
        entries = list(enumerate(stage_tasks))
        if self.jobs == 1:
            for position, task in entries:
                self._run_inline(position, task, stage_sink)
        else:
            self._run_pool(entries, stage_sink)
        # Stage-1 failures are advisory (fallback keeps the sweep correct).
        self.campaign_failures.extend(self.failures[failures_before:])
        del self.failures[failures_before:]
        if self.shards is None:
            for value in stage_sink.values():
                if isinstance(value, dict) and value.get("simulated"):
                    self.campaign_stats["simulated"] += 1
                    self._tel_count("runner.campaigns_simulated")
                elif isinstance(value, dict):
                    self.campaign_stats["reused"] += 1
                    self._tel_count("runner.campaigns_reused")
        else:
            # A campaign counts as simulated if any of its group tasks
            # simulated at least one cell; fully-present campaigns were
            # filtered above, so the remainder here are reuses.
            seen: dict[tuple, bool] = {}
            for value in stage_sink.values():
                if not isinstance(value, dict):
                    continue
                tag = tuple(sorted(value["campaign"].items()))
                seen[tag] = seen.get(tag, False) or bool(value.get("simulated"))
            for simulated in seen.values():
                if simulated:
                    self.campaign_stats["simulated"] += 1
                    self._tel_count("runner.campaigns_simulated")
                else:
                    self.campaign_stats["reused"] += 1
                    self._tel_count("runner.campaigns_reused")

    def _campaign_ready(self, key) -> bool:
        """Whether stage 1 has nothing left to do for ``key``."""
        if self.shards is None:
            return self.artifacts.has(key)
        from repro.workloads import sharding

        cells = sharding.cell_count(key.population_scale)
        return all(
            self.artifacts.has(sharding.CellKey.for_cell(key, cell, cells))
            for cell in range(cells)
        )

    # -- inline (jobs=1) path -------------------------------------------------
    def _run_inline(self, position: int, task: ExperimentTask, sink: dict) -> None:
        """Serial execution with the same containment guarantees as the pool.

        Worker crashes cannot happen here; timeouts are enforced with the
        shared alarm-based limit and retried under the policy (wall-clock
        overruns can be environmental), task exceptions are recorded.
        """
        key = self._key(task)
        timeout = self._timeout_for(task)
        attempt = 0
        while True:
            attempt += 1
            self._journal("task-started", task, key, attempt=attempt, mode="inline")
            wall_started = time.time()
            try:
                with wall_clock_limit(timeout):
                    value = self._execute_traced(task, key)
            except TaskTimeout as exc:
                self._tel_event(
                    "timeout", key=key, attempt=attempt, mode="inline"
                )
                if self.retry.should_retry(FAILURE_TIMEOUT, attempt):
                    self.retries += 1
                    self._tel_event(
                        "retry", key=key, kind=FAILURE_TIMEOUT, attempt=attempt
                    )
                    self._tel_count("runner.retries")
                    time.sleep(self.retry.delay(key, attempt))
                    continue
                value = self._failure(task, FAILURE_TIMEOUT, attempt, message=str(exc))
            except Exception as exc:
                value = self._failure(
                    task, FAILURE_EXCEPTION, attempt,
                    error_type=type(exc).__name__, message=str(exc),
                )
            self._tel_span(
                "task", wall_started, time.time() - wall_started,
                key=key, experiment=task.experiment_id, mode="inline",
                attempt=attempt,
                status="failed" if isinstance(value, TaskFailure) else "ok",
            )
            self._complete(position, task, key, value, attempts=attempt, sink=sink)
            return

    def _execute_traced(self, task: ExperimentTask, key: str):
        """Execute in-process, recording the sim slice when tracing is on.

        Mirrors the worker-side ``trace_sim`` path: a fresh tracer per
        execution, and only completed executions report (a partial trace
        from a timeout would not be seed-stable).
        """
        if not self.trace_sim:
            return execute_task(task)
        from repro.obs.trace import traced_simulation

        with traced_simulation() as tracer:
            value = execute_task(task)
        self._tel_sim_summary(key, tracer.sim_summary())
        return value

    # -- pool path -------------------------------------------------------------
    def _run_pool(
        self, pending: Sequence[tuple[int, ExperimentTask]], sink: dict
    ) -> None:
        queue: deque[tuple[int, ExperimentTask, int]] = deque(
            (position, task, 1) for position, task in pending
        )
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while queue:
                if self.pool_deaths >= self.max_pool_deaths:
                    # The pool machinery has proven itself untrustworthy on
                    # this host; finish the sweep serially in-process.
                    while queue:
                        position, task, attempt = queue.popleft()
                        self._degrade(position, task, attempt, sink)
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
                requeue = self._run_round(pool, queue, sink)
                if self._pool_broken:
                    self._kill_pool(pool)
                    pool = None
                    self.pool_deaths += 1
                    self._tel_event("pool-death", count=self.pool_deaths)
                    self._tel_count("runner.pool_deaths")
                if requeue:
                    self.retries += len(requeue)
                    # One deterministic backoff per round: the longest of the
                    # requeued tasks' jittered delays.
                    time.sleep(
                        max(
                            self.retry.delay(self._key(task), attempt)
                            for _position, task, attempt in requeue
                        )
                    )
                    queue.extend(
                        (position, task, attempt + 1)
                        for position, task, attempt in requeue
                    )
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _run_round(
        self,
        pool: ProcessPoolExecutor,
        queue: deque,
        sink: dict,
    ) -> list[tuple[int, ExperimentTask, int]]:
        """Submit everything queued; collect until done or the pool breaks.

        Returns the transient failures to retry.  Sets ``self._pool_broken``
        when the pool must be killed and rebuilt.
        """
        self._pool_broken = False
        batch = list(queue)
        queue.clear()
        future_map = {}
        requeue: list[tuple[int, ExperimentTask, int]] = []
        for batch_index, (position, task, attempt) in enumerate(batch):
            key = self._key(task)
            self._journal("task-started", task, key, attempt=attempt, mode="pool")
            spec = WorkerSpec(
                task=task,
                timeout=self._timeout_for(task),
                attempt=attempt,
                task_key=key,
                artifact_dir=(
                    str(self.artifacts.root)
                    if self.artifacts is not None
                    else None
                ),
                trace_sim=self.trace_sim,
                shards=self.shards,
            )
            try:
                future = pool.submit(run_task_hardened, spec)
            except Exception as exc:
                # A worker can die *while the batch is being submitted*, at
                # which point submit itself raises BrokenProcessPool.  Treat
                # the unsubmitted remainder as crash victims; the futures
                # already in flight surface the same breakage below.
                self._pool_broken = True
                self._note_transient(
                    batch[batch_index:], requeue, sink, FAILURE_WORKER_CRASH,
                    f"worker pool broke during submission: "
                    f"{type(exc).__name__}: {exc}",
                )
                break
            future_map[future] = (position, task, attempt)

        outstanding = set(future_map)
        while outstanding:
            done, _not_done = wait(
                outstanding,
                timeout=self._watchdog(future_map, outstanding),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Driver-side watchdog: nothing finished in far longer than
                # any task limit — a worker is wedged beyond SIGALRM's reach
                # (stuck C code).  Kill the pool; retry everything in flight.
                self._pool_broken = True
                self._note_transient(
                    (future_map[f] for f in outstanding),
                    requeue, sink, FAILURE_TIMEOUT,
                    "pool watchdog expired (wedged worker)",
                )
                return requeue
            for future in done:
                outstanding.discard(future)
                position, task, attempt = future_map[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # includes BrokenProcessPool
                    # A raising future is always infrastructure damage (task
                    # exceptions come back *inside* a WorkerOutcome): every
                    # future still in flight on this pool is suspect too.
                    self._pool_broken = True
                    victims = [(position, task, attempt)] + [
                        future_map[f] for f in outstanding
                    ]
                    self._note_transient(
                        victims, requeue, sink, FAILURE_WORKER_CRASH,
                        f"worker pool broke: {type(exc).__name__}: {exc}",
                    )
                    return requeue
                self._absorb_outcome(
                    position, task, attempt, outcome, requeue, sink
                )
        return requeue

    def _absorb_outcome(
        self, position, task, attempt, outcome, requeue, sink
    ) -> None:
        key = self._key(task)
        self._absorb_artifact_stats(getattr(outcome, "artifact_stats", None))
        if getattr(outcome, "started_at", 0.0):
            self._tel_span(
                "task", outcome.started_at, outcome.elapsed,
                key=key, experiment=task.experiment_id, mode="pool",
                attempt=attempt, status=outcome.status,
            )
        if outcome.status == OUTCOME_OK:
            self._tel_sim_summary(key, getattr(outcome, "sim_summary", None))
            self._complete(position, task, key, outcome.value,
                           attempts=attempt, sink=sink)
        elif outcome.status == OUTCOME_TIMEOUT:
            self._note_transient(
                [(position, task, attempt)], requeue, sink,
                FAILURE_TIMEOUT, outcome.message,
            )
        else:  # the task's own exception: contained, never retried
            value = self._failure(
                task, FAILURE_EXCEPTION, attempt,
                error_type=outcome.error_type, message=outcome.message,
            )
            self._complete(position, task, key, value, attempts=attempt, sink=sink)

    def _note_transient(self, entries, requeue, sink, kind, message) -> None:
        """Route transient failures: retry if budget remains, else degrade."""
        for position, task, attempt in entries:
            if kind == FAILURE_TIMEOUT:
                self._tel_event(
                    "timeout", key=self._key(task), attempt=attempt, mode="pool"
                )
            if self.retry.should_retry(kind, attempt):
                self._tel_event(
                    "retry", key=self._key(task), kind=kind, attempt=attempt
                )
                self._tel_count("runner.retries")
                requeue.append((position, task, attempt))
            else:
                self._degrade(
                    position, task, attempt + 1, sink, kind=kind, message=message
                )

    def _degrade(
        self, position, task, attempt, sink, kind=None, message=""
    ) -> None:
        """Last resort: run the task inline, immune to worker trouble.

        Chaos kill/hang injections are gated to child processes, and a
        worker crash cannot take this process down — so degraded execution
        completes the sweep with byte-identical results whenever the task
        itself is healthy.  Only a genuine in-task raise or an inline
        timeout still produces a :class:`TaskFailure`.
        """
        key = self._key(task)
        self.degraded_tasks.append(key)
        self._tel_event("degraded", key=key, kind=kind or "", attempt=attempt)
        self._tel_count("runner.degraded")
        self._journal("task-started", task, key, attempt=attempt, mode="degraded")
        wall_started = time.time()
        try:
            with wall_clock_limit(self._timeout_for(task)):
                value = self._execute_traced(task, key)
        except TaskTimeout as exc:
            value = self._failure(task, FAILURE_TIMEOUT, attempt, message=str(exc))
        except Exception as exc:
            value = self._failure(
                task, FAILURE_EXCEPTION, attempt,
                error_type=type(exc).__name__, message=str(exc),
            )
        self._tel_span(
            "task", wall_started, time.time() - wall_started,
            key=key, experiment=task.experiment_id, mode="degraded",
            attempt=attempt,
            status="failed" if isinstance(value, TaskFailure) else "ok",
        )
        self._complete(
            position, task, key, value, attempts=attempt, sink=sink, degraded=True
        )

    # -- shared bookkeeping -----------------------------------------------------
    def _complete(
        self, position, task, key, value, attempts, sink, degraded=False
    ) -> None:
        """Record one task's final value (result or failure) everywhere.

        Runs at completion time — not at sweep end — so the cache and the
        journal always reflect finished work even if this process is
        SIGKILLed a moment later; that is what makes ``--resume`` re-run
        only incomplete tasks.
        """
        sink[position] = value
        self._tel_count("runner.tasks_completed")
        if isinstance(value, TaskFailure):
            self.failures.append(value)
            self._tel_count("runner.tasks_failed")
            self._journal(
                "task-failed", task, key,
                attempts=attempts, kind=value.kind,
                error_type=value.error_type, message=value.message,
                degraded=degraded,
            )
            return
        if self.cache is not None and task.experiment_id != CAMPAIGN_STAGE_ID:
            # Campaign tasks persist through the artifact store, not the
            # result cache — caching their marker dict would mask the
            # store-miss signal a resumed run relies on.
            self.cache.put(
                task.experiment_id, self._cache_params(task), task.seed, value
            )
        self._journal(
            "task-completed", task, key,
            attempts=attempts, cached=False, resumed=False, degraded=degraded,
        )

    def _failure(
        self, task, kind, attempts, error_type="", message=""
    ) -> TaskFailure:
        return TaskFailure(
            experiment_id=task.experiment_id,
            index=task.index,
            seed=task.seed,
            kind=kind,
            error_type=error_type,
            message=message,
            attempts=attempts,
        )

    def _failure_output(self, experiment_id, partials) -> ExperimentOutput:
        failures = [p for p in partials if isinstance(p, TaskFailure)]
        lines = [
            f"!! {len(failures)} of {len(partials)} task(s) failed; "
            "output unavailable"
        ]
        lines += [f"   {failure.describe()}" for failure in failures]
        return ExperimentOutput(
            experiment_id=experiment_id,
            title="FAILED",
            text="\n".join(lines),
            data={"failures": [asdict(failure) for failure in failures]},
        )

    def _absorb_artifact_stats(self, delta: Optional[dict]) -> None:
        """Fold one process's artifact-store counter delta into telemetry.

        Driver-side activity (inline/degraded executions) arrives as one
        delta at the end of ``run_many``; every pool execution sends its
        own delta back inside the :class:`WorkerOutcome`.
        """
        if not delta:
            return
        self.campaign_stats["fallbacks"] += delta.get("fallbacks", 0)
        self.campaign_stats["loads"] += delta.get("loads", 0)
        self.campaign_stats["load_seconds"] += delta.get("load_seconds", 0.0)
        if self.telemetry is not None:
            record_metrics(self.telemetry.metrics, delta)

    # -- telemetry hooks (no-ops without a recorder attached) -------------------
    def _tel_event(self, name: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.event(name, **fields)

    def _tel_span(self, name: str, start: float, duration: float, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.add_span(name, start, duration, **fields)

    def _tel_count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    def _tel_sim_summary(self, key: str, summary: Optional[dict]) -> None:
        if self.telemetry is not None and summary:
            self.telemetry.add_task_sim_summary(key, summary)

    def _cache_params(self, task: ExperimentTask) -> dict:
        """Task params as cached/journaled — tagged with the campaign mode.

        Sharded and legacy resolutions of the same campaign agree on every
        report byte at canonical scale but *not* on the absolute ids inside
        larger campaigns, so their task results must never share cache
        entries.  The tag is the mode, not the shard count: results are
        shard-count-invariant by construction.
        """
        if self.shards is None:
            return task.params
        return {**task.params, "__campaign_mode__": "cells"}

    def _key(self, task: ExperimentTask) -> str:
        return task_key(task.experiment_id, self._cache_params(task), task.seed)

    def _timeout_for(self, task: ExperimentTask) -> Optional[float]:
        declared = plan_timeout(task.experiment_id)
        return declared if declared is not None else self.task_timeout

    def _watchdog(self, future_map, outstanding) -> Optional[float]:
        """Driver-side guard: how long to wait for *any* completion.

        Generously above the largest worker-side limit in flight, so it only
        fires when SIGALRM could not interrupt the task.  ``None`` (wait
        forever) when no task in flight has a limit.
        """
        limits = [
            self._timeout_for(future_map[future][1]) for future in outstanding
        ]
        if any(limit is None for limit in limits) or not limits:
            return None
        longest = max(limits)
        return longest + max(15.0, 0.5 * longest)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a broken/wedged pool: SIGKILL workers, then shut down."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already-dead races
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _journal(self, event: str, task: ExperimentTask, key: str, **fields) -> None:
        if self.journal is None:
            return
        if task.experiment_id == CAMPAIGN_STAGE_ID:
            # Campaign pseudo-tasks are not journaled: their durable record
            # is the artifact itself (resume re-skips via ``store.has``),
            # and journal completions must mean "servable from the result
            # cache" for the resume skip-set to stay truthful.
            return
        self.journal.record(
            event,
            key=key,
            experiment_id=task.experiment_id,
            index=task.index,
            seed=task.seed,
            **fields,
        )
