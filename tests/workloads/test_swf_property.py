"""Property-based SWF round-trip tests over generated records."""

import io

from hypothesis import given, settings, strategies as st

from repro.workloads import records_to_swf, swf_to_records
from tests.strategies import usage_records


@settings(max_examples=60, deadline=None)
@given(st.lists(usage_records(), min_size=1, max_size=25,
                unique_by=lambda r: r.job_id))
def test_swf_round_trip_property(records):
    """Property: SWF round trip preserves identity, shape and attributes."""
    buffer = io.StringIO()
    assert records_to_swf(records, buffer) == len(records)
    buffer.seek(0)
    parsed = {r.job_id: r for r in swf_to_records(buffer)}
    assert set(parsed) == {r.job_id for r in records}
    for record in records:
        got = parsed[record.job_id]
        assert got.user == record.user
        assert got.resource == record.resource
        assert got.cores == record.cores
        assert got.attributes == record.attributes
        assert abs(got.submit_time - record.submit_time) <= 1.0
        if record.ran:
            assert got.ran
            assert abs(got.elapsed - record.elapsed) <= 1.5
        else:
            assert not got.ran
