"""Tests for the report generator's registry coverage."""

import io

import pytest

from repro.experiments import registry
from repro.experiments.reporting import FAST_KNOBS, _ORDER, generate_report


def test_order_covers_registry_exactly():
    assert set(_ORDER) == set(registry)


def test_fast_knobs_cover_registry():
    # Every experiment has a fast configuration (or deliberately none).
    missing = set(registry) - set(FAST_KNOBS)
    assert not missing, f"experiments without fast knobs: {missing}"


def test_generate_report_unknown_id_raises():
    with pytest.raises(KeyError):
        generate_report(out=io.StringIO(), only=["nope"])


def test_generate_report_writes_output():
    buffer = io.StringIO()
    outputs = generate_report(buffer, fast=True, only=["A2"])
    assert len(outputs) == 1
    assert "A2" in buffer.getvalue()
