"""Bench T8: regenerate the access-path mix table."""


def test_t8_access_paths(regenerate):
    output = regenerate("T8")
    gateway = output.data["gateway"]
    batch = output.data["batch"]
    ensemble = output.data["ensemble"]
    # Gateway jobs arrive only through portals; batch splits login/GRAM.
    assert gateway["gateway"] == gateway["total"] > 0
    assert batch["login"] > batch["gram"] > 0
    assert batch["gateway"] == 0
    # Workflow-engine ensembles show up as middleware-mediated submission.
    assert ensemble["engine/other"] > 0
