"""Bench T4: regenerate the per-site modality breakdown."""

from repro.core.modalities import Modality


def test_t4_site_breakdown(regenerate):
    output = regenerate("T4")
    sites = output.data
    assert len(sites) >= 3
    for site, split in sites.items():
        total = sum(split.values())
        assert total > 0
        # Every site is batch-dominated.
        assert split[Modality.BATCH.value] / total > 0.5
