"""A resource provider: cluster + scheduler + charging + record emission.

:class:`ResourceProvider` is the unit of federation.  It owns a cluster and a
batch scheduler, charges each terminal job's allocation in normalized units,
and publishes one usage record per terminal job through its AMIE feed to the
central accounting database.
"""

from __future__ import annotations

from typing import Callable, Optional, Type

from repro.infra.accounting import AmieFeed, CentralAccountingDB, UsageRecord
from repro.infra.allocations import AllocationLedger
from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.queues import QueueSet, default_queues
from repro.infra.scheduler.base import BatchScheduler
from repro.infra.scheduler.backfill import EasyBackfillScheduler
from repro.infra.units import HOUR, nu_charge
from repro.sim import Simulator

__all__ = ["ResourceProvider", "SiteDownError"]


class SiteDownError(RuntimeError):
    """Submission rejected because the site is in an unplanned outage."""


class ResourceProvider:
    """One TeraGrid site.

    Parameters
    ----------
    sim, cluster
        The simulator and the machine description.
    ledger
        Shared allocation ledger (charging target).
    central
        Shared central accounting database; records flow there through an
        AMIE-style batched feed.
    scheduler_factory
        Policy class, constructed as ``factory(sim, cluster, on_job_end=...)``.
    amie_interval
        Batching interval of the accounting feed.
    feed_factory
        Optional replacement feed constructor, called as ``factory(sim)``.
        Scenario assembly uses it to splice in a
        :class:`~repro.infra.amie.ResilientAmieFeed` when a packet-fault
        regime is active; the default (None) builds the plain lossless
        :class:`AmieFeed`, byte-identical to historical behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        ledger: AllocationLedger,
        central: CentralAccountingDB,
        scheduler_factory: Type[BatchScheduler] | Callable[..., BatchScheduler] = EasyBackfillScheduler,
        amie_interval: float = 6 * HOUR,
        queues: Optional[QueueSet] = None,
        feed_factory: Optional[Callable[[Simulator], AmieFeed]] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.ledger = ledger
        self.queues = queues if queues is not None else default_queues(cluster)
        if feed_factory is not None:
            self.feed = feed_factory(sim)
        else:
            self.feed = AmieFeed(sim, central, interval=amie_interval)
        self.scheduler = scheduler_factory(sim, cluster, on_job_end=self._on_job_end)
        self.records_emitted = 0
        #: unplanned-outage state (see :mod:`repro.infra.resilience`)
        self.up = True
        self.down_since: float | None = None
        self.outages = 0
        self.jobs_lost_to_outages = 0
        self._up_event = None

    @property
    def name(self) -> str:
        return self.cluster.name

    # -- job intake -----------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Route the job to a queue and submit it to the batch scheduler."""
        if not self.up:
            raise SiteDownError(
                f"{self.name} is down; job {job.job_id} rejected"
            )
        if job.account not in self.ledger:
            raise KeyError(
                f"job {job.job_id} charges unknown account {job.account!r}"
            )
        if job.user not in self.ledger.get(job.account).users:
            raise PermissionError(
                f"user {job.user!r} is not on account {job.account!r}"
            )
        return self._enqueue(job)

    def _enqueue(self, job: Job) -> Job:
        """Queue routing + scheduler submission, without the up/ACL checks.

        The metascheduler uses this to put a withdrawn job back in a
        suspended site's queue when failover finds no alternative.
        """
        queue = self.queues.route(job)
        job.queue = queue.name
        job.priority += queue.priority_boost
        return self.scheduler.submit(job)

    def withdraw(self, job: Job) -> tuple:
        """Pull a pending job back out silently (no record); see scheduler.

        Reverses the queue routing applied at submission so a later
        resubmission starts from a clean slate.  Returns the (completion,
        start) events the scheduler held for the job.
        """
        events = self.scheduler.withdraw(job)
        if job.queue is not None:
            job.priority -= self.queues.get(job.queue).priority_boost
            job.queue = None
        return events

    def cancel(self, job: Job) -> None:
        self.scheduler.cancel(job)

    # -- unplanned outages ----------------------------------------------------
    def mark_down(self) -> int:
        """Take the whole site down: kill running work, freeze the queue.

        Returns how many running jobs died.  Queued jobs survive (as a PBS
        server restart preserves its queue); submissions raise
        :class:`SiteDownError` until :meth:`mark_up`.
        """
        if not self.up:
            return 0
        self.up = False
        self.down_since = self.sim.now
        self.outages += 1
        self._up_event = self.sim.event()
        # Suspend *before* interrupting so freed nodes don't restart work
        # on a dead machine (interrupt delivery is deferred).
        self.scheduler.suspend()
        victims = list(self.scheduler.running.values())
        for entry in victims:
            entry.runner.interrupt("site_outage")
        self.jobs_lost_to_outages += len(victims)
        return len(victims)

    def mark_up(self) -> None:
        """End an outage: resume scheduling and release recovery waiters."""
        if self.up:
            return
        self.up = True
        self.down_since = None
        event, self._up_event = self._up_event, None
        self.scheduler.resume()
        if event is not None:
            event.succeed(self)

    def wait_until_up(self):
        """An event that fires when the site is (or becomes) up."""
        if self.up or self._up_event is None:
            return self.sim.timeout(0.0, value=self)
        return self._up_event

    # -- terminal-job handling ----------------------------------------------------
    def _on_job_end(self, job: Job) -> None:
        # Charge for the time actually occupied (zero if never started).
        if job.start_time is not None and job.end_time is not None:
            elapsed = job.end_time - job.start_time
            charge = nu_charge(job.cores, elapsed, self.cluster.nu_per_core_hour)
            job.charged_nu = self.ledger.charge(job.account, charge)
        else:
            job.charged_nu = 0.0
        queue_name = job.queue or ("interactive" if job.is_interactive else "normal")
        allocation = self.ledger.get(job.account)
        self.feed.publish(
            UsageRecord.from_job(
                job,
                queue_name=queue_name,
                field_of_science=allocation.field_of_science,
            )
        )
        self.records_emitted += 1

    # -- status (consumed by the information service) --------------------------------
    @property
    def available_nodes(self) -> int:
        """Nodes not blocked by an active drain (maintenance/partial outage)."""
        now = self.sim.now
        blocked = sum(
            r.nodes
            for r in self.scheduler.reservations
            if r.access is None and r.start <= now < r.end
        )
        return max(self.cluster.nodes - blocked, 0)

    def status_snapshot(self) -> dict:
        """A point-in-time description of this site's load."""
        scheduler = self.scheduler
        return {
            "resource": self.name,
            "time": self.sim.now,
            "total_nodes": self.cluster.nodes,
            "free_nodes": scheduler.free_nodes,
            "running_jobs": len(scheduler.running),
            "queued_jobs": scheduler.queue_length,
            "pending_node_seconds": scheduler.pending_node_seconds(),
            "up": self.up,
            "available_nodes": self.available_nodes,
        }
