"""Experiment plumbing: output container, registry, task plans, campaign cache.

Two execution protocols coexist:

* the classic ``run(**knobs) -> ExperimentOutput`` registry, used by
  ``run_experiment`` — every experiment supports it;
* an optional *task plan* (``register_tasks``): the experiment declares the
  independent units of work it is made of (one per replicate/sweep point),
  a pure ``execute(params)`` that computes one unit, and a deterministic
  ``merge(partials, **knobs)`` that assembles the final output.  The
  parallel runner (:mod:`repro.runner`) fans the tasks out over worker
  processes; ``plan_tasks``/``merge_tasks`` below are its only entry points
  into this module, so serial and parallel execution share one code path
  and produce byte-identical output.

Experiments without a declared plan get a synthesized single-task plan that
wraps their ``run`` function, so the runner can treat every experiment
uniformly (coarse-grained parallelism across experiments at worst).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, ScenarioResult, run_scenario

__all__ = [
    "ExperimentOutput",
    "ExperimentTask",
    "TaskPlan",
    "registry",
    "task_plans",
    "register",
    "register_tasks",
    "run_experiment",
    "run_via_tasks",
    "plan_tasks",
    "plan_timeout",
    "execute_task",
    "merge_tasks",
    "campaign",
    "CAMPAIGN_DAYS",
    "CAMPAIGN_SEED",
]

#: The canonical campaign most table experiments share (DESIGN.md §4).
CAMPAIGN_DAYS = 90.0
CAMPAIGN_SEED = 1
CAMPAIGN_SCALE = "small"
CAMPAIGN_POPULATION_SCALE = 0.05


@dataclass
class ExperimentOutput:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    text: str  # rendered tables / series blocks
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


registry: dict[str, Callable[..., ExperimentOutput]] = {}


def register(experiment_id: str):
    """Decorator: add an experiment ``run`` function to the registry."""

    def wrap(func: Callable[..., ExperimentOutput]):
        if experiment_id in registry:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        registry[experiment_id] = func
        return func

    return wrap


def run_experiment(experiment_id: str, **knobs) -> ExperimentOutput:
    try:
        func = registry[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        ) from None
    return func(**knobs)


@dataclass(frozen=True)
class ExperimentTask:
    """One independent, cacheable unit of work of an experiment.

    ``params`` must be plain picklable data (they cross the process
    boundary and are hashed into the result-cache key); ``seed`` is the
    master seed the unit simulates with, recorded separately so the cache
    key scheme ``(experiment, params-hash, seed, code-version)`` stays
    explicit even when the seed also appears inside ``params``.
    """

    experiment_id: str
    index: int
    params: dict
    seed: int


@dataclass(frozen=True)
class TaskPlan:
    """A declared decomposition of one experiment into tasks.

    ``timeout`` (wall-clock seconds per task) overrides the runner-level
    ``--task-timeout`` for this experiment's tasks — long fault-injected
    campaigns legitimately need more rope than a quick table regeneration.
    ``None`` defers to the runner's default.
    """

    plan: Callable[..., list[ExperimentTask]]
    execute: Callable[[dict], Any]
    merge: Callable[..., ExperimentOutput]
    timeout: Optional[float] = None


task_plans: dict[str, TaskPlan] = {}


def register_tasks(
    experiment_id: str,
    plan: Callable[..., list[ExperimentTask]],
    execute: Callable[[dict], Any],
    merge: Callable[..., ExperimentOutput],
    timeout: Optional[float] = None,
) -> None:
    """Declare ``experiment_id``'s task decomposition (see module docstring)."""
    if experiment_id in task_plans:
        raise ValueError(f"duplicate task plan for {experiment_id!r}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"{experiment_id}: task timeout must be positive")
    task_plans[experiment_id] = TaskPlan(
        plan=plan, execute=execute, merge=merge, timeout=timeout
    )


def plan_timeout(experiment_id: str) -> Optional[float]:
    """The experiment's declared per-task timeout override (None = defer)."""
    declared = task_plans.get(experiment_id)
    return declared.timeout if declared is not None else None


def _default_plan(experiment_id: str, **knobs) -> list[ExperimentTask]:
    """Synthesized one-task plan for experiments without a declared one."""
    # The seed field is part of the cache key; when the experiment runs on
    # its internal default seed (no knob given) any stable value works —
    # the default itself is code, covered by the code-version key part.
    seed = int(knobs.get("seed", CAMPAIGN_SEED))
    return [
        ExperimentTask(
            experiment_id=experiment_id,
            index=0,
            params=dict(knobs, __whole__=experiment_id),
            seed=seed,
        )
    ]


def plan_tasks(experiment_id: str, **knobs) -> list[ExperimentTask]:
    """The experiment's task list (declared, or the synthesized default)."""
    if experiment_id not in registry:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        )
    declared = task_plans.get(experiment_id)
    if declared is None:
        return _default_plan(experiment_id, **knobs)
    tasks = declared.plan(**knobs)
    for position, task in enumerate(tasks):
        if task.index != position or task.experiment_id != experiment_id:
            raise ValueError(
                f"{experiment_id}: task {position} declared as "
                f"({task.experiment_id!r}, index={task.index}); plans must "
                "emit their own id with contiguous indices"
            )
    return tasks


def execute_task(task: ExperimentTask) -> Any:
    """Compute one task's partial result (pure; safe in a worker process)."""
    params = dict(task.params)
    whole = params.pop("__whole__", None)
    if whole is not None:
        return registry[whole](**params)
    return task_plans[task.experiment_id].execute(params)


def merge_tasks(
    experiment_id: str, partials: list, **knobs
) -> ExperimentOutput:
    """Assemble ordered partial results into the experiment's output.

    ``partials`` must be ordered by task index; merge functions are pure in
    that order, which is what makes parallel output byte-identical to
    serial output no matter how the scheduler interleaved the tasks.
    """
    declared = task_plans.get(experiment_id)
    if declared is None:
        (output,) = partials
        return output
    return declared.merge(partials, **knobs)


def run_via_tasks(experiment_id: str, **knobs) -> ExperimentOutput:
    """Serial reference path: plan, execute in index order, merge."""
    tasks = plan_tasks(experiment_id, **knobs)
    partials = [execute_task(task) for task in tasks]
    return merge_tasks(experiment_id, partials, **knobs)


_campaign_cache: dict[tuple, ScenarioResult] = {}


def campaign(
    days: float = CAMPAIGN_DAYS,
    seed: int = CAMPAIGN_SEED,
    scale: str = CAMPAIGN_SCALE,
    population_scale: float = CAMPAIGN_POPULATION_SCALE,
    gateway_tagging_coverage: float = 1.0,
    gateway_adoption_ramp_days: float = 0.0,
) -> ScenarioResult:
    """The shared campaign, memoized per knob combination.

    Several experiments read different aspects of the same run; caching keeps
    the benchmark suite's wall-clock dominated by distinct simulations only.
    """
    key = (
        days,
        seed,
        scale,
        population_scale,
        gateway_tagging_coverage,
        gateway_adoption_ramp_days,
    )
    if key not in _campaign_cache:
        _campaign_cache[key] = run_scenario(
            ScenarioConfig(
                scale=scale,
                days=days,
                seed=seed,
                population=PopulationSpec(scale=population_scale),
                gateway_tagging_coverage=gateway_tagging_coverage,
                gateway_adoption_ramp_days=gateway_adoption_ramp_days,
            )
        )
    return _campaign_cache[key]
