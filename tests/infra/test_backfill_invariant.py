"""The EASY no-delay invariant, pinned as a property.

EASY's correctness condition: once the queue head is given a shadow
reservation, backfilled jobs must never push its actual start past that
reservation.  With reactive shadows the reservation can only move *earlier*
(early completions free nodes sooner), so the invariant is: every job starts
no later than the first shadow computed for it while it was the blocked
head.
"""

from hypothesis import given, settings, strategies as st

from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler import EasyBackfillScheduler
from repro.sim import Simulator
from tests.strategies import job_specs


class ShadowRecordingScheduler(EasyBackfillScheduler):
    """Records the first shadow laid down for each blocked head."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.first_shadow: dict[int, float] = {}

    def _shadow(self, head):
        shadow = super()._shadow(head)
        self.first_shadow.setdefault(head.job_id, shadow)
        return shadow


@settings(max_examples=40, deadline=None)
@given(
    job_specs(min_size=3, max_size=30, max_walltime=120, max_offset=50),
    st.booleans(),
)
def test_head_never_starts_after_its_first_shadow(specs, sticky):
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    scheduler = ShadowRecordingScheduler(sim, cluster, sticky_shadow=sticky)
    jobs = []

    def submit_later(sim, delay, job):
        yield sim.timeout(delay)
        scheduler.submit(job)

    for cores, walltime, fraction, offset in specs:
        job = Job(
            user="u",
            account="acct",
            cores=cores,
            walltime=float(walltime),
            true_runtime=float(walltime) * fraction,
        )
        jobs.append(job)
        sim.process(submit_later(sim, float(offset), job))
    sim.run(until=50_000.0)

    for job in jobs:
        assert job.start_time is not None, "workload must drain"
        first_shadow = scheduler.first_shadow.get(job.job_id)
        if first_shadow is not None:
            assert job.start_time <= first_shadow + 1e-6, (
                f"job {job.job_id} started at {job.start_time}, "
                f"after its first shadow {first_shadow}"
            )


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=120),
        ),
        min_size=3,
        max_size=25,
    )
)
def test_sticky_head_never_starts_before_its_lock(specs):
    """Sticky mode's defining property: the head honours its reservation."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    scheduler = ShadowRecordingScheduler(sim, cluster, sticky_shadow=True)
    jobs = []
    for i, (cores, walltime) in enumerate(specs):
        job = Job(
            user="u",
            account="acct",
            cores=cores,
            walltime=float(walltime),
            # Short true runtimes maximize the early-drain temptation.
            true_runtime=float(walltime) * 0.1,
        )
        jobs.append(job)
        scheduler.submit(job)
    sim.run(until=100_000.0)
    for job in jobs:
        locked = scheduler.first_shadow.get(job.job_id)
        if locked is not None and job.start_time is not None:
            assert job.start_time >= locked - 1e-6
