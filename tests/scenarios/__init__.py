"""Tests for the scenario DSL, library, oracle and fuzzing harness."""
