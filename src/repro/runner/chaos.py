"""Chaos injection for the experiment runner — prove the fault tolerance.

Enabled by the ``REPRO_CHAOS`` environment variable, a comma-separated list
of ``kind:probability`` entries::

    REPRO_CHAOS=kill:0.2,hang:0.1,corrupt:0.05

* ``kill`` — the worker process calls ``os._exit`` at task pickup, which
  the parent observes as a ``BrokenProcessPool`` (a real segfault's
  signature).  Only fires inside pool workers, never in the parent, so the
  CLI itself is never chaos-killed.
* ``hang`` — the worker sleeps ``REPRO_CHAOS_HANG_SECONDS`` (default 30)
  before doing the work, simulating a stuck task; with a task timeout
  configured the worker-side alarm converts it into a retryable timeout.
* ``corrupt`` — the just-written result-cache entry has bytes flipped, so
  the next read must detect the damage (checksum) and quarantine it.

Every decision is drawn from a deterministic RNG keyed by
``(REPRO_CHAOS_SEED, site key, attempt)``: the same sweep under the same
chaos spec injects the same faults, which is what lets the chaos test
suite assert *byte-identical* final reports — retries recompute exactly
what the faults destroyed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.rng import derive_seed

__all__ = ["ChaosConfig", "chaos_from_env", "CHAOS_ENV", "KILL_EXIT_CODE"]

CHAOS_ENV = "REPRO_CHAOS"
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_SECONDS"

#: Exit status of a chaos-killed worker (mimics an abnormal death; any
#: worker exit breaks a ``ProcessPoolExecutor`` regardless of status).
KILL_EXIT_CODE = 87

_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed ``REPRO_CHAOS`` spec plus derived knobs."""

    kill: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0

    @property
    def active(self) -> bool:
        return self.kill > 0 or self.hang > 0 or self.corrupt > 0

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, hang_seconds: float = 30.0
    ) -> "ChaosConfig":
        """Parse ``kind:p[,kind:p...]``; unknown kinds or bad p raise."""
        probabilities = dict.fromkeys(_KINDS, 0.0)
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            kind, _, raw = entry.partition(":")
            kind = kind.strip()
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown chaos kind {kind!r} in {CHAOS_ENV}; "
                    f"expected one of {', '.join(_KINDS)}"
                )
            try:
                probability = float(raw)
            except ValueError:
                raise ValueError(
                    f"chaos probability for {kind!r} must be a number, got {raw!r}"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"chaos probability for {kind!r} must be in [0, 1], "
                    f"got {probability}"
                )
            probabilities[kind] = probability
        return cls(seed=seed, hang_seconds=hang_seconds, **probabilities)

    # -- decisions ----------------------------------------------------------
    def _draw(self, site: str) -> float:
        """Uniform [0, 1) draw, a pure function of ``(seed, site)``."""
        return derive_seed(self.seed, f"chaos/{site}") / 2 ** 64

    def should_kill(self, task_key: str, attempt: int) -> bool:
        return self.kill > 0 and self._draw(f"kill/{task_key}/{attempt}") < self.kill

    def should_hang(self, task_key: str, attempt: int) -> bool:
        return self.hang > 0 and self._draw(f"hang/{task_key}/{attempt}") < self.hang

    def should_corrupt(self, cache_key: str, nonce: int) -> bool:
        return (
            self.corrupt > 0
            and self._draw(f"corrupt/{cache_key}/{nonce}") < self.corrupt
        )

    # -- worker-side injection ---------------------------------------------
    def pre_task(self, task_key: str, attempt: int) -> None:
        """Maybe kill or stall the current *worker* process.

        Destructive injections are gated to child processes: the in-process
        (serial / degraded) execution path must always survive chaos, which
        is exactly the graceful-degradation property the harness proves.
        """
        if not self.active or multiprocessing.parent_process() is None:
            return
        if self.should_kill(task_key, attempt):
            os._exit(KILL_EXIT_CODE)
        if self.should_hang(task_key, attempt):
            time.sleep(self.hang_seconds)


#: put() sequence numbers per cache key, so repeated writes of one key draw
#: fresh corruption decisions (process-local; chaos only).
_corrupt_nonces: dict[str, int] = {}


def maybe_corrupt_entry(config: "ChaosConfig", path: Path, cache_key: str) -> bool:
    """Flip bytes in a just-written cache entry with the configured odds."""
    if not config.corrupt:
        return False
    nonce = _corrupt_nonces.get(cache_key, 0)
    _corrupt_nonces[cache_key] = nonce + 1
    if not config.should_corrupt(cache_key, nonce):
        return False
    data = bytearray(path.read_bytes())
    if not data:
        return False
    # Damage both the header and the payload midpoint: whichever layout the
    # cache uses, a checksum must notice.
    data[0] ^= 0xFF
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    return True


def chaos_from_env(environ=os.environ) -> ChaosConfig:
    """The active chaos configuration (all-zero when ``REPRO_CHAOS`` unset)."""
    spec = environ.get(CHAOS_ENV, "")
    seed = int(environ.get(CHAOS_SEED_ENV, "0") or "0")
    hang_seconds = float(environ.get(CHAOS_HANG_ENV, "30") or "30")
    if not spec:
        return ChaosConfig(seed=seed, hang_seconds=hang_seconds)
    return ChaosConfig.parse(spec, seed=seed, hang_seconds=hang_seconds)
