"""Bench A1: regenerate the walltime-accuracy ablation."""


def test_a1_walltime_accuracy(regenerate):
    output = regenerate("A1")
    pads = list(output.data)
    utils = [output.data[p]["utilization"] for p in pads]
    waits = [output.data[p]["small_median_wait_h"] for p in pads]
    # The Mu'alem–Feitelson paradox: utilization is flat and small-job waits
    # do not grow (they typically shrink) as requests get looser.
    assert max(utils) - min(utils) < 0.05
    assert waits[-1] <= waits[0] + 0.25
