"""Science gateways: community accounts and the attribute-tagging problem.

A science gateway (nanoHUB, CIPRES, the CCSM portal, …) fronts the grid for a
large community of end users who never hold TeraGrid accounts: every job the
gateway submits runs under one *community account*.  To central accounting,
10,000 gateway users are one username — unless the gateway attaches a
*gateway user attribute* to each job, which is exactly the instrumentation
the paper argues for.

``tagging_coverage`` models partial adoption of that instrumentation: the
fraction of submitted jobs that carry the end-user attribute.  Experiment F6
sweeps it and reads the measured gateway-user count off the classifier.
"""

from __future__ import annotations

import numpy as np

from repro.infra.job import AttributeKeys, Job, SubmissionInterface
from repro.infra.site import ResourceProvider

__all__ = ["ScienceGateway"]


class ScienceGateway:
    """One gateway: a portal identity, a community account, and its users."""

    def __init__(
        self,
        name: str,
        community_user: str,
        community_account: str,
        rng: np.random.Generator,
        tagging_coverage: float = 1.0,
    ) -> None:
        if not (0.0 <= tagging_coverage <= 1.0):
            raise ValueError(
                f"tagging_coverage must be in [0, 1], got {tagging_coverage}"
            )
        self.name = name
        self.community_user = community_user
        self.community_account = community_account
        self.rng = rng
        self.tagging_coverage = tagging_coverage
        #: distinct end users who have run at least one job (ground truth)
        self.end_users_served: set[str] = set()
        self.jobs_submitted = 0
        self.jobs_tagged = 0

    def submit(
        self,
        site: ResourceProvider,
        gateway_user: str,
        cores: int,
        walltime: float,
        true_runtime: float,
        will_fail: bool = False,
        true_modality: str | None = None,
        extra_attributes: dict | None = None,
    ) -> Job:
        """Run one job on behalf of ``gateway_user`` under the community account.

        The job's accounting ``user`` is the community user; the end user is
        visible to accounting only when the tagging coin-flip succeeds.
        """
        attributes: dict = {
            AttributeKeys.SUBMIT_INTERFACE: SubmissionInterface.GATEWAY.value,
            AttributeKeys.GATEWAY_NAME: self.name,
        }
        tagged = bool(self.rng.random() < self.tagging_coverage)
        if tagged:
            attributes[AttributeKeys.GATEWAY_USER] = gateway_user
        if extra_attributes:
            attributes.update(extra_attributes)
        job = Job(
            user=self.community_user,
            account=self.community_account,
            cores=cores,
            walltime=walltime,
            true_runtime=true_runtime,
            will_fail=will_fail,
            attributes=attributes,
            true_modality=true_modality,
            true_user=gateway_user,
        )
        self.end_users_served.add(gateway_user)
        self.jobs_submitted += 1
        if tagged:
            self.jobs_tagged += 1
        site.submit(job)
        return job

    @property
    def observed_coverage(self) -> float:
        """Empirical fraction of jobs that carried the end-user attribute."""
        if self.jobs_submitted == 0:
            return 0.0
        return self.jobs_tagged / self.jobs_submitted
