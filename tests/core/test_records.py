"""Tests for identity resolution and feature extraction."""

import pytest

from repro.core.records import (
    RecordFeatures,
    build_identity_views,
    burst_membership,
    resolve_identity,
    strip_attributes,
)
from repro.infra.job import AttributeKeys, JobState


def test_identity_defaults_to_account_user(make_record):
    record = make_record(user="alice")
    assert resolve_identity(record) == "alice"


def test_identity_uses_gateway_attribute_when_present(make_record):
    record = make_record(
        user="gw_nanohub",
        attributes={
            AttributeKeys.GATEWAY_USER: "student7",
            AttributeKeys.GATEWAY_NAME: "nanohub",
        },
    )
    assert resolve_identity(record) == "nanohub:student7"
    assert resolve_identity(record, use_attributes=False) == "gw_nanohub"


def test_untagged_gateway_job_collapses_to_community_user(make_record):
    record = make_record(
        user="gw_nanohub",
        attributes={AttributeKeys.SUBMIT_INTERFACE: "gateway"},
    )
    assert resolve_identity(record) == "gw_nanohub"


def test_strip_attributes_removes_all_instrumentation(make_record):
    record = make_record(attributes={"a": 1, "b": 2})
    (bare,) = strip_attributes([record])
    assert bare.attributes == {}
    assert bare.job_id == record.job_id
    assert bare.cores == record.cores
    assert record.attributes == {"a": 1, "b": 2}  # original untouched


def test_features_basic_statistics(make_record):
    records = [
        make_record(elapsed=100.0, cores=4),
        make_record(elapsed=200.0, cores=8),
        make_record(elapsed=300.0, cores=16, state=JobState.FAILED),
        make_record(elapsed=0.0, wait=None, state=JobState.CANCELLED),
    ]
    features = RecordFeatures.from_records(records)
    assert features.n_jobs == 4
    assert features.median_elapsed == 200.0
    assert features.failure_fraction == 0.25
    assert features.cancelled_fraction == 0.25
    assert features.max_cores == 16
    assert features.resources == ("ranger",)


def test_features_reject_empty():
    with pytest.raises(ValueError):
        RecordFeatures.from_records([])


def test_interactive_fraction_counts_queue(make_record):
    records = [
        make_record(queue_name="interactive"),
        make_record(queue_name="normal"),
    ]
    features = RecordFeatures.from_records(records)
    assert features.interactive_fraction == 0.5


def test_burst_membership_flags_runs_of_similar_jobs(make_record):
    burst = [
        make_record(cores=8, submit=i * 60.0, job_id=100 + i) for i in range(6)
    ]
    loner = make_record(cores=8, submit=1e6, job_id=200)
    flags = burst_membership(burst + [loner], window=1800.0, min_size=5)
    assert flags == [True] * 6 + [False]


def test_burst_membership_breaks_on_core_change(make_record):
    records = [
        make_record(cores=8 if i < 3 else 16, submit=i * 60.0, job_id=300 + i)
        for i in range(6)
    ]
    flags = burst_membership(records, window=1800.0, min_size=5)
    assert flags == [False] * 6


def test_burst_membership_requires_submission_order(make_record):
    records = [make_record(submit=100.0, job_id=401), make_record(submit=0.0, job_id=400)]
    with pytest.raises(ValueError):
        burst_membership(records, window=1800.0, min_size=2)


def test_burst_fraction_in_features(make_record):
    burst = [
        make_record(cores=8, submit=i * 60.0, job_id=500 + i) for i in range(10)
    ]
    features = RecordFeatures.from_records(burst)
    assert features.burst_fraction == 1.0


def test_build_identity_views_groups_and_finalizes(make_record):
    records = [
        make_record(user="alice"),
        make_record(user="bob"),
        make_record(user="alice"),
        make_record(
            user="gw_x",
            attributes={
                AttributeKeys.GATEWAY_USER: "enduser",
                AttributeKeys.GATEWAY_NAME: "portal",
            },
        ),
    ]
    views = build_identity_views(records)
    assert set(views) == {"alice", "bob", "portal:enduser"}
    assert views["alice"].features.n_jobs == 2
    assert all(v.features is not None for v in views.values())


def test_build_identity_views_without_attributes(make_record):
    records = [
        make_record(
            user="gw_x",
            attributes={
                AttributeKeys.GATEWAY_USER: f"enduser{i}",
                AttributeKeys.GATEWAY_NAME: "portal",
            },
            job_id=600 + i,
        )
        for i in range(5)
    ]
    instrumented = build_identity_views(records, use_attributes=True)
    bare = build_identity_views(records, use_attributes=False)
    assert len(instrumented) == 5
    assert len(bare) == 1  # the collapse


def test_strip_attributes_keeps_field_of_science(make_record):
    import dataclasses

    record = dataclasses.replace(
        make_record(attributes={"k": "v"}), field_of_science="Chemistry"
    )
    (bare,) = strip_attributes([record])
    assert bare.field_of_science == "Chemistry"
    assert bare.attributes == {}
