"""R1 — Seed sensitivity of the headline table.

Every other experiment reports one seed; R1 re-measures T1's instrumented
user counts across independent seeds and reports the replicate spread, so
EXPERIMENTS.md can state which digits of the headline table are stable.

Shape expectation: the per-modality counts vary by at most a few users
across seeds (activity, not population, is the random part — the population
counts themselves are deterministic at fixed scale), and the dominance
ordering BATCH > EXPLORATORY > GATEWAY > ENSEMBLE > VIZ >= COUPLED holds in
every replicate.
"""

from __future__ import annotations

from repro.analysis import describe
from repro.core import AttributeClassifier
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, campaign, register

__all__ = ["run"]


@register("R1")
def run(
    days: float = 45.0,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    population_scale: float = 0.05,
) -> ExperimentOutput:
    replicates: dict[str, list[int]] = {m.value: [] for m in MODALITY_ORDER}
    orderings_ok = 0
    for seed in seeds:
        result = campaign(days=days, seed=seed, population_scale=population_scale)
        counts = AttributeClassifier().classify(result.records).users_by_modality()
        values = [counts[m] for m in MODALITY_ORDER]
        if all(a >= b for a, b in zip(values, values[1:])):
            orderings_ok += 1
        for modality in MODALITY_ORDER:
            replicates[modality.value].append(counts[modality])

    rows = []
    data = {}
    for modality in MODALITY_ORDER:
        stats = describe(replicates[modality.value])
        rows.append(
            [
                modality.value,
                f"{stats.mean:.1f}",
                f"{stats.minimum:.0f}-{stats.maximum:.0f}",
                f"{stats.std:.2f}",
            ]
        )
        data[modality.value] = {
            "mean": stats.mean,
            "min": stats.minimum,
            "max": stats.maximum,
            "std": stats.std,
            "values": replicates[modality.value],
        }
    text = ascii_table(
        ["modality", "mean users", "range", "std"],
        rows,
        title=(
            f"R1 — Measured users per modality across seeds {list(seeds)} "
            f"({days:g} days; dominance ordering held in "
            f"{orderings_ok}/{len(seeds)} replicates)"
        ),
    )
    data["orderings_ok"] = orderings_ok
    data["n_seeds"] = len(seeds)
    return ExperimentOutput(
        experiment_id="R1",
        title="Seed sensitivity of the headline user counts",
        text=text,
        data=data,
    )
