"""Wall-time telemetry: per-run JSONL sidecar, strictly off the report path.

The runner (and the CLI around it) records *operational* facts here — task
spans with attempt counts, retry/timeout/cache-hit/dedup events, stage
wall-clocks, the final metrics snapshot — and writes them to one JSONL
sidecar per run (``<runs-dir>/<run-id>/telemetry.jsonl`` when journaling,
or wherever ``--trace`` points).  Everything in this file is wall-domain
and therefore nondeterministic; the invariant the test suite and CI enforce
is that *enabling* it changes no report byte.

Sidecar schema (``repro-telemetry/1``), one JSON object per line:

* ``{"type": "header", "schema": "repro-telemetry/1", "run_id": ...}`` —
  always the first record;
* ``{"type": "span", "name": ..., "start": epoch-seconds, "duration": s,
  ...}`` — one timed region (task execution, runner stage);
* ``{"type": "event", "name": ..., "at": epoch-seconds, ...}`` — one
  point occurrence (retry, timeout, cache hit, campaign dedup);
* ``{"type": "summary", "domain": "sim"|"wall", ...}`` — terminal
  aggregates: the deterministic sim-tracer slice (when a tracer ran) and
  the wall-domain metrics/stage/campaign snapshot (always, last line).

:func:`read_sidecar` / :func:`validate_sidecar` are the consuming half —
``repro stats``, ``repro cache stats`` and the CI schema check all go
through them.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SCHEMA",
    "Telemetry",
    "read_sidecar",
    "sidecar_summary",
    "timings_lines",
    "validate_sidecar",
]

SCHEMA = "repro-telemetry/1"


class Telemetry:
    """Accumulates one run's wall-domain records; writes the sidecar.

    The attached :class:`MetricsRegistry` carries the runner-side counter
    families (``runner.*``); scenario-level registries live inside worker
    processes and surface here only through the aggregated summary record.
    """

    def __init__(self, run_id: Optional[str] = None) -> None:
        self.run_id = run_id
        self.metrics = MetricsRegistry()
        self.records: list[dict] = []
        self._summary: Optional[dict] = None
        self.created = time.time()

    # -- recording ------------------------------------------------------------
    def event(self, name: str, **fields: Any) -> None:
        self.records.append(
            {"type": "event", "name": name, "at": time.time(), **fields}
        )

    def add_span(
        self, name: str, start: float, duration: float, **fields: Any
    ) -> None:
        self.records.append(
            {
                "type": "span",
                "name": name,
                "start": start,
                "duration": duration,
                **fields,
            }
        )

    @contextmanager
    def span(self, name: str, **fields: Any):
        started = time.time()
        try:
            yield
        finally:
            self.add_span(name, started, time.time() - started, **fields)

    def add_sim_summary(self, tracer) -> None:
        """Attach a sim-tracer's two summaries (sim slice + wall slice)."""
        self.records.append({"type": "summary", **tracer.sim_summary()})
        self.records.append({"type": "summary", **tracer.wall_summary()})

    def add_task_sim_summary(self, key: str, summary: dict) -> None:
        """Attach one task's deterministic sim slice (shipped from a worker).

        Keyed by the task key so sidecars from different ``--jobs`` values
        can be diffed record-for-record: the sim domain is a pure function
        of the task, never of where or when it ran.
        """
        self.records.append({"type": "summary", "task": key, **summary})

    def finish(self, runner=None) -> dict:
        """Build (or rebuild) the terminal wall-domain summary record."""
        summary: dict = {
            "type": "summary",
            "domain": "wall",
            "metrics": self.metrics.as_dict(),
        }
        if runner is not None:
            summary["stage_seconds"] = dict(runner.stage_seconds)
            summary["campaign_stats"] = dict(runner.campaign_stats)
            summary["counters"] = {
                "retries": runner.retries,
                "pool_deaths": runner.pool_deaths,
                "degraded": len(runner.degraded_tasks),
                "resume_skipped": runner.resume_skipped,
                "failures": len(runner.failures),
                "campaign_failures": len(runner.campaign_failures),
            }
            stats = runner.cache_stats
            if stats is not None:
                summary["cache"] = {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "writes": stats.writes,
                    "quarantined": stats.quarantined,
                }
        self._summary = summary
        return summary

    # -- output ---------------------------------------------------------------
    def header(self) -> dict:
        return {
            "type": "header",
            "schema": SCHEMA,
            "run_id": self.run_id,
            "created": self.created,
        }

    def all_records(self) -> list[dict]:
        records = [self.header(), *self.records]
        records.append(self._summary if self._summary is not None else self.finish())
        return records

    def write_jsonl(self, path: Path | str) -> Path:
        """Write the sidecar; parent directories are created as needed."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.all_records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return path


# -- consuming side -------------------------------------------------------------

def read_sidecar(path: Path | str) -> list[dict]:
    """Load and validate one telemetry sidecar; raises ``ValueError``."""
    path = Path(path)
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
    validate_sidecar(records)
    return records


def validate_sidecar(records: list[dict]) -> None:
    """Schema check for ``repro-telemetry/1`` (raises ``ValueError``)."""
    if not records:
        raise ValueError("empty telemetry sidecar")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != SCHEMA:
        raise ValueError(
            f"first record must be a {SCHEMA} header, got {header!r}"
        )
    wall_summaries = 0
    for index, record in enumerate(records[1:], start=2):
        kind = record.get("type")
        if kind == "span":
            if not isinstance(record.get("name"), str):
                raise ValueError(f"record {index}: span without a name")
            for field in ("start", "duration"):
                if not isinstance(record.get(field), (int, float)):
                    raise ValueError(
                        f"record {index}: span {record.get('name')!r} has "
                        f"non-numeric {field!r}"
                    )
            if record["duration"] < 0:
                raise ValueError(
                    f"record {index}: span {record['name']!r} has negative "
                    "duration"
                )
        elif kind == "event":
            if not isinstance(record.get("name"), str):
                raise ValueError(f"record {index}: event without a name")
            if not isinstance(record.get("at"), (int, float)):
                raise ValueError(
                    f"record {index}: event {record['name']!r} has "
                    "non-numeric 'at'"
                )
        elif kind == "summary":
            if record.get("domain") not in ("sim", "wall"):
                raise ValueError(
                    f"record {index}: summary with unknown domain "
                    f"{record.get('domain')!r}"
                )
            if record["domain"] == "wall" and "metrics" in record:
                wall_summaries += 1
        elif kind == "header":
            raise ValueError(f"record {index}: duplicate header")
        else:
            raise ValueError(f"record {index}: unknown record type {kind!r}")
    if wall_summaries != 1:
        raise ValueError(
            f"expected exactly one terminal wall summary, found {wall_summaries}"
        )


def sidecar_summary(records: list[dict]) -> dict:
    """The terminal wall-domain summary record of a validated sidecar."""
    for record in reversed(records):
        if (
            record.get("type") == "summary"
            and record.get("domain") == "wall"
            and "metrics" in record
        ):
            return record
    raise ValueError("sidecar has no terminal wall summary")


def timings_lines(summary: dict) -> list[str]:
    """Render the ``--timings`` stderr view from a wall summary record.

    Same human-readable shape as the pre-telemetry ad-hoc printer: one
    ``[timings: ...]`` line of per-stage wall-clock, one ``[campaigns: ...]``
    line of dedup counters.
    """
    stage_seconds = summary.get("stage_seconds", {})
    stages = ", ".join(
        f"{stage}: {seconds:.2f}s" for stage, seconds in stage_seconds.items()
    ) or "none"
    stats = summary.get("campaign_stats", {})
    return [
        f"[timings: {stages}]",
        (
            f"[campaigns: {stats.get('distinct', 0)} distinct, "
            f"{stats.get('simulated', 0)} simulated, "
            f"{stats.get('reused', 0)} reused, "
            f"{stats.get('fallbacks', 0)} fallback simulations, "
            f"{stats.get('loads', 0)} artifact loads "
            f"({stats.get('load_seconds', 0.0):.2f}s)]"
        ),
    ]
