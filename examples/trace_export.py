#!/usr/bin/env python
"""Exporting simulated accounting data as a Standard Workload Format trace.

Runs a short campaign, writes the accounting records as an SWF trace (the
Parallel Workloads Archive format), reads it back, and re-runs the modality
measurement on the round-tripped data — demonstrating that the measurement
pipeline consumes plain batch traces, not simulator internals.

Run:  python examples/trace_export.py [output.swf]
"""

import io
import sys

from repro.core import AttributeClassifier
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import modality_table
from repro.users.population import PopulationSpec
from repro.workloads import (
    ScenarioConfig,
    records_to_swf,
    run_scenario,
    swf_to_records,
)


def main() -> None:
    print("Simulating 10 days...")
    result = run_scenario(
        ScenarioConfig(
            scale="small", days=10, seed=99, population=PopulationSpec(scale=0.03)
        )
    )
    records = result.records

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            n = records_to_swf(records, handle)
        print(f"Wrote {n} jobs to {sys.argv[1]}")
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            parsed = swf_to_records(handle)
    else:
        buffer = io.StringIO()
        n = records_to_swf(records, buffer)
        print(f"Serialized {n} jobs to SWF "
              f"({len(buffer.getvalue().splitlines())} lines)")
        buffer.seek(0)
        parsed = swf_to_records(buffer)

    direct = AttributeClassifier().classify(records).users_by_modality()
    round_tripped = AttributeClassifier().classify(parsed).users_by_modality()
    print()
    print(
        modality_table(
            {
                "users (direct)": direct,
                "users (via SWF round trip)": round_tripped,
            },
            title="Modality measurement survives trace serialization",
        )
    )
    mismatches = [
        m.value for m in MODALITY_ORDER if direct[m] != round_tripped[m]
    ]
    print(f"\nMismatched modalities: {mismatches or 'none'}")


if __name__ == "__main__":
    main()
