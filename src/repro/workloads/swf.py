"""Standard Workload Format (SWF) import/export.

The Parallel Workloads Archive's SWF is the lingua franca of batch-trace
analysis; exporting simulated accounting records lets standard tooling
consume them, and importing lets archived traces drive the substrate.  The
18-field SWF layout is followed; modality-attribute metadata has no SWF
field, so a ``; attributes:`` comment block carries it per job (round-trip
preserved).
"""

from __future__ import annotations

import json
from typing import Iterable, TextIO

from repro.infra.accounting import UsageRecord
from repro.infra.job import JobState

__all__ = ["records_to_swf", "swf_to_records"]

_STATE_TO_SWF = {
    JobState.COMPLETED: 1,
    JobState.FAILED: 0,
    JobState.KILLED_WALLTIME: 5,
    JobState.CANCELLED: 5,
}
_SWF_TO_STATE = {
    1: JobState.COMPLETED,
    0: JobState.FAILED,
    5: JobState.CANCELLED,
}


def records_to_swf(records: Iterable[UsageRecord], out: TextIO) -> int:
    """Write records as SWF; returns the number of jobs written.

    Users and resources are mapped to stable integer ids (SWF is numeric);
    the mapping and each job's attribute dict go into header/inline comments.
    """
    materialized = sorted(records, key=lambda r: (r.submit_time, r.job_id))
    users: dict[str, int] = {}
    resources: dict[str, int] = {}
    for record in materialized:
        users.setdefault(record.user, len(users) + 1)
        resources.setdefault(record.resource, len(resources) + 1)
    out.write("; SWF export from repro (TeraGrid usage-modality simulator)\n")
    out.write(f"; UserID mapping: {json.dumps(users)}\n")
    out.write(f"; PartitionID mapping: {json.dumps(resources)}\n")
    written = 0
    for record in materialized:
        wait = -1 if record.wait_time is None else int(round(record.wait_time))
        runtime = int(round(record.elapsed))
        fields = [
            record.job_id,  # 1 job number
            int(round(record.submit_time)),  # 2 submit time
            wait,  # 3 wait time
            runtime,  # 4 run time
            record.cores,  # 5 used processors
            -1,  # 6 average cpu time used
            -1,  # 7 used memory
            record.cores,  # 8 requested processors
            int(round(record.requested_walltime)),  # 9 requested time
            -1,  # 10 requested memory
            _STATE_TO_SWF[record.final_state],  # 11 status
            users[record.user],  # 12 user id
            -1,  # 13 group id
            -1,  # 14 executable id
            resources[record.resource],  # 15 queue -> partition stand-in
            resources[record.resource],  # 16 partition id
            -1,  # 17 preceding job
            -1,  # 18 think time
        ]
        if record.attributes:
            out.write(f"; attributes {record.job_id}: "
                      f"{json.dumps(record.attributes, sort_keys=True)}\n")
        out.write(" ".join(str(f) for f in fields) + "\n")
        written += 1
    return written


def swf_to_records(source: TextIO) -> list[UsageRecord]:
    """Parse an SWF stream written by :func:`records_to_swf`.

    Foreign SWF files also parse (attributes default to empty; identities
    become ``user<N>`` / ``resource<N>``), which is how archived traces can
    drive the measurement pipeline.
    """
    users: dict[int, str] = {}
    resources: dict[int, str] = {}
    attributes: dict[int, dict] = {}
    records: list[UsageRecord] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line[1:].strip()
            if body.startswith("UserID mapping:"):
                mapping = json.loads(body.split(":", 1)[1])
                users = {v: k for k, v in mapping.items()}
            elif body.startswith("PartitionID mapping:"):
                mapping = json.loads(body.split(":", 1)[1])
                resources = {v: k for k, v in mapping.items()}
            elif body.startswith("attributes "):
                head, payload = body.split(":", 1)
                job_id = int(head.split()[1])
                attributes[job_id] = json.loads(payload)
            continue
        fields = line.split()
        if len(fields) != 18:
            raise ValueError(f"malformed SWF line ({len(fields)} fields): {line!r}")
        (job_id, submit, wait, runtime, procs, _cpu, _mem, req_procs,
         req_time, _req_mem, status, user_id, _gid, _exe, _queue,
         partition, _prec, _think) = (int(f) for f in fields)
        start_time = None if wait < 0 else float(submit + wait)
        end_time = (
            float(submit) if start_time is None else start_time + runtime
        )
        records.append(
            UsageRecord(
                job_id=job_id,
                user=users.get(user_id, f"user{user_id}"),
                account=f"account-{user_id}",
                resource=resources.get(partition, f"resource{partition}"),
                queue_name="normal",
                cores=max(procs, req_procs, 1),
                requested_walltime=float(max(req_time, runtime, 1)),
                submit_time=float(submit),
                start_time=start_time,
                end_time=end_time,
                final_state=_SWF_TO_STATE.get(status, JobState.COMPLETED),
                charged_nu=max(procs, 1) * runtime / 3600.0,
                attributes=attributes.get(job_id, {}),
            )
        )
    return records
