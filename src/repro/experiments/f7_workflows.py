"""F7 — Workflow makespan vs width; co-allocation slowdown vs single site.

Shape expectations: sweep makespan grows sub-linearly in width while the
machine has room, then linearly once the sweep saturates it (the knee sits
near machine_cores / task_cores); a co-allocated coupled run pays the WAN
synchronization overhead (~1.25x runtime) plus the co-scheduling wait
relative to running on one (sufficiently large) machine.
"""

from __future__ import annotations

import repro.infra as infra
from repro.core.report import ascii_table, series_block
from repro.experiments.base import ExperimentOutput, register
from repro.infra.job import Job
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.units import HOUR
from repro.infra.workflow import TaskGraph
from repro.sim import Simulator

__all__ = ["run"]


def _federation(sim, nodes=(32, 24)):
    ledger = infra.AllocationLedger()
    ledger.create("acct", infra.AllocationType.RESEARCH, 1e12, users={"u"})
    central = infra.CentralAccountingDB()
    providers = [
        infra.ResourceProvider(
            sim,
            infra.Cluster(f"site{i}", nodes=n, cores_per_node=8),
            ledger,
            central,
        )
        for i, n in enumerate(nodes)
    ]
    network = infra.Network(sim)
    for p in providers:
        network.add_site(p.name, 1.25e9)
    meta = infra.Metascheduler(providers, SelectionStrategy.PREDICTED_START)
    return providers, meta, network


def _sweep_makespan(width: int) -> float:
    sim = Simulator()
    providers, meta, network = _federation(sim)
    engine = infra.WorkflowEngine(sim, meta, network=network)
    graph = TaskGraph.parameter_sweep(
        "sweep",
        width=width,
        cores=16,
        walltime=1.5 * HOUR,
        true_runtime=1 * HOUR,
        output_bytes=1e9,
    )
    proc = engine.run(graph, user="u", account="acct")
    result = sim.run(until=proc)
    return result.makespan / HOUR


def _coupled_comparison() -> dict:
    # Single-site run of the full application.
    sim = Simulator()
    providers, meta, network = _federation(sim, nodes=(64,))
    job = Job(
        user="u", account="acct", cores=256, walltime=4 * HOUR,
        true_runtime=2 * HOUR,
    )
    providers[0].submit(job)
    sim.run(until=10 * HOUR)
    single_elapsed = job.elapsed / HOUR

    # Co-allocated across two half-size machines.
    sim2 = Simulator()
    providers2, meta2, network2 = _federation(sim2, nodes=(32, 32))
    coalloc = infra.CoAllocator(sim2, slack=300.0, wan_overhead_factor=1.25)
    proc = coalloc.launch(
        user="u",
        account="acct",
        parts=[(providers2[0], 128), (providers2[1], 128)],
        walltime=4 * HOUR,
        single_site_runtime=2 * HOUR,
    )
    record = sim2.run(until=proc)
    coupled_elapsed = max(j.elapsed for j in record.jobs) / HOUR
    coupled_total = (record.finished_at - record.requested_at) / HOUR
    return {
        "single_site_runtime_h": single_elapsed,
        "coupled_runtime_h": coupled_elapsed,
        "coupled_total_h": coupled_total,
        "runtime_slowdown": coupled_elapsed / single_elapsed,
        "synchronized": record.synchronized,
    }


@register("F7")
def run(widths: tuple[int, ...] = (4, 8, 16, 32, 64)) -> ExperimentOutput:
    series = []
    rows = []
    for width in widths:
        makespan = _sweep_makespan(width)
        series.append((float(width), makespan))
        rows.append([width, f"{makespan:.2f}h", f"{makespan / (width * 1.0):.3f}h"])
    table_a = ascii_table(
        ["sweep width", "makespan", "makespan/width"],
        rows,
        title="F7a — Parameter-sweep makespan vs width (1h tasks, 16 cores)",
    )
    coupled = _coupled_comparison()
    table_b = ascii_table(
        ["metric", "value"],
        [
            ["single-site runtime", f"{coupled['single_site_runtime_h']:.2f}h"],
            ["coupled runtime (2 sites)", f"{coupled['coupled_runtime_h']:.2f}h"],
            ["coupled total (incl. co-scheduling)",
             f"{coupled['coupled_total_h']:.2f}h"],
            ["runtime slowdown", f"{coupled['runtime_slowdown']:.2f}x"],
            ["parts start synchronized", coupled["synchronized"]],
        ],
        title="F7b — Tightly-coupled co-allocation vs single site",
    )
    figure = series_block(
        "F7 series (x=width, y=makespan hours)", {"makespan": series}
    )
    return ExperimentOutput(
        experiment_id="F7",
        title="Workflow scaling and co-allocation overhead",
        text=table_a + "\n\n" + table_b + "\n\n" + figure,
        data={"sweep": series, "coupled": coupled},
    )
