"""The simulation engine: clock, event heap and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from time import perf_counter
from typing import Any, Generator, Optional

from repro.sim.process import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Process,
    Timeout,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "WHEEL_TICK",
    "default_tracer",
    "set_default_tracer",
    "set_wheel_default",
]

# Coalesced timer wheel: far-future homogeneous timeouts (think times,
# backoffs, periodic pumps) dominate the heap at scale.  Instead of one heap
# entry each, they are appended to a per-tick bucket; a single *marker* entry
# per active bucket sits in the heap at the bucket's start time with an
# internal priority that sorts strictly before every real event.  When a
# marker reaches the top, the bucket's entries — which kept their original
# ``(time, priority, eid)`` triples — are pushed back into the (now much
# smaller) heap.  Pop order is therefore exactly the no-wheel order: the
# total order on ``(time, priority, eid)`` does not depend on when an entry
# physically entered the heap.
WHEEL_TICK = 900.0  # seconds per bucket
_WHEEL_MIN_DELAY = 2.0 * WHEEL_TICK  # guarantees the marker lands in the future
PRIORITY_WHEEL = -1  # internal: sorts before PRIORITY_URGENT (0)

_wheel_default = True


def set_wheel_default(enabled: bool) -> None:
    """Enable/disable the timer wheel on subsequently constructed simulators.

    The wheel is a pure pop-order-preserving optimisation, so this knob never
    changes results; the equivalence tests and the before/after benchmarks
    use it to run the same workload through both kernels.
    """
    global _wheel_default
    _wheel_default = bool(enabled)

# The kernel's tracer slot.  `repro.sim` must stay importable without
# `repro.obs`, so the tracer is duck-typed: anything with the
# on_schedule/on_event/on_resume/on_process_start/on_process_end methods of
# `repro.obs.trace.SimTracer` works.  With no tracer installed the run loop
# pays one `is None` check per step.
_default_tracer = None


def set_default_tracer(tracer) -> None:
    """Install ``tracer`` on every subsequently constructed :class:`Simulator`.

    Pass ``None`` to uninstall.  Diagnostics-only: simulators on the report
    path run untraced unless `repro profile`/the benchmark harness wraps
    them (see :func:`repro.obs.trace.traced_simulation`).
    """
    global _default_tracer
    _default_tracer = tracer


def default_tracer():
    """The currently installed default tracer (``None`` when untraced)."""
    return _default_tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class StopSimulation(Exception):
    """Raise inside a callback/process to stop :meth:`Simulator.run` early."""


class Simulator:
    """A discrete-event simulator with a deterministic event order.

    Events scheduled for the same time fire in (priority, FIFO) order, which
    makes every run fully reproducible for a fixed seed.  Time is a float in
    arbitrary units; the TeraGrid substrate uses seconds.
    """

    def __init__(
        self, start_time: float = 0.0, tracer=None, wheel: Optional[bool] = None
    ) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._tracer = tracer if tracer is not None else _default_tracer
        # Timer wheel state: bucket index -> list of deferred heap entries.
        # ``wheel=False`` disables coalescing (used by the equivalence tests).
        self._wheel_enabled = _wheel_default if wheel is None else bool(wheel)
        self._wheel: dict[int, list[tuple[float, int, int, Event]]] = {}
        self._wheel_count = 0

    # -- introspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event.

        Raises :class:`SimulationError` when no events remain — an empty
        heap has no "next event time", and silently returning a sentinel
        (or leaking ``IndexError``) hid bugs in callers.
        """
        self._settle()
        if not self._heap:
            raise SimulationError("peek() on an empty event heap")
        return self._heap[0][0]

    def __len__(self) -> int:
        # Logical pending-event count: heap entries minus one marker per
        # active wheel bucket, plus the bucketed entries themselves.
        return len(self._heap) - len(self._wheel) + self._wheel_count

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed by user code."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start ``generator`` as a process at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        if (
            self._wheel_enabled
            and priority == PRIORITY_NORMAL
            and delay >= _WHEEL_MIN_DELAY
            and type(event) is Timeout
        ):
            # delay >= 2 ticks guarantees bucket_start > now, so the marker
            # itself is never scheduled into the past.
            bucket = int(when // WHEEL_TICK)
            entries = self._wheel.get(bucket)
            if entries is None:
                self._wheel[bucket] = entries = []
                heapq.heappush(
                    self._heap,
                    (bucket * WHEEL_TICK, PRIORITY_WHEEL, next(self._eid), bucket),  # type: ignore[arg-type]
                )
            entries.append((when, priority, next(self._eid), event))
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, (when, priority, next(self._eid), event))
        if self._tracer is not None:
            self._tracer.on_schedule(len(self))

    def _settle(self) -> None:
        """Flush wheel buckets whose marker has reached the top of the heap.

        Bucketed entries kept their original ``(time, priority, eid)``
        triples, and the marker priority sorts before every real event at
        the bucket's start time, so flushing here — before any pop the
        caller observes — reproduces the exact no-wheel pop order.
        """
        heap = self._heap
        while heap and heap[0][1] == PRIORITY_WHEEL:
            _when, _priority, _eid, bucket = heapq.heappop(heap)
            entries = self._wheel.pop(bucket)  # type: ignore[arg-type]
            self._wheel_count -= len(entries)
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)

    # -- run loop ----------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        self._settle()
        when, _priority, _eid, event = heapq.heappop(self._heap)
        self._now = when
        tracer = self._tracer
        if tracer is None:
            event._run_callbacks()
        else:
            started = perf_counter()
            try:
                event._run_callbacks()
            finally:
                tracer.on_event(event, when, perf_counter() - started)
        if not event.ok and not event.defused:
            raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event heap is empty;
        * a number — run until the clock reaches that time (the clock is set
          to exactly ``until`` on return, even if no event fires then);
        * an :class:`Event` — run until that event has been processed, and
          return its value (re-raising its exception on failure).
        """
        if until is None:
            while self._heap:
                try:
                    self.step()
                except StopSimulation:
                    return None
            return None

        if isinstance(until, Event):
            target = until
            if target.processed:
                if not target.ok:
                    raise target.value
                return target.value
            # Absorb a failure so step() does not double-raise; run() raises.
            def _absorb(e: Event) -> None:
                e.defused = True

            target._add_callback(_absorb)
            try:
                while self._heap and not target.processed:
                    try:
                        self.step()
                    except StopSimulation:
                        return None
            finally:
                # If we leave without processing the target (heap exhausted,
                # StopSimulation, or an unrelated failure propagating out of
                # step()), detach the absorber: otherwise a later failure of
                # the event would be silently defused with nobody waiting.
                if not target.processed and target.callbacks is not None:
                    try:
                        target.callbacks.remove(_absorb)
                    except ValueError:
                        pass
            if not target.processed:
                raise SimulationError(
                    "run(until=event) exhausted the event heap before the "
                    "event triggered"
                )
            if not target.ok:
                raise target.value
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while True:
            # Settle before testing the horizon: a wheel marker's time is the
            # bucket *start*, which may precede every real entry in it.
            self._settle()
            if not self._heap or self._heap[0][0] > horizon:
                break
            try:
                self.step()
            except StopSimulation:
                return None
        self._now = horizon
        return None
