"""The federation-scenario DSL: declarative programs that compile to configs.

The simulator's native knob surface is :class:`~repro.workloads.synthetic.
ScenarioConfig` — a flat bag of parameters every experiment hand-builds, which
in practice means the machinery is only ever exercised on a handful of
TeraGrid-2010-shaped federations.  A :class:`ScenarioProgram` is the
declarative alternative: a small, validated, composable description of

* a **federation** (preset scale or explicit site list),
* a **modality mix** (how the user community splits across the six paper
  modalities),
* a **gateway fleet** (portal count, tagging coverage, outage backlog,
  adoption ramp),
* an **outage regime** (unplanned whole-site / partial-rack failure process),
* a **recovery suite** (per-modality reaction policies),
* an **ingest-fault regime** (lossy AMIE packet exchange + recovery level), and
* a **load shape** (overall intensity plus time-varying ramp)

that :meth:`ScenarioProgram.compile` lowers deterministically to a
``ScenarioConfig``: the same program always produces an identical config, so
a program (plus its seed) is a complete, replayable description of a run.

Programs are plain frozen dataclasses — buildable from python (the scenario
library in :mod:`repro.scenarios.library`), from YAML/dicts
(:mod:`repro.scenarios.loader`), or drawn at random from hypothesis
strategies (:mod:`repro.scenarios.strategies`) for invariant fuzzing.

A compile-time guarantee worth naming: a program with an outage regime but
no explicit recovery suite compiles with :data:`~repro.users.behavior.
DEFAULT_RECOVERY` — the legacy ``recovery=None`` behaviour loop does not
survive a mid-submission outage (``SiteDownError`` propagates), so the DSL
never produces that combination.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.amie import IngestRecoveryPolicy, PacketFaultRegime
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.resilience import OutagePolicy
from repro.infra.scheduler import (
    EasyBackfillScheduler,
    FairshareScheduler,
    FcfsScheduler,
    WeeklyDrainScheduler,
)
from repro.infra.units import DAY, HOUR, MINUTE
from repro.users.behavior import DEFAULT_RECOVERY, RecoveryPolicy
from repro.users.population import PopulationSpec
from repro.users.profiles import DEFAULT_PROFILES, BehaviorProfile
from repro.workloads.scenarios import SiteSpec, federation_specs
from repro.workloads.synthetic import ScenarioConfig

__all__ = [
    "FederationDef",
    "GatewayFleet",
    "IngestFaults",
    "LoadShape",
    "ModalityMix",
    "OutageRegime",
    "RecoverySuite",
    "SCHEDULERS",
    "ScenarioProgram",
]

#: Recovery levels an :class:`IngestFaults` section may name.
INGEST_RECOVERY_LEVELS = ("none", "retry", "audit")

#: Scheduler policies a program may name (the YAML-facing vocabulary).
SCHEDULERS = {
    "easy_backfill": EasyBackfillScheduler,
    "fairshare": FairshareScheduler,
    "fcfs": FcfsScheduler,
    "weekly_drain": WeeklyDrainScheduler,
}


@dataclass(frozen=True)
class FederationDef:
    """Which machines exist: a preset scale or an explicit site list."""

    preset: Optional[str] = "small"
    sites: Optional[tuple[SiteSpec, ...]] = None

    def __post_init__(self) -> None:
        if (self.preset is None) == (self.sites is None):
            raise ValueError("give exactly one of preset= or sites=")
        if self.sites is not None:
            if not self.sites:
                raise ValueError("sites must be non-empty")
            names = [s.name for s in self.sites]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate site names: {names}")
        if self.preset is not None:
            federation_specs(self.preset)  # raises on unknown scale

    def specs(self) -> tuple[SiteSpec, ...]:
        if self.sites is not None:
            return self.sites
        return federation_specs(self.preset or "small")


@dataclass(frozen=True)
class ModalityMix:
    """How ``total_users`` split across modalities, by weight.

    Weights are relative (they need not sum to 1); integer per-modality
    counts come out of a largest-remainder apportionment, which is
    deterministic and exactly preserves ``total_users``.  Modalities absent
    from ``weights`` get zero users.
    """

    total_users: int
    weights: dict[Modality, float]

    def __post_init__(self) -> None:
        if self.total_users < 1:
            raise ValueError(f"total_users must be >= 1, got {self.total_users}")
        if not self.weights:
            raise ValueError("weights must name at least one modality")
        for modality, weight in self.weights.items():
            if not isinstance(modality, Modality):
                raise ValueError(f"weights keys must be Modality, got {modality!r}")
            if weight < 0:
                raise ValueError(f"negative weight for {modality}: {weight}")
        if sum(self.weights.values()) <= 0:
            raise ValueError("at least one weight must be positive")

    def counts(self) -> dict[Modality, int]:
        """Integer users per modality (largest-remainder, ties by taxonomy order)."""
        total_weight = sum(self.weights.values())
        shares = {
            m: self.total_users * self.weights.get(m, 0.0) / total_weight
            for m in MODALITY_ORDER
        }
        counts = {m: int(shares[m]) for m in MODALITY_ORDER}
        leftover = self.total_users - sum(counts.values())
        by_remainder = sorted(
            MODALITY_ORDER,
            key=lambda m: (-(shares[m] - counts[m]), MODALITY_ORDER.index(m)),
        )
        for m in by_remainder[:leftover]:
            counts[m] += 1
        return counts


@dataclass(frozen=True)
class GatewayFleet:
    """The portal layer: how many gateways and how well instrumented."""

    n_gateways: int = 3
    tagging_coverage: float = 1.0
    #: requests held through a backend outage (0 = shed everything)
    backlog: int = 0
    #: end users activate uniformly over this many days (0 = all at once)
    adoption_ramp_days: float = 0.0

    def __post_init__(self) -> None:
        if self.n_gateways < 1:
            # build_population requires at least one gateway (community
            # accounts anchor the allocation model even with no gateway users)
            raise ValueError(f"n_gateways must be >= 1, got {self.n_gateways}")
        if not (0.0 <= self.tagging_coverage <= 1.0):
            raise ValueError(
                f"tagging_coverage must be in [0, 1], got {self.tagging_coverage}"
            )
        if self.backlog < 0:
            raise ValueError(f"backlog must be >= 0, got {self.backlog}")
        if self.adoption_ramp_days < 0:
            raise ValueError(
                f"adoption_ramp_days must be >= 0, got {self.adoption_ramp_days}"
            )


@dataclass(frozen=True)
class OutageRegime:
    """The unplanned-failure climate, in human units (days/hours/minutes)."""

    site_mtbf_days: float = 45.0
    partial_mtbf_days: float = 0.0
    partial_fraction: float = 0.125
    repair_median_hours: float = 6.0
    repair_sigma: float = 0.8
    repair_min_hours: float = 1.0
    repair_max_hours: float = 72.0
    propagation_lag_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.propagation_lag_minutes < 0:
            raise ValueError("propagation_lag_minutes must be >= 0")
        self.policy()  # delegate the remaining validation to OutagePolicy

    def policy(self) -> OutagePolicy:
        return OutagePolicy(
            site_mtbf=self.site_mtbf_days * DAY,
            partial_mtbf=self.partial_mtbf_days * DAY,
            partial_fraction=self.partial_fraction,
            repair_median=self.repair_median_hours * HOUR,
            repair_sigma=self.repair_sigma,
            repair_min=self.repair_min_hours * HOUR,
            repair_max=self.repair_max_hours * HOUR,
        )

    @property
    def propagation_lag(self) -> float:
        return self.propagation_lag_minutes * MINUTE


@dataclass(frozen=True)
class RecoverySuite:
    """Per-modality failure reactions, as overrides on the default suite."""

    #: modality -> policy; modalities not named fall back to DEFAULT_RECOVERY
    overrides: dict[Modality, RecoveryPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for modality, policy in self.overrides.items():
            if not isinstance(modality, Modality):
                raise ValueError(f"overrides keys must be Modality, got {modality!r}")
            if not isinstance(policy, RecoveryPolicy):
                raise ValueError(
                    f"override for {modality} must be a RecoveryPolicy, got {policy!r}"
                )

    def policies(self) -> dict[Modality, RecoveryPolicy]:
        merged = dict(DEFAULT_RECOVERY)
        merged.update(self.overrides)
        return merged


@dataclass(frozen=True)
class IngestFaults:
    """A lossy AMIE accounting exchange, in human units.

    Rates are per-packet probabilities; the mean transit delay is in
    minutes.  ``recovery`` names how hard the exchange fights back:
    ``"none"`` (fire-and-forget), ``"retry"`` (ack-timeout retransmission
    only), or ``"audit"`` (retransmission plus the end-of-run
    reconciliation audit with targeted re-sends — the level that drives
    unrecovered records to zero).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_mean_minutes: float = 0.0
    recovery: str = "audit"
    ack_timeout_minutes: float = 30.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.recovery not in INGEST_RECOVERY_LEVELS:
            raise ValueError(
                f"unknown recovery level {self.recovery!r}; "
                f"choose from {list(INGEST_RECOVERY_LEVELS)}"
            )
        if self.delay_mean_minutes < 0:
            raise ValueError(
                f"delay_mean_minutes must be >= 0, got {self.delay_mean_minutes}"
            )
        self.regime()  # delegate rate validation to PacketFaultRegime
        self.policy()  # and timeout/attempt validation to IngestRecoveryPolicy

    def regime(self) -> PacketFaultRegime:
        return PacketFaultRegime(
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            corrupt_rate=self.corrupt_rate,
            delay_mean=self.delay_mean_minutes * MINUTE,
        )

    def policy(self) -> IngestRecoveryPolicy:
        return IngestRecoveryPolicy(
            retransmit=self.recovery != "none",
            ack_timeout=self.ack_timeout_minutes * MINUTE,
            max_attempts=self.max_attempts,
            reconcile=self.recovery == "audit",
        )


@dataclass(frozen=True)
class LoadShape:
    """Overall demand level and its variation over the run.

    ``intensity`` scales every modality's session rate (think times divide
    by it): 1.0 is the calibrated TeraGrid level, 2.0 doubles demand.
    ``gateway_ramp_days`` staggers gateway end-user activation over time —
    the time-varying component (an adoption wave / growing campaign).
    """

    intensity: float = 1.0
    gateway_ramp_days: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.intensity <= 100.0):
            raise ValueError(f"intensity must be in (0, 100], got {self.intensity}")
        if self.gateway_ramp_days < 0:
            raise ValueError(
                f"gateway_ramp_days must be >= 0, got {self.gateway_ramp_days}"
            )

    def profiles(self) -> Optional[dict[Modality, BehaviorProfile]]:
        """The behaviour profiles at this intensity (None = untouched defaults)."""
        if self.intensity == 1.0:
            return None
        return {
            modality: dataclasses.replace(
                profile, think_time_mean=profile.think_time_mean / self.intensity
            )
            for modality, profile in DEFAULT_PROFILES.items()
        }


@dataclass(frozen=True)
class ScenarioProgram:
    """One declarative federation scenario; ``compile()`` lowers it to knobs."""

    name: str
    description: str = ""
    days: float = 30.0
    seed: int = 0
    federation: FederationDef = field(default_factory=FederationDef)
    mix: Optional[ModalityMix] = None
    gateways: GatewayFleet = field(default_factory=GatewayFleet)
    outages: Optional[OutageRegime] = None
    recovery: Optional[RecoverySuite] = None
    ingest: Optional[IngestFaults] = None
    load: LoadShape = field(default_factory=LoadShape)
    scheduler: str = "easy_backfill"
    metascheduler: SelectionStrategy = SelectionStrategy.PREDICTED_START
    #: population scale used only when no explicit mix is given
    population_scale: float = 0.05
    #: scale-tier execution hint: run this program as population cells
    #: grouped into up to this many shard tasks.  Purely operational —
    #: ``compile()`` ignores it, and any value yields the same merged bytes
    #: (the shard-merge determinism property).
    shards: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("program needs a name")
        if self.days <= 0:
            raise ValueError(f"days must be positive, got {self.days}")
        if not (isinstance(self.shards, int) and self.shards >= 1):
            raise ValueError(f"shards must be an int >= 1, got {self.shards!r}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}"
            )
        if not isinstance(self.metascheduler, SelectionStrategy):
            raise ValueError(
                f"metascheduler must be a SelectionStrategy, got {self.metascheduler!r}"
            )
        if self.population_scale <= 0:
            raise ValueError(
                f"population_scale must be positive, got {self.population_scale}"
            )

    def population(self) -> PopulationSpec:
        if self.mix is None:
            return PopulationSpec(
                scale=self.population_scale, n_gateways=self.gateways.n_gateways
            )
        return PopulationSpec(
            scale=self.population_scale,
            counts=self.mix.counts(),
            n_gateways=self.gateways.n_gateways,
        )

    def compile(
        self, seed: Optional[int] = None, days: Optional[float] = None
    ) -> ScenarioConfig:
        """Lower to a :class:`ScenarioConfig` — pure and deterministic.

        ``seed``/``days`` override the program's own values (the fuzzing
        harness and CLI replay rely on this).
        """
        recovery = self.recovery
        if recovery is None and self.outages is not None:
            recovery = RecoverySuite()
        return ScenarioConfig(
            scale=self.federation.preset or "small",
            days=float(days if days is not None else self.days),
            seed=int(seed if seed is not None else self.seed),
            population=self.population(),
            gateway_tagging_coverage=self.gateways.tagging_coverage,
            scheduler_factory=SCHEDULERS[self.scheduler],
            metascheduler_strategy=self.metascheduler,
            profiles=self.load.profiles(),
            sites=self.federation.sites,
            gateway_adoption_ramp_days=max(
                self.gateways.adoption_ramp_days, self.load.gateway_ramp_days
            ),
            outages=None if self.outages is None else self.outages.policy(),
            outage_propagation_lag=(
                self.outages.propagation_lag
                if self.outages is not None
                else 10 * MINUTE
            ),
            recovery=None if recovery is None else recovery.policies(),
            gateway_backlog=self.gateways.backlog,
            packet_faults=None if self.ingest is None else self.ingest.regime(),
            ingest_recovery=None if self.ingest is None else self.ingest.policy(),
        )
