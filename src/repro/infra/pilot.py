"""Pilot jobs (the SAGA BigJob / Condor glide-in pattern).

A *pilot* is a single placeholder batch job that, once running, executes a
stream of user tasks inside its own allocation — decoupling task throughput
from batch-queue waits.  Pilots were in heavy use on the 2010 TeraGrid, and
they matter to this paper for two reasons:

* performance: a W-task ensemble pays one queue wait instead of W;
* **measurement**: accounting sees *one job* — the tasks inside are
  invisible, so an ensemble user running pilots looks like a batch user
  unless the pilot system forwards task attributes.  Experiment F8
  quantifies both effects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.infra.job import Job, JobState
from repro.infra.site import ResourceProvider
from repro.sim import Simulator
from repro.sim.resources import Resource

__all__ = ["PilotTask", "Pilot", "PilotManager"]

_task_ids = itertools.count(1)


@dataclass
class PilotTask:
    """One unit of work executed inside a pilot (invisible to accounting)."""

    cores: int
    runtime: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("task needs >= 1 core")
        if self.runtime <= 0:
            raise ValueError("task runtime must be positive")

    @property
    def done(self) -> bool:
        return self.finished_at is not None


class Pilot:
    """A live pilot: a core pool inside one batch job.

    Tasks queue FIFO on the pilot's core pool; whatever is still queued or
    running when the placeholder job's walltime expires is lost (the classic
    pilot truncation hazard).
    """

    def __init__(
        self,
        sim: Simulator,
        job: Job,
        cores: int,
        reprovision: bool = False,
        max_reprovisions: int = 0,
    ) -> None:
        self.sim = sim
        self.job = job
        self.cores = cores
        self._pool: Optional[Resource] = None
        self.tasks: list[PilotTask] = []
        self.completed: list[PilotTask] = []
        self.lost: list[PilotTask] = []
        self._active = False
        #: if the placeholder dies to infrastructure (FAILED), launch a
        #: successor and move the unfinished tasks onto it
        self.reprovision = reprovision
        self.reprovisions_left = max_reprovisions
        self.replacement: Optional["Pilot"] = None

    @property
    def is_active(self) -> bool:
        return self._active

    def submit_task(self, task: PilotTask) -> PilotTask:
        if task.cores > self.cores:
            raise ValueError(
                f"task needs {task.cores} cores; pilot has {self.cores}"
            )
        task.submitted_at = self.sim.now
        self.tasks.append(task)
        if self._active:
            self.sim.process(self._run_task(task), name=f"pilot-task-{task.task_id}")
        return task

    # -- lifecycle driven by PilotManager ----------------------------------
    def _activate(self) -> None:
        self._active = True
        self._pool = Resource(self.sim, capacity=self.cores)
        for task in self.tasks:
            if not task.done and task.started_at is None:
                self.sim.process(
                    self._run_task(task), name=f"pilot-task-{task.task_id}"
                )

    def _deactivate(self) -> None:
        self._active = False
        for task in self.tasks:
            if not task.done:
                self.lost.append(task)

    def _run_task(self, task: PilotTask):
        assert self._pool is not None
        request = self._pool.request(amount=task.cores)
        yield request
        if not self._active or task.done:
            self._pool.release(request)
            return
        task.started_at = self.sim.now
        yield self.sim.timeout(task.runtime)
        if self._active and task.started_at is not None and not task.done:
            task.finished_at = self.sim.now
            self.completed.append(task)
        self._pool.release(request)


class PilotManager:
    """Launches pilots as batch jobs and drives their lifecycles."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.pilots: list[Pilot] = []
        self.pilots_lost = 0
        self.pilots_reprovisioned = 0
        self.tasks_rescued = 0

    def launch(
        self,
        site: ResourceProvider,
        user: str,
        account: str,
        cores: int,
        walltime: float,
        attributes: Optional[dict] = None,
        true_modality: Optional[str] = None,
        reprovision: bool = False,
        max_reprovisions: int = 2,
    ) -> Pilot:
        """Submit the placeholder job; tasks may be queued immediately.

        With ``reprovision=True`` a pilot whose placeholder dies to
        infrastructure failure (node or site loss, state ``FAILED``) is
        replaced — up to ``max_reprovisions`` times — once the site is back
        up, and its unfinished tasks move to the successor.
        """
        job = Job(
            user=user,
            account=account,
            cores=cores,
            walltime=walltime,
            # The placeholder runs to its walltime regardless of task load;
            # that is what the batch system (and accounting) sees.
            true_runtime=walltime + 1.0,
            attributes=dict(attributes or {}),
            true_modality=true_modality,
        )
        pilot = Pilot(
            self.sim,
            job,
            cores,
            reprovision=reprovision,
            max_reprovisions=max_reprovisions if reprovision else 0,
        )
        self.pilots.append(pilot)
        site.submit(job)
        self.sim.process(self._drive(site, pilot), name=f"pilot-{job.job_id}")
        return pilot

    def _drive(self, site: ResourceProvider, pilot: Pilot):
        scheduler = site.scheduler
        job = pilot.job
        completion = scheduler.wait_for(job)
        started = yield scheduler.wait_for_start(job)
        if started is not None:
            pilot._activate()
        yield completion
        pilot._deactivate()
        # Walltime truncation (KILLED_WALLTIME) is the classic pilot hazard
        # and stays a loss; only infrastructure death (FAILED) is recoverable.
        if not pilot.reprovision or job.state is not JobState.FAILED:
            return
        stranded = [t for t in pilot.tasks if not t.done]
        if not stranded:
            return
        self.pilots_lost += 1
        if pilot.reprovisions_left <= 0:
            return
        if hasattr(site, "wait_until_up"):
            yield site.wait_until_up()
        replacement = self.launch(
            site,
            user=job.user,
            account=job.account,
            cores=pilot.cores,
            walltime=job.walltime,
            attributes=dict(job.attributes),
            true_modality=job.true_modality,
            reprovision=True,
            max_reprovisions=pilot.reprovisions_left - 1,
        )
        pilot.replacement = replacement
        self.pilots_reprovisioned += 1
        for task in stranded:
            if task in pilot.lost:
                pilot.lost.remove(task)
            task.started_at = None
            replacement.submit_task(task)
            self.tasks_rescued += 1
