"""Tests for named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_name_reproduces():
    a = RandomStreams(seed=7).stream("arrivals")
    b = RandomStreams(seed=7).stream("arrivals")
    assert a.random(10).tolist() == b.random(10).tolist()


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("arrivals").random(10)
    b = streams.stream("runtimes").random(10)
    assert a.tolist() != b.tolist()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("arrivals").random(10)
    b = RandomStreams(seed=2).stream("arrivals").random(10)
    assert a.tolist() != b.tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_streams_does_not_perturb_existing():
    """Creating a new named stream must not change draws of an old one."""
    first = RandomStreams(seed=3)
    expected = first.stream("a").random(5).tolist()

    second = RandomStreams(seed=3)
    second.stream("zzz")  # extra stream created first
    assert second.stream("a").random(5).tolist() == expected


def test_names_and_contains():
    streams = RandomStreams(seed=0)
    streams.stream("one")
    assert "one" in streams
    assert "two" not in streams
    assert streams.names() == ("one",)
