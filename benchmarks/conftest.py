"""Benchmark plumbing: run an experiment once, time it, archive its output.

Each bench regenerates one table/figure of DESIGN.md §4.  The rendered text
is printed (visible with ``pytest -s``) and written to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can be assembled from the
archived artifacts.
"""

import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_LOG = Path(__file__).parent / "BENCH.md"


@pytest.fixture
def regenerate(benchmark):
    """Run ``experiment_id`` once under the benchmark timer; archive output."""

    def inner(experiment_id: str, **knobs):
        from repro.experiments import run_experiment

        output = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **knobs),
            rounds=1,
            iterations=1,
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(str(output) + "\n", encoding="utf-8")
        print(f"\n{output}\n[archived to {path}]")
        return output

    return inner


@pytest.fixture
def parallel_speedup():
    """Time one experiment serial vs parallel; archive + log the ratio.

    Runs the experiment's task fan-out at ``jobs=1`` and ``jobs=N`` with the
    result cache off (honest wall-clock), asserts the outputs are identical
    (the determinism contract is part of the benchmark), writes the numbers
    to ``results/<id>_parallel.txt`` and appends a BENCH entry.
    """

    def inner(experiment_id: str, jobs: int = 4, **knobs):
        from repro.experiments.base import _campaign_cache
        from repro.runner import ParallelRunner

        # Both legs must start cold: the in-process campaign memo (which
        # forked workers would also inherit) would otherwise hand one leg
        # precomputed simulations and corrupt the ratio.
        _campaign_cache.clear()
        started = time.perf_counter()
        serial_output = ParallelRunner(jobs=1, use_cache=False).run(
            experiment_id, **knobs
        )
        serial_seconds = time.perf_counter() - started

        _campaign_cache.clear()
        started = time.perf_counter()
        parallel_output = ParallelRunner(jobs=jobs, use_cache=False).run(
            experiment_id, **knobs
        )
        parallel_seconds = time.perf_counter() - started

        assert parallel_output.text == serial_output.text
        assert parallel_output.data == serial_output.data

        speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
        cores = os.cpu_count() or 1
        summary = (
            f"{experiment_id} serial {serial_seconds:.1f}s vs "
            f"{jobs}-worker {parallel_seconds:.1f}s -> {speedup:.2f}x "
            f"({cores} cores available)"
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}_parallel.txt"
        path.write_text(summary + "\n", encoding="utf-8")
        stamp = time.strftime("%Y-%m-%d")
        with BENCH_LOG.open("a", encoding="utf-8") as handle:
            handle.write(f"- {stamp}: {summary}\n")
        print(f"\n{summary}\n[archived to {path}]")
        return {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "jobs": jobs,
            "cores": cores,
        }

    return inner
