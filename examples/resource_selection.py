#!/usr/bin/env python
"""Choosing a machine on the federation: resource-selection strategies.

"On a grid of computers, users often must decide between individual machines
for job submission" (Yoshimoto & Sivagnanam).  This example submits the same
job stream through four metascheduling strategies and compares time-to-start,
then shows how the informed strategy decays as the information service's
snapshots go stale.

Run:  python examples/resource_selection.py
"""

from repro.core.report import ascii_table
from repro.experiments.f5_metascheduling import _measure
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.units import HOUR, MINUTE


def main() -> None:
    print(__doc__)
    rows = []
    for strategy in SelectionStrategy:
        outcome = _measure(
            strategy, publish_interval=5 * MINUTE, days=5.0, seed=13, load=0.8
        )
        rows.append(
            [
                strategy.value,
                f"{outcome['mean_wait_min']:.0f} min",
                f"{outcome['p90_wait_min']:.0f} min",
                outcome["n_started"],
            ]
        )
    print(
        ascii_table(
            ["strategy", "mean time-to-start", "p90", "jobs started"],
            rows,
            title="Strategy comparison (3 sites, 80% load, 5 days)",
        )
    )

    rows = []
    for interval in (1 * MINUTE, 30 * MINUTE, 2 * HOUR, 8 * HOUR):
        outcome = _measure(
            SelectionStrategy.LEAST_LOADED,
            publish_interval=interval,
            days=5.0,
            seed=13,
            load=0.8,
        )
        rows.append(
            [
                f"{interval / MINUTE:.0f} min",
                f"{outcome['mean_wait_min']:.0f} min",
                f"{outcome['p90_wait_min']:.0f} min",
            ]
        )
    print()
    print(
        ascii_table(
            ["info published every", "mean time-to-start", "p90"],
            rows,
            title="LEAST_LOADED under information staleness",
        )
    )


if __name__ == "__main__":
    main()
