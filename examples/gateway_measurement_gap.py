#!/usr/bin/env python
"""The gateway measurement gap: why the paper wants job attributes.

nanoHUB-style science gateways serve thousands of end users through one
*community account*.  This example sweeps the fraction of gateway jobs that
carry the proposed gateway-user attribute and shows what the central
accounting database can (and cannot) say about the gateway community at each
level — the paper's core argument, quantified.

Run:  python examples/gateway_measurement_gap.py
"""

from repro.core import AttributeClassifier
from repro.core.modalities import Modality
from repro.core.report import ascii_table
from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, run_scenario


def measure(coverage: float):
    result = run_scenario(
        ScenarioConfig(
            scale="small",
            days=15,
            seed=7,
            population=PopulationSpec(scale=0.04, n_gateways=2),
            gateway_tagging_coverage=coverage,
        )
    )
    truth = result.active_truth_by_identity()
    true_gateway = sum(1 for m in truth.values() if m is Modality.GATEWAY)
    classification = AttributeClassifier().classify(result.records)
    gateway_identities = [
        identity
        for identity, modality in classification.identity_primary.items()
        if modality is Modality.GATEWAY
    ]
    identified = sum(1 for identity in gateway_identities if ":" in identity)
    gateway_jobs = sum(
        1
        for record in result.records
        if record.attributes.get("submit_interface") == "gateway"
    )
    return true_gateway, identified, gateway_jobs


def main() -> None:
    print(__doc__)
    rows = []
    for coverage in (0.0, 0.25, 0.5, 1.0):
        true_gateway, identified, gateway_jobs = measure(coverage)
        rows.append(
            [
                f"{coverage:.0%}",
                gateway_jobs,
                true_gateway,
                identified,
                f"{100 * identified / true_gateway:.0f}%" if true_gateway else "-",
            ]
        )
    print(
        ascii_table(
            [
                "attribute coverage",
                "gateway jobs seen",
                "true end users",
                "end users identified",
                "recovered",
            ],
            rows,
            title="What accounting can say about the gateway community",
        )
    )
    print(
        "\nUsage (jobs, NUs) is visible at every coverage level — the\n"
        "community account pays for it.  The *people* are invisible until\n"
        "gateways attach per-job user attributes: exactly the\n"
        "instrumentation the paper proposes."
    )


if __name__ == "__main__":
    main()
