"""Command-line entry point: regenerate tables/figures from the terminal.

Usage::

    python -m repro list                # show the experiment index
    python -m repro run T1              # regenerate one table/figure
    python -m repro run T1 --days 30    # ...with reduced horizon
    python -m repro taxonomy            # print the modality taxonomy
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeraGrid usage-modality reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("taxonomy", help="print the modality taxonomy table")

    report_parser = sub.add_parser(
        "report", help="regenerate every table/figure into one report"
    )
    report_parser.add_argument("--fast", action="store_true",
                               help="reduced horizons (smoke report)")
    report_parser.add_argument("--out", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--only", nargs="*", default=None,
                               help="subset of experiment ids")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. T1, F3")
    run_parser.add_argument("--days", type=float, default=None,
                            help="override the simulated horizon")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the master seed")

    args = parser.parse_args(argv)

    if args.command == "taxonomy":
        from repro.core.report import taxonomy_table

        print(taxonomy_table())
        return 0

    from repro.experiments import registry, run_experiment

    if args.command == "report":
        from repro.experiments.reporting import generate_report

        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                generate_report(out=handle, fast=args.fast, only=args.only)
            print(f"report written to {args.out}")
        else:
            generate_report(out=sys.stdout, fast=args.fast, only=args.only)
        return 0

    if args.command == "list":
        for experiment_id in sorted(registry):
            doc = (registry[experiment_id].__module__ or "").rsplit(".", 1)[-1]
            print(f"{experiment_id:4s} {doc}")
        return 0

    knobs = {}
    if args.days is not None:
        knobs["days"] = args.days
    if args.seed is not None:
        knobs["seed"] = args.seed
    try:
        output = run_experiment(args.experiment_id.upper(), **knobs)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
