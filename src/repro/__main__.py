"""Command-line entry point: regenerate tables/figures from the terminal.

Usage::

    python -m repro list                # show the experiment index
    python -m repro run T1              # regenerate one table/figure
    python -m repro run T1 --days 30    # ...with reduced horizon
    python -m repro run R1 --jobs 4     # fan its replicates over 4 workers
    python -m repro run-all --fast      # the full suite, parallel + cached
    python -m repro cache info          # result-cache location and size
    python -m repro taxonomy            # print the modality taxonomy

``run-all`` and ``run`` accept ``--jobs N`` (default: ``REPRO_JOBS`` env,
then CPU count) and ``--no-cache``.  ``run-all`` reports are written without
timing lines so the bytes are identical at any ``--jobs`` value; the timing
and cache summary go to stderr instead.
"""

from __future__ import annotations

import argparse
import sys
import time


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every task; do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)")


def _build_runner(args):
    from repro.runner import ParallelRunner, ResultCache

    cache = None
    if not args.no_cache and args.cache_dir:
        cache = ResultCache(root=args.cache_dir)
    return ParallelRunner(jobs=args.jobs, cache=cache, use_cache=not args.no_cache)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeraGrid usage-modality reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("taxonomy", help="print the modality taxonomy table")

    report_parser = sub.add_parser(
        "report", help="regenerate every table/figure into one report"
    )
    report_parser.add_argument("--fast", action="store_true",
                               help="reduced horizons (smoke report)")
    report_parser.add_argument("--out", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--only", nargs="*", default=None,
                               help="subset of experiment ids")

    run_all_parser = sub.add_parser(
        "run-all",
        help="regenerate the report with parallel workers and result caching",
    )
    run_all_parser.add_argument("--fast", action="store_true",
                                help="reduced horizons (smoke report)")
    run_all_parser.add_argument("--out", default=None,
                                help="write to a file instead of stdout")
    run_all_parser.add_argument("--only", nargs="*", default=None,
                                help="subset of experiment ids")
    _add_parallel_flags(run_all_parser)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. T1, F3")
    run_parser.add_argument("--days", type=float, default=None,
                            help="override the simulated horizon")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the master seed")
    _add_parallel_flags(run_parser)

    cache_parser = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.add_argument("--cache-dir", default=None,
                              help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)")

    args = parser.parse_args(argv)

    if args.command == "taxonomy":
        from repro.core.report import taxonomy_table

        print(taxonomy_table())
        return 0

    if args.command == "cache":
        from repro.runner import ResultCache

        cache = ResultCache(root=args.cache_dir) if args.cache_dir else ResultCache()
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached results from {cache.root}")
        else:
            entries = cache.entries()
            print(f"cache dir:    {cache.root}")
            print(f"entries:      {len(entries)}")
            print(f"size:         {cache.size_bytes()} bytes")
            print(f"code version: {cache.version}")
        return 0

    from repro.experiments import registry, run_experiment

    if args.command == "list":
        for experiment_id in sorted(registry):
            doc = (registry[experiment_id].__module__ or "").rsplit(".", 1)[-1]
            print(f"{experiment_id:4s} {doc}")
        return 0

    if args.command == "report":
        from repro.experiments.reporting import generate_report

        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                generate_report(out=handle, fast=args.fast, only=args.only)
            print(f"report written to {args.out}")
        else:
            generate_report(out=sys.stdout, fast=args.fast, only=args.only)
        return 0

    if args.command == "run-all":
        from repro.experiments.reporting import generate_report

        try:
            runner = _build_runner(args)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        started = time.time()
        try:
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    outputs = generate_report(
                        out=handle, fast=args.fast, only=args.only,
                        runner=runner, timings=False,
                    )
            else:
                outputs = generate_report(
                    out=sys.stdout, fast=args.fast, only=args.only,
                    runner=runner, timings=False,
                )
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        elapsed = time.time() - started
        stats = runner.cache_stats
        cache_note = f", cache: {stats}" if stats is not None else ", cache: off"
        print(
            f"[run-all: {len(outputs)} experiments, jobs={runner.jobs}"
            f"{cache_note}, {elapsed:.1f}s]",
            file=sys.stderr,
        )
        if args.out:
            print(f"report written to {args.out}")
        return 0

    knobs = {}
    if args.days is not None:
        knobs["days"] = args.days
    if args.seed is not None:
        knobs["seed"] = args.seed
    use_runner = (
        args.jobs is not None or args.no_cache or args.cache_dir is not None
    )
    try:
        if use_runner:
            output = _build_runner(args).run(args.experiment_id.upper(), **knobs)
        else:
            output = run_experiment(args.experiment_id.upper(), **knobs)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
