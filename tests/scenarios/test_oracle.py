"""The invariant oracle: green on honest runs, loud on doctored ones.

Each doctoring test takes a clean scenario result, corrupts one piece of
state the way a real accounting bug would (a double-shipped AMIE record, a
tampered charge, a drifted kill counter), and asserts the *specific*
invariant trips — so a regression that blinds one check cannot hide behind
the others staying green.
"""

import dataclasses

import pytest

from repro.core.modalities import Modality
from repro.infra.amie import QuarantinedPacket
from repro.scenarios import (
    FederationDef,
    IngestFaults,
    ModalityMix,
    OracleReport,
    OutageRegime,
    ScenarioProgram,
    Violation,
    check_scenario,
)
from repro.workloads import SiteSpec, run_scenario

FIXTURE = ScenarioProgram(
    name="oracle-fixture",
    days=2.0,
    seed=7,
    federation=FederationDef(
        preset=None,
        sites=(
            SiteSpec("alpha", 8, 4, 1.0, 1.0e9),
            SiteSpec("beta", 6, 4, 1.2, 6.25e8),
        ),
    ),
    mix=ModalityMix(
        total_users=10,
        weights={Modality.BATCH: 2.0, Modality.EXPLORATORY: 1.0,
                 Modality.GATEWAY: 1.0},
    ),
    outages=OutageRegime(
        site_mtbf_days=0.5,
        repair_median_hours=1.0,
        repair_min_hours=0.25,
        repair_max_hours=4.0,
    ),
    scheduler="fcfs",
)


@pytest.fixture
def result():
    return run_scenario(FIXTURE.compile())


def failed(report):
    return {name for name, ok in report.checks.items() if not ok}


def doctor_record(result, index, **changes):
    """Swap one stored record for a corrupted copy (records are frozen)."""
    records = result.central._records
    records[index] = dataclasses.replace(records[index], **changes)
    return records[index]


def test_clean_run_is_green(result):
    assert result.records, "fixture must produce usage records"
    report = check_scenario(result)
    assert report.ok
    assert failed(report) == set()
    # Every invariant family actually ran.
    assert {c.split(".")[0] for c in report.checks} == {
        "conservation", "ingest", "double_charge", "records", "classifier",
        "lost_work", "metrics",
    }


def test_duplicate_record_trips_unique_jobs(result):
    result.central._records.append(result.records[0])
    report = check_scenario(result)
    assert "double_charge.unique_jobs" in failed(report)


def test_tampered_charge_trips_conservation(result):
    doctor_record(result, 0, charged_nu=result.records[0].charged_nu + 1e6)
    report = check_scenario(result)
    bad = failed(report)
    assert "conservation.ledger_vs_central" in bad
    assert "double_charge.nominal_bound" in bad


def test_negative_charge_trips_nominal_bound(result):
    doctor_record(result, 0, charged_nu=-1.0)
    report = check_scenario(result)
    assert "double_charge.nominal_bound" in failed(report)


def test_unknown_resource_trips_known_resource(result):
    doctor_record(result, 0, resource="phantom-machine")
    report = check_scenario(result)
    assert "double_charge.known_resource" in failed(report)


def test_reversed_timestamps_trip_ordering(result):
    record = result.central._records[0]
    doctor_record(result, 0, end_time=record.submit_time - 10.0)
    report = check_scenario(result)
    assert "records.timestamps_ordered" in failed(report)


def test_zero_cores_trips_positive_cores(result):
    doctor_record(result, 0, cores=0)
    report = check_scenario(result)
    assert "records.positive_cores" in failed(report)


def test_unknown_account_trips_known_account(result):
    doctor_record(result, 0, account="slush-fund")
    report = check_scenario(result)
    assert "records.known_account" in failed(report)


def test_drifted_injector_counter_trips_consistency(result):
    assert result.injectors, "outage fixture must install injectors"
    result.injectors[0].jobs_killed += 1
    report = check_scenario(result)
    assert "lost_work.counter_consistent" in failed(report)


def test_drifted_site_counter_trips_site_counter(result):
    result.providers[0].jobs_lost_to_outages += 1
    report = check_scenario(result)
    assert "lost_work.site_counter" in failed(report)


def test_undrained_feed_trips_conservation(result):
    # Emulate a record stuck in a site's AMIE buffer past the final drain.
    provider = result.providers[0]
    provider.feed.publish(result.records[0])
    report = check_scenario(result)
    assert "conservation.feed_drained" in failed(report)


# --------------------------------------------------------- faulty-exchange


FAULTY_FIXTURE = dataclasses.replace(
    FIXTURE,
    name="oracle-fixture-faulty",
    outages=None,
    ingest=IngestFaults(
        drop_rate=0.3,
        duplicate_rate=0.15,
        corrupt_rate=0.15,
        delay_mean_minutes=30.0,
        recovery="audit",
    ),
)


@pytest.fixture
def faulty_result():
    return run_scenario(FAULTY_FIXTURE.compile())


def test_clean_faulty_run_is_green(faulty_result):
    assert faulty_result.amie_endpoint is not None
    report = check_scenario(faulty_result)
    assert report.ok, "\n".join(str(v) for v in report.violations)
    # the weakened-conservation invariants replaced the strict identity
    assert "conservation.ledger_vs_published" in report.checks
    assert "conservation.up_to_missing" in report.checks
    assert "conservation.reconciled" in report.checks
    assert "conservation.ledger_vs_central" not in report.checks


def test_tampered_site_ledger_trips_published_conservation(faulty_result):
    feed = faulty_result.providers[0].feed
    feed.ledger[0] = dataclasses.replace(
        feed.ledger[0], charged_nu=feed.ledger[0].charged_nu + 1e6
    )
    report = check_scenario(faulty_result)
    assert "conservation.ledger_vs_published" in failed(report)


def test_silent_record_loss_trips_reconciled(faulty_result):
    # Remove a record from central after the audit claimed zero unrecovered:
    # the with-resends conservation identity no longer holds.
    victim = faulty_result.central._records.pop(0)
    faulty_result.central._job_ids.discard(victim.job_id)
    report = check_scenario(faulty_result)
    assert "conservation.reconciled" in failed(report)
    assert "ingest.feed_counters" in failed(report)


def test_drifted_published_counter_trips_feed_counters(faulty_result):
    faulty_result.providers[0].feed.records_published += 1
    report = check_scenario(faulty_result)
    assert "ingest.feed_counters" in failed(report)


def test_drifted_endpoint_counter_trips_endpoint_counters(faulty_result):
    faulty_result.amie_endpoint.packets_received += 1
    report = check_scenario(faulty_result)
    assert "ingest.endpoint_counters" in failed(report)


def test_unstructured_quarantine_trips_quarantine_invariant(faulty_result):
    endpoint = faulty_result.amie_endpoint
    endpoint.quarantine.append(
        QuarantinedPacket(
            feed_id="alpha",
            seq=999,
            reason="gremlins",
            detail="",
            n_records=0,
            received_at=0.0,
        )
    )
    report = check_scenario(faulty_result)
    assert "ingest.quarantine_structured" in failed(report)


def test_disabled_regime_is_structurally_identical_to_no_regime():
    """An all-zero fault regime must take the exact plain-feed code path."""
    plain = dataclasses.replace(FIXTURE, outages=None)
    disabled = dataclasses.replace(
        plain, name="disabled-regime", ingest=IngestFaults()
    )
    config = disabled.compile()
    assert config.packet_faults is not None
    assert not config.faulty_ingest

    def shape(result):
        return sorted(
            (r.user, r.resource, r.submit_time, r.start_time, r.end_time,
             r.cores, round(r.charged_nu, 9))
            for r in result.records
        )

    result_plain = run_scenario(plain.compile())
    result_disabled = run_scenario(config)
    assert result_disabled.amie_endpoint is None
    assert result_disabled.reconciliation is None
    assert shape(result_plain) == shape(result_disabled)
    assert result_plain.central.total_nu() == pytest.approx(
        result_disabled.central.total_nu()
    )


# ---------------------------------------------------------------- report unit


def test_report_and_combines_repeat_records():
    report = OracleReport()
    report.record("inv.a", True)
    report.record("inv.a", False, "broke on job 7")
    report.record("inv.a", True)  # a later success must not mask the failure
    assert report.checks["inv.a"] is False
    assert not report.ok
    assert [str(v) for v in report.violations] == ["inv.a: broke on job 7"]


def test_report_summary_format():
    report = OracleReport()
    report.record("b.second", True)
    report.record("a.first", False, "why")
    assert report.summary() == "FAIL a.first\nok   b.second"
    assert str(Violation("a.first", "why")) == "a.first: why"
