"""Tests for the fault-tolerant AMIE packet exchange."""

import pytest

from repro.infra.accounting import CentralAccountingDB, UsageRecord
from repro.infra.amie import (
    AmieIngestEndpoint,
    AmiePacket,
    IngestRecoveryPolicy,
    PacketFaultRegime,
    ResilientAmieFeed,
    packet_checksum,
)
from repro.infra.job import Job, JobState
from repro.infra.units import DAY, HOUR, MINUTE
from repro.sim import RandomStreams, Simulator

from tests.infra.test_accounting import terminal_job


def record(**kwargs) -> UsageRecord:
    return UsageRecord.from_job(terminal_job(**kwargs))


class ScriptedRng:
    """Replays a fixed list of uniform draws, then stays fault-free."""

    def __init__(self, draws=()):
        self.draws = list(draws)

    def random(self):
        return self.draws.pop(0) if self.draws else 0.99

    def exponential(self, mean):
        return mean


def exchange(regime=None, policy=None, interval=HOUR, seed=7, rng=None):
    """One site feeding one central DB over a (possibly faulty) link."""
    sim = Simulator()
    central = CentralAccountingDB()
    endpoint = AmieIngestEndpoint(central)
    feed = ResilientAmieFeed(
        sim,
        endpoint,
        feed_id="site00",
        regime=regime if regime is not None else PacketFaultRegime(),
        policy=policy if policy is not None else IngestRecoveryPolicy(),
        rng=rng if rng is not None else RandomStreams(seed=seed).stream("amie:site00"),
        interval=interval,
    )
    return sim, central, endpoint, feed


# -- regime validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "knob", ["drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"]
)
def test_regime_rejects_out_of_range_rates(knob):
    with pytest.raises(ValueError):
        PacketFaultRegime(**{knob: 1.5})
    with pytest.raises(ValueError):
        PacketFaultRegime(**{knob: -0.1})


def test_regime_rejects_negative_delays():
    with pytest.raises(ValueError):
        PacketFaultRegime(delay_mean=-1.0)
    with pytest.raises(ValueError):
        PacketFaultRegime(reorder_delay=-1.0)


def test_regime_enabled_flag():
    assert not PacketFaultRegime().enabled
    assert PacketFaultRegime(drop_rate=0.1).enabled
    assert PacketFaultRegime(delay_mean=60.0).enabled
    assert PacketFaultRegime(ack_drop_rate=0.2).enabled


def test_ack_drop_rate_defaults_to_drop_rate():
    assert PacketFaultRegime(drop_rate=0.3).effective_ack_drop_rate == 0.3
    assert (
        PacketFaultRegime(drop_rate=0.3, ack_drop_rate=0.1).effective_ack_drop_rate
        == 0.1
    )


def test_policy_validation():
    with pytest.raises(ValueError):
        IngestRecoveryPolicy(ack_timeout=0.0)
    with pytest.raises(ValueError):
        IngestRecoveryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        IngestRecoveryPolicy(max_attempts=0)


# -- endpoint validation, quarantine, idempotence -----------------------------


def test_endpoint_accepts_well_formed_packet():
    central = CentralAccountingDB()
    endpoint = AmieIngestEndpoint(central)
    packet = AmiePacket.make("site00", 0, [record(), record()])
    assert endpoint.receive(packet)
    assert len(central) == 2
    assert endpoint.packets_accepted == 1
    assert endpoint.records_accepted == 2


def test_endpoint_quarantines_truncated_packet():
    central = CentralAccountingDB()
    endpoint = AmieIngestEndpoint(central)
    packet = AmiePacket.make("site00", 0, [record(), record()])
    truncated = AmiePacket(
        feed_id=packet.feed_id,
        seq=packet.seq,
        records=packet.records[:1],
        declared_records=packet.declared_records,
        checksum=packet.checksum,
    )
    assert not endpoint.receive(truncated, at=5.0)
    assert len(central) == 0
    [entry] = endpoint.quarantine
    assert entry.reason == "truncated"
    assert entry.n_records == 1
    assert entry.received_at == 5.0


def test_endpoint_quarantines_corrupted_packet():
    central = CentralAccountingDB()
    endpoint = AmieIngestEndpoint(central)
    good = [record(), record()]
    packet = AmiePacket.make("site00", 0, good)
    import dataclasses

    mangled = dataclasses.replace(good[0], charged_nu=999.0)
    corrupted = dataclasses.replace(packet, records=(mangled, good[1]))
    assert not endpoint.receive(corrupted)
    assert len(central) == 0
    [entry] = endpoint.quarantine
    assert entry.reason == "corrupted"


def test_endpoint_reacks_duplicate_sequence_without_reingest():
    central = CentralAccountingDB()
    endpoint = AmieIngestEndpoint(central)
    packet = AmiePacket.make("site00", 0, [record()])
    assert endpoint.receive(packet)
    assert endpoint.receive(packet)  # replay: still acked
    assert len(central) == 1
    assert endpoint.packets_duplicate == 1
    assert endpoint.records_accepted == 1


def test_checksum_tracks_content():
    a, b = record(user="alice"), record(user="bob")
    assert packet_checksum([a]) != packet_checksum([b])
    assert packet_checksum([a, b]) != packet_checksum([a])
    assert packet_checksum([a]) == packet_checksum([a])


# -- the lossless resilient path ----------------------------------------------


def test_resilient_feed_delivers_everything_without_faults():
    sim, central, endpoint, feed = exchange()
    for user in ("alice", "bob"):
        feed.publish(record(user=user))
    sim.run(until=HOUR + 1)
    assert len(central) == 2
    assert feed.unacked == 0
    assert feed.retransmits == 0
    assert feed.records_published == 2
    assert len(feed.ledger) == 2


def test_resilient_feed_interval_validation():
    with pytest.raises(ValueError):
        exchange(interval=0.0)


# -- retransmission ------------------------------------------------------------


def test_retransmit_recovers_dropped_packet():
    """Exactly the first send drops; the retry delivers and gets acked."""
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(drop_rate=0.5),
        policy=IngestRecoveryPolicy(
            retransmit=True, ack_timeout=10 * MINUTE, max_attempts=5
        ),
        rng=ScriptedRng([0.0]),  # first drop-check draw fails the packet
    )
    feed.publish(record())
    feed.drain()
    sim.run(until=DAY)
    assert len(central) == 1
    assert feed.retransmits == 1
    assert feed.transport.packets_dropped == 1
    assert feed.unacked == 0


def test_no_retransmit_loses_dropped_packet():
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(drop_rate=1.0),
        policy=IngestRecoveryPolicy(retransmit=False, reconcile=False),
    )
    feed.publish(record())
    feed.drain()
    sim.run(until=30 * DAY)
    assert len(central) == 0
    assert feed.retransmits == 0
    assert feed.unacked == 1


def test_backoff_schedule_is_deterministic_exponential():
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(drop_rate=1.0),
        policy=IngestRecoveryPolicy(
            retransmit=True,
            ack_timeout=10 * MINUTE,
            backoff_factor=2.0,
            max_attempts=4,
        ),
    )
    sends = []
    original = feed.transport.send

    def spy(packet, f):
        sends.append(sim.now)
        original(packet, f)

    feed.transport.send = spy
    feed.publish(record())
    feed.drain()
    sim.run(until=10 * DAY)
    # attempt 1 at t0, retries after 10, 20, 40 minutes; then budget exhausted
    assert sends == [0.0, 10 * MINUTE, 30 * MINUTE, 70 * MINUTE]
    assert feed.retransmits == 3


def test_retransmit_racing_its_ack_does_not_double_ingest():
    """Slow acks cause spurious retransmits; layered dedup absorbs them."""
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(delay_mean=4 * HOUR),
        policy=IngestRecoveryPolicy(
            retransmit=True, ack_timeout=10 * MINUTE, max_attempts=10
        ),
    )
    for user in ("alice", "bob", "carol"):
        feed.publish(record(user=user))
    feed.drain()
    sim.run(until=60 * DAY)
    assert len(central) == 3
    assert central.duplicates_skipped == 0  # seq dedup absorbed the replays
    assert endpoint.packets_duplicate > 0
    assert feed.unacked == 0


# -- reconciliation ------------------------------------------------------------


def test_reconcile_recovers_lost_records():
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(drop_rate=1.0),
        policy=IngestRecoveryPolicy(retransmit=False, reconcile=True),
    )
    for user in ("alice", "bob"):
        feed.publish(record(user=user))
    feed.drain()
    sim.run(until=DAY)
    assert len(central) == 0
    report = endpoint.reconcile([feed], resend=True)
    assert len(central) == 2
    [audit] = report.audits
    assert audit.published == 2
    assert audit.missing_before == 2
    assert audit.resent == 2
    assert audit.recovered == 2
    assert audit.unrecovered == 0
    assert report.total_unrecovered == 0
    assert feed.unacked == 0  # settle() closed the outbox


def test_reconcile_without_resend_only_reports():
    sim, central, endpoint, feed = exchange(
        regime=PacketFaultRegime(drop_rate=1.0),
        policy=IngestRecoveryPolicy(retransmit=False, reconcile=False),
    )
    feed.publish(record())
    feed.drain()
    sim.run(until=DAY)
    report = endpoint.reconcile([feed], resend=False)
    assert len(central) == 0
    assert report.total_unrecovered == 1
    assert report.total_resent == 0
    assert not report.resend_enabled


def test_reconcile_is_idempotent_for_delivered_records():
    sim, central, endpoint, feed = exchange()
    feed.publish(record())
    sim.run(until=HOUR + 1)
    report = endpoint.reconcile([feed], resend=True)
    assert len(central) == 1
    assert report.total_resent == 0
    assert report.total_unrecovered == 0


# -- determinism ---------------------------------------------------------------


def test_faulty_exchange_is_seed_stable():
    def outcome(seed):
        sim, central, endpoint, feed = exchange(
            regime=PacketFaultRegime(
                drop_rate=0.3,
                duplicate_rate=0.2,
                reorder_rate=0.2,
                corrupt_rate=0.2,
                delay_mean=30 * MINUTE,
            ),
            policy=IngestRecoveryPolicy(
                retransmit=True, ack_timeout=20 * MINUTE, max_attempts=4
            ),
            seed=seed,
        )
        for user in ("alice", "bob", "carol", "dave"):
            feed.publish(record(user=user))
            feed.drain()
        sim.run(until=10 * DAY)
        return (
            sorted(r.user for r in central.all_records()),
            feed.transport.packets_dropped,
            feed.retransmits,
            endpoint.packets_quarantined,
        )

    assert outcome(3) == outcome(3)
    # different seeds draw different fault schedules (overwhelmingly likely
    # to differ in at least one counter for these rates)
    assert outcome(3) != outcome(4) or outcome(3)[0] != outcome(5)[0]
