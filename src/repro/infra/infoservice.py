"""The integrated information service (IIS).

TeraGrid published per-site load through a federated information service
(Navarro et al., *TeraGrid's Integrated Information Service*).  Consumers —
metaschedulers, portals, users choosing a machine — saw snapshots that were
*stale* by up to the publication interval.  The staleness knob is swept in
experiment F5 to show how resource-selection quality degrades with stale
state.
"""

from __future__ import annotations

from typing import Iterable

from repro.infra.site import ResourceProvider
from repro.infra.units import MINUTE
from repro.sim import Simulator

__all__ = ["InformationService"]


class InformationService:
    """Publishes each provider's status snapshot every ``publish_interval``."""

    def __init__(
        self,
        sim: Simulator,
        providers: Iterable[ResourceProvider],
        publish_interval: float = 5 * MINUTE,
        outage_propagation_lag: float = 0.0,
    ) -> None:
        if publish_interval <= 0:
            raise ValueError(
                f"publish_interval must be positive, got {publish_interval}"
            )
        if outage_propagation_lag < 0:
            raise ValueError(
                f"outage_propagation_lag must be >= 0, got {outage_propagation_lag}"
            )
        self.sim = sim
        self.providers = {p.name: p for p in providers}
        if not self.providers:
            raise ValueError("information service needs at least one provider")
        self.publish_interval = publish_interval
        #: how long after a site drops before publications admit it is down;
        #: inside the window the last pre-outage snapshot keeps being served
        #: (the dead site cannot push fresh state, and nothing announces the
        #: outage — consumers find out the hard way, by failed submissions)
        self.outage_propagation_lag = outage_propagation_lag
        self.publications = 0
        self._published: dict[str, dict] = {
            name: provider.status_snapshot()
            for name, provider in self.providers.items()
        }
        sim.process(self._publisher(sim), name="info-service")

    def _publisher(self, sim: Simulator):
        while True:
            yield sim.timeout(self.publish_interval)
            for name, provider in self.providers.items():
                if (
                    not provider.up
                    and provider.down_since is not None
                    and sim.now - provider.down_since
                    < self.outage_propagation_lag
                ):
                    continue  # stale pre-outage snapshot stands, lying
                self._published[name] = provider.status_snapshot()
            self.publications += 1

    # -- queries ----------------------------------------------------------
    def query(self, resource: str) -> dict:
        """The most recently *published* snapshot (possibly stale)."""
        try:
            return dict(self._published[resource])
        except KeyError:
            raise KeyError(f"unknown resource {resource!r}") from None

    def all_snapshots(self) -> dict[str, dict]:
        return {name: dict(snap) for name, snap in self._published.items()}

    def staleness(self, resource: str) -> float:
        """Age of the published snapshot for ``resource``."""
        return self.sim.now - self.query(resource)["time"]

    def believed_up(self, resource: str) -> bool:
        """Whether the *published* view says the site is up (may be stale)."""
        return bool(self.query(resource).get("up", True))
