"""Bench F3: regenerate the FCFS-vs-EASY wait-time comparison."""


def test_f3_wait_times(regenerate):
    output = regenerate("F3", days=14.0)
    small = "small (<=8 cores)"
    fcfs = output.data["FCFS"][small]
    easy = output.data["EASY"][small]
    # Backfilling slashes small-job waits and raises utilization.
    assert easy["median_h"] < fcfs["median_h"] / 3
    assert output.data["utilization"]["EASY"] > output.data["utilization"]["FCFS"]
