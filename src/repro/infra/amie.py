"""Fault-tolerant AMIE packet exchange between sites and the central DB.

The plain :class:`~repro.infra.accounting.AmieFeed` models the accounting
exchange as a lossless in-process call.  Real AMIE feeds are file-and-batch
protocols over wide-area links: packets get dropped, duplicated, reordered,
delayed and truncated, and the central database has to *survive* that
without double-charging or silently losing usage.  This module supplies both
halves of that story:

* the **adversary** — :class:`PacketFaultRegime` describes a seed-stable
  fault climate and :class:`FaultyTransport` applies it to every packet (and
  every ack) crossing the site→center link;
* the **defense** — :class:`ResilientAmieFeed` stamps per-feed sequence
  numbers on batches, keeps a site-side ledger of everything it ever
  published, and (policy permitting) retransmits unacknowledged packets with
  deterministic exponential backoff; :class:`AmieIngestEndpoint` validates
  checksums, quarantines malformed packets with structured reasons,
  dedup-skips replayed sequence numbers, and ingests records idempotently;
  :meth:`AmieIngestEndpoint.reconcile` is the end-of-run audit that diffs
  central state against the site ledgers and issues targeted re-sends.

Everything draws from one named RNG stream per feed, so a fault schedule is
a pure function of the scenario seed — the A5 ablation's byte-identity
across worker counts, resumes and chaos rests on that.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.infra.accounting import CentralAccountingDB, UsageRecord
from repro.infra.units import HOUR, MINUTE
from repro.obs.metrics import CounterAttr, MetricsRegistry
from repro.sim import Simulator

__all__ = [
    "AmieIngestEndpoint",
    "AmiePacket",
    "FaultyTransport",
    "FeedAudit",
    "IngestRecoveryPolicy",
    "PacketFaultRegime",
    "QuarantinedPacket",
    "ReconciliationReport",
    "ResilientAmieFeed",
    "packet_checksum",
]


@dataclass(frozen=True)
class PacketFaultRegime:
    """The fault climate of the site→center accounting link.

    All rates are independent per-packet probabilities; delays are seconds.
    The default (all zero) regime is *disabled*: scenario assembly takes the
    plain lossless path and produces byte-identical results to a config with
    no regime at all.
    """

    #: P(a data packet vanishes in flight — never delivered, never acked)
    drop_rate: float = 0.0
    #: P(a delivered packet arrives twice)
    duplicate_rate: float = 0.0
    #: P(a packet is held back an extra ``reorder_delay``, overtaken by later ones)
    reorder_rate: float = 0.0
    #: P(a packet is truncated and corrupted in flight — quarantined on arrival)
    corrupt_rate: float = 0.0
    #: mean one-way transit latency (exponential; 0 = instantaneous)
    delay_mean: float = 0.0
    #: extra hold applied to reordered packets
    reorder_delay: float = 2 * HOUR
    #: P(an acknowledgement is lost on the way back); None = ``drop_rate``
    ack_drop_rate: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.ack_drop_rate is not None and not (0.0 <= self.ack_drop_rate <= 1.0):
            raise ValueError(
                f"ack_drop_rate must be in [0, 1], got {self.ack_drop_rate}"
            )
        if self.delay_mean < 0:
            raise ValueError(f"delay_mean must be >= 0, got {self.delay_mean}")
        if self.reorder_delay < 0:
            raise ValueError(f"reorder_delay must be >= 0, got {self.reorder_delay}")

    @property
    def enabled(self) -> bool:
        """Whether this regime perturbs the exchange at all."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
            or self.corrupt_rate > 0
            or self.delay_mean > 0
            or (self.ack_drop_rate or 0.0) > 0
        )

    @property
    def effective_ack_drop_rate(self) -> float:
        return self.drop_rate if self.ack_drop_rate is None else self.ack_drop_rate


@dataclass(frozen=True)
class IngestRecoveryPolicy:
    """How hard the exchange fights back against a fault regime.

    ``retransmit`` covers in-run losses (ack timeout → exponential-backoff
    re-send, bounded by ``max_attempts``); ``reconcile`` arms the end-of-run
    audit's targeted re-sends, which also recover packets that were still in
    flight when the run ended or that exhausted their retransmit budget.
    """

    retransmit: bool = True
    ack_timeout: float = 30 * MINUTE
    backoff_factor: float = 2.0
    max_attempts: int = 5
    reconcile: bool = True

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be positive, got {self.ack_timeout}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


def packet_checksum(records: Sequence[UsageRecord]) -> str:
    """Content checksum over the fields a truncation or bit-flip would damage."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(
            f"{record.job_id}|{record.user}|{record.resource}|"
            f"{record.end_time!r}|{record.charged_nu!r};".encode("utf-8")
        )
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class AmiePacket:
    """One sequenced batch of usage records on the wire."""

    feed_id: str
    seq: int
    records: tuple[UsageRecord, ...]
    #: record count at send time (a truncated packet disagrees with it)
    declared_records: int
    checksum: str

    @classmethod
    def make(cls, feed_id: str, seq: int, records: Iterable[UsageRecord]) -> "AmiePacket":
        batch = tuple(records)
        return cls(
            feed_id=feed_id,
            seq=seq,
            records=batch,
            declared_records=len(batch),
            checksum=packet_checksum(batch),
        )


@dataclass(frozen=True)
class QuarantinedPacket:
    """One malformed packet the endpoint refused, with a structured reason."""

    feed_id: str
    seq: int
    reason: str  # "truncated" | "corrupted"
    detail: str
    n_records: int
    received_at: float


class FaultyTransport:
    """Applies a :class:`PacketFaultRegime` to every packet and ack.

    All randomness comes from the single generator handed in (one named
    stream per feed), drawn in simulation order — the fault schedule is a
    deterministic function of the scenario seed.
    """

    packets_sent = CounterAttr("_packets_sent")
    packets_dropped = CounterAttr("_packets_dropped")
    packets_duplicated = CounterAttr("_packets_duplicated")
    packets_corrupted = CounterAttr("_packets_corrupted")
    packets_reordered = CounterAttr("_packets_reordered")
    acks_dropped = CounterAttr("_acks_dropped")

    def __init__(
        self,
        sim: Simulator,
        endpoint: "AmieIngestEndpoint",
        regime: PacketFaultRegime,
        rng,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.regime = regime
        self.rng = rng
        # ``metrics`` is a (possibly scoped) registry view; counters keep
        # their attribute API through the CounterAttr descriptors above.
        scope = metrics if metrics is not None else MetricsRegistry()
        self._packets_sent = scope.counter("packets_sent")
        self._packets_dropped = scope.counter("packets_dropped")
        self._packets_duplicated = scope.counter("packets_duplicated")
        self._packets_corrupted = scope.counter("packets_corrupted")
        self._packets_reordered = scope.counter("packets_reordered")
        self._acks_dropped = scope.counter("acks_dropped")

    def _transit_delay(self) -> float:
        if self.regime.delay_mean <= 0:
            return 0.0
        return float(self.rng.exponential(self.regime.delay_mean))

    def _corrupt(self, packet: AmiePacket) -> AmiePacket:
        """Truncate-and-corrupt: drop the tail, damage a surviving field."""
        self.packets_corrupted += 1
        records = packet.records
        if len(records) > 1:
            records = records[: max(1, len(records) // 2)]
        if records:
            mangled = dataclasses.replace(
                records[0], charged_nu=records[0].charged_nu * 1.5 + 1.0
            )
            records = (mangled,) + records[1:]
        # The stale checksum (and declared count) is what the receiver catches.
        return dataclasses.replace(packet, records=records)

    def send(self, packet: AmiePacket, feed: "ResilientAmieFeed") -> None:
        """Launch one packet toward the endpoint under the fault regime."""
        self.packets_sent += 1
        if self.rng.random() < self.regime.drop_rate:
            self.packets_dropped += 1
            return
        if self.rng.random() < self.regime.corrupt_rate:
            packet = self._corrupt(packet)
        deliveries = 1
        if self.rng.random() < self.regime.duplicate_rate:
            self.packets_duplicated += 1
            deliveries = 2
        for _ in range(deliveries):
            delay = self._transit_delay()
            if self.rng.random() < self.regime.reorder_rate:
                self.packets_reordered += 1
                delay += self.regime.reorder_delay
            self.sim.process(
                self._deliver(packet, feed, delay),
                name=f"amie-transit:{packet.feed_id}:{packet.seq}",
            )

    def _deliver(self, packet: AmiePacket, feed: "ResilientAmieFeed", delay: float):
        yield self.sim.timeout(delay)
        acked = self.endpoint.receive(packet, at=self.sim.now)
        if not acked:
            return  # quarantined: no ack, the sender's retransmit covers it
        if self.rng.random() < self.regime.effective_ack_drop_rate:
            self.acks_dropped += 1
            return
        yield self.sim.timeout(self._transit_delay())
        feed.handle_ack(packet.seq)


@dataclass(frozen=True)
class FeedAudit:
    """One feed's slice of the reconciliation audit."""

    feed_id: str
    published: int
    delivered: int
    missing_before: int
    resent: int
    recovered: int
    unrecovered: int


@dataclass
class ReconciliationReport:
    """Outcome of the end-of-run central-vs-site-ledgers audit."""

    audits: list[FeedAudit]
    resend_enabled: bool

    @property
    def total_missing_before(self) -> int:
        return sum(a.missing_before for a in self.audits)

    @property
    def total_resent(self) -> int:
        return sum(a.resent for a in self.audits)

    @property
    def total_recovered(self) -> int:
        return sum(a.recovered for a in self.audits)

    @property
    def total_unrecovered(self) -> int:
        return sum(a.unrecovered for a in self.audits)


class AmieIngestEndpoint:
    """The central database's receive side: validate, dedup, ingest, audit.

    Idempotence is layered: replayed *sequence numbers* are skipped before
    ingest (packet-level), and :meth:`CentralAccountingDB.ingest` skips
    duplicate job ids (record-level) — so a retransmit racing its own
    original can never double-charge.
    """

    packets_received = CounterAttr("_packets_received")
    packets_accepted = CounterAttr("_packets_accepted")
    packets_duplicate = CounterAttr("_packets_duplicate")
    packets_quarantined = CounterAttr("_packets_quarantined")
    records_accepted = CounterAttr("_records_accepted")
    records_duplicate = CounterAttr("_records_duplicate")

    def __init__(
        self,
        central: CentralAccountingDB,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.central = central
        self._seen: dict[str, set[int]] = {}
        self.quarantine: list[QuarantinedPacket] = []
        # The endpoint's counters are the oracle's ``ingest.*`` invariant
        # family: they live unprefixed-by-instance in the run registry (one
        # central database per run) so every consumer reads the same cells.
        self._registry = metrics if metrics is not None else MetricsRegistry()
        scope = self._registry.scoped("ingest")
        self._packets_received = scope.counter("packets_received")
        self._packets_accepted = scope.counter("packets_accepted")
        self._packets_duplicate = scope.counter("packets_duplicate")
        self._packets_quarantined = scope.counter("packets_quarantined")
        self._records_accepted = scope.counter("records_accepted")
        self._records_duplicate = scope.counter("records_duplicate")
        self._feed_scope = scope.scoped("feed")
        self.reconciliation: Optional[ReconciliationReport] = None

    def _feed_counter(self, feed_id: str, leaf: str):
        return self._feed_scope.scoped(feed_id).counter(leaf)

    def _feed_counts(self, leaf: str) -> dict[str, int]:
        """Per-feed counter view (``ingest.feed.<feed_id>.<leaf>`` cells)."""
        counts: dict[str, int] = {}
        prefix = "ingest.feed."
        for name, instrument in self._registry.family("ingest.feed"):
            head, _, tail = name.rpartition(".")
            if tail == leaf:
                counts[head[len(prefix):]] = instrument.value
        return counts

    @property
    def records_accepted_by_feed(self) -> dict[str, int]:
        return self._feed_counts("records_accepted")

    @property
    def records_recovered_by_feed(self) -> dict[str, int]:
        return self._feed_counts("records_recovered")

    def receive(self, packet: AmiePacket, at: float = 0.0) -> bool:
        """Process one arriving packet; returns whether to acknowledge it."""
        self.packets_received += 1
        if len(packet.records) != packet.declared_records:
            self._quarantine(
                packet,
                reason="truncated",
                detail=(
                    f"declared {packet.declared_records} records, "
                    f"carried {len(packet.records)}"
                ),
                at=at,
            )
            return False
        if packet.checksum != packet_checksum(packet.records):
            self._quarantine(
                packet,
                reason="corrupted",
                detail="content checksum mismatch",
                at=at,
            )
            return False
        seen = self._seen.setdefault(packet.feed_id, set())
        if packet.seq in seen:
            # Replay (retransmit or wire duplicate): skip, but re-ack so the
            # sender stops resending.
            self.packets_duplicate += 1
            return True
        seen.add(packet.seq)
        added, duplicates = self.central.ingest(packet.records)
        self.packets_accepted += 1
        self.records_accepted += added
        self.records_duplicate += duplicates
        self._feed_counter(packet.feed_id, "records_accepted").inc(added)
        return True

    def _quarantine(
        self, packet: AmiePacket, reason: str, detail: str, at: float
    ) -> None:
        self.packets_quarantined += 1
        self.quarantine.append(
            QuarantinedPacket(
                feed_id=packet.feed_id,
                seq=packet.seq,
                reason=reason,
                detail=detail,
                n_records=len(packet.records),
                received_at=at,
            )
        )

    def delivered_records(self, feed_id: str) -> int:
        """Records from ``feed_id`` that made it into the central DB."""
        return self.records_accepted_by_feed.get(
            feed_id, 0
        ) + self.records_recovered_by_feed.get(feed_id, 0)

    def reconcile(
        self, feeds: Sequence["ResilientAmieFeed"], resend: bool = True
    ) -> ReconciliationReport:
        """Diff central state against every site ledger; optionally re-send.

        The audit is out-of-band (a bulk ledger exchange, not the packet
        path), so its re-sends are reliable: with ``resend`` every record a
        site ever published ends up centrally recorded exactly once, which
        is the zero-unrecovered guarantee the A5 ablation pins.
        """
        audits = []
        for feed in feeds:
            known = self.central.job_ids()
            missing = [r for r in feed.ledger if r.job_id not in known]
            resent = recovered = 0
            if resend and missing:
                added, _duplicates = self.central.ingest(missing)
                resent = len(missing)
                recovered = added
                self._feed_counter(feed.feed_id, "records_recovered").inc(added)
                feed.settle()
            still_known = self.central.job_ids()
            unrecovered = sum(
                1 for r in feed.ledger if r.job_id not in still_known
            )
            audits.append(
                FeedAudit(
                    feed_id=feed.feed_id,
                    published=len(feed.ledger),
                    delivered=self.delivered_records(feed.feed_id),
                    missing_before=len(missing),
                    resent=resent,
                    recovered=recovered,
                    unrecovered=unrecovered,
                )
            )
        report = ReconciliationReport(audits=audits, resend_enabled=resend)
        self.reconciliation = report
        return report


class ResilientAmieFeed:
    """A site's accounting feed over a faulty transport.

    Same surface as :class:`~repro.infra.accounting.AmieFeed` (``publish``,
    ``drain``, ``buffered``, ``batches_sent``, ``on_flush``) plus the
    recovery machinery: sequence numbers, an outbox of unacknowledged
    packets, deterministic-backoff retransmission, and a site-side ledger
    (`ledger`) recording every record ever published — the reconciliation
    audit's ground truth.
    """

    batches_sent = CounterAttr("_batches_sent")
    retransmits = CounterAttr("_retransmits")
    records_published = CounterAttr("_records_published")

    def __init__(
        self,
        sim: Simulator,
        endpoint: AmieIngestEndpoint,
        feed_id: str,
        regime: PacketFaultRegime,
        policy: IngestRecoveryPolicy,
        rng,
        interval: float = 6 * HOUR,
        on_flush: Optional[Callable[[list[UsageRecord]], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.endpoint = endpoint
        self.feed_id = feed_id
        self.policy = policy
        self.interval = interval
        self.on_flush = on_flush
        # ``amie.<feed_id>.*`` counters; the transport's land one scope
        # deeper under ``amie.<feed_id>.transport.*``.
        registry = metrics if metrics is not None else MetricsRegistry()
        scope = registry.scoped(f"amie.{feed_id}")
        self._batches_sent = scope.counter("batches_sent")
        self._retransmits = scope.counter("retransmits")
        self._records_published = scope.counter("records_published")
        self.transport = FaultyTransport(
            sim, endpoint, regime, rng, metrics=scope.scoped("transport")
        )
        self._buffer: list[UsageRecord] = []
        self.ledger: list[UsageRecord] = []
        self._next_seq = 0
        self._outbox: dict[int, AmiePacket] = {}
        self.acked: set[int] = set()
        sim.process(self._pump(), name=f"amie-feed:{feed_id}")

    # -- the AmieFeed surface -------------------------------------------------
    def publish(self, record: UsageRecord) -> None:
        self._buffer.append(record)
        self.ledger.append(record)
        self.records_published += 1

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def drain(self) -> int:
        """Flush the buffer into one sequenced packet; returns records sent.

        A post-horizon drain (the end-of-run flush) still launches the
        packet, but the simulator is no longer stepping, so it stays in
        flight — the "lost at shutdown" class only the reconciliation audit
        recovers.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        packet = AmiePacket.make(self.feed_id, self._next_seq, batch)
        self._next_seq += 1
        self._send(packet, attempt=1)
        self.batches_sent += 1
        if self.on_flush is not None:
            self.on_flush(batch)
        return len(batch)

    def _pump(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.drain()

    # -- sequencing, acks, retransmission ------------------------------------
    def _send(self, packet: AmiePacket, attempt: int) -> None:
        self._outbox[packet.seq] = packet
        self.transport.send(packet, self)
        if self.policy.retransmit and attempt < self.policy.max_attempts:
            self.sim.process(
                self._await_ack(packet, attempt),
                name=f"amie-ack-watch:{self.feed_id}:{packet.seq}",
            )

    def _await_ack(self, packet: AmiePacket, attempt: int):
        backoff = self.policy.ack_timeout * (
            self.policy.backoff_factor ** (attempt - 1)
        )
        yield self.sim.timeout(backoff)
        if packet.seq in self.acked:
            return
        self.retransmits += 1
        self._send(packet, attempt + 1)

    def handle_ack(self, seq: int) -> None:
        self.acked.add(seq)
        self._outbox.pop(seq, None)

    def settle(self) -> None:
        """Close the books after a reconciliation re-send covered the outbox."""
        for seq in list(self._outbox):
            self.acked.add(seq)
            self._outbox.pop(seq, None)

    @property
    def unacked(self) -> int:
        """Packets sent but never acknowledged (in flight, lost, or refused)."""
        return len(self._outbox)
