"""Tests for the information service and metascheduler."""

import numpy as np
import pytest

import repro.infra as I
from repro.infra.job import Job
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.units import HOUR, MINUTE
from repro.sim import Simulator


def make_federation(n_sites=3, nodes=4):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"alice"})
    central = I.CentralAccountingDB()
    providers = [
        I.ResourceProvider(
            sim,
            I.Cluster(f"site{i}", nodes=nodes, cores_per_node=1),
            ledger,
            central,
        )
        for i in range(n_sites)
    ]
    return sim, providers


def job(cores=1, walltime=HOUR):
    return Job(user="alice", account="acct", cores=cores, walltime=walltime,
               true_runtime=walltime)


def test_info_service_publishes_periodically():
    sim, providers = make_federation()
    info = I.InformationService(sim, providers, publish_interval=5 * MINUTE)
    providers[0].submit(job(cores=4, walltime=10 * HOUR))
    # Snapshot is stale until the next publication.
    assert info.query("site0")["running_jobs"] == 0
    sim.run(until=6 * MINUTE)
    assert info.query("site0")["running_jobs"] == 1
    assert info.staleness("site0") <= 5 * MINUTE + 1


def test_info_service_validation():
    sim, providers = make_federation()
    with pytest.raises(ValueError):
        I.InformationService(sim, providers, publish_interval=0.0)
    with pytest.raises(ValueError):
        I.InformationService(sim, [])
    info = I.InformationService(sim, providers)
    with pytest.raises(KeyError):
        info.query("nowhere")


def test_random_strategy_requires_rng():
    _, providers = make_federation()
    with pytest.raises(ValueError):
        I.Metascheduler(providers, SelectionStrategy.RANDOM)


def test_least_loaded_requires_info_service():
    _, providers = make_federation()
    with pytest.raises(ValueError):
        I.Metascheduler(providers, SelectionStrategy.LEAST_LOADED)


def test_round_robin_cycles_sites():
    _, providers = make_federation(n_sites=3)
    meta = I.Metascheduler(providers, SelectionStrategy.ROUND_ROBIN)
    picks = [meta.select(job()).name for _ in range(6)]
    assert picks == ["site0", "site1", "site2", "site0", "site1", "site2"]


def test_selection_skips_too_small_sites():
    _, providers = make_federation(n_sites=2, nodes=4)
    big_site = providers[1]
    # Make site1 bigger so only it fits the large job.
    sim = big_site.sim
    meta = I.Metascheduler(providers, SelectionStrategy.ROUND_ROBIN)
    with pytest.raises(ValueError):
        meta.select(job(cores=100))
    small = job(cores=4)
    assert meta.select(small).name in {"site0", "site1"}


def test_predicted_start_picks_idle_site():
    sim, providers = make_federation(n_sites=2)
    # Load site0 heavily.
    for _ in range(5):
        providers[0].submit(job(cores=4, walltime=10 * HOUR))
    meta = I.Metascheduler(providers, SelectionStrategy.PREDICTED_START)
    assert meta.select(job()).name == "site1"


def test_least_loaded_uses_stale_snapshots():
    sim, providers = make_federation(n_sites=2)
    info = I.InformationService(sim, providers, publish_interval=1 * HOUR)
    meta = I.Metascheduler(
        providers,
        SelectionStrategy.LEAST_LOADED,
        info_service=info,
    )
    # Queue work on site0 *after* the initial publication: the stale view
    # still says both sites are empty, so ties break by name -> site0.
    for _ in range(5):
        providers[0].submit(job(cores=4, walltime=10 * HOUR))
    assert meta.select(job()).name == "site0"
    sim.run(until=1 * HOUR + 1)
    assert meta.select(job()).name == "site1"  # fresh view sees the load


def test_random_strategy_selects_uniformly():
    _, providers = make_federation(n_sites=2)
    meta = I.Metascheduler(
        providers, SelectionStrategy.RANDOM, rng=np.random.default_rng(7)
    )
    picks = {meta.select(job()).name for _ in range(50)}
    assert picks == {"site0", "site1"}


def test_submit_forwards_to_chosen_site():
    sim, providers = make_federation(n_sites=2)
    meta = I.Metascheduler(providers, SelectionStrategy.ROUND_ROBIN)
    j = job()
    chosen = meta.submit(j)
    assert j.resource == chosen.name
    assert meta.selections[chosen.name] == 1
