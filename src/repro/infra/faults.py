"""Hardware fault injection.

Large machines lose nodes continuously; a node loss kills whatever job owns
it.  :class:`NodeFailureInjector` models that as a Poisson process over a
cluster's *busy* nodes: each running job is exposed in proportion to the
nodes it holds, and a struck job dies in :attr:`JobState.FAILED` (the
scheduler frees its nodes and accounting charges the time actually used —
failure semantics identical to an application crash, which is exactly how
2010-era accounting saw node losses).
"""

from __future__ import annotations

import numpy as np

from repro.infra.scheduler.base import BatchScheduler
from repro.infra.units import HOUR
from repro.sim import Simulator

__all__ = ["NodeFailureInjector"]


class NodeFailureInjector:
    """Kills running jobs at a per-node MTBF.

    ``node_mtbf`` is the mean time between failures of a *single node*; the
    instantaneous kill rate is ``busy_nodes / node_mtbf``.  The injector
    polls at ``tick`` resolution (thinning a Poisson process), which keeps it
    independent of the scheduler's internals.
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler: BatchScheduler,
        rng: np.random.Generator,
        node_mtbf: float = 5000 * HOUR,
        tick: float = 0.25 * HOUR,
    ) -> None:
        if node_mtbf <= 0 or tick <= 0:
            raise ValueError("node_mtbf and tick must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.rng = rng
        self.node_mtbf = node_mtbf
        self.tick = tick
        self.failures_injected = 0
        sim.process(self._inject(sim), name="fault-injector")

    def _inject(self, sim: Simulator):
        while True:
            yield sim.timeout(self.tick)
            running = list(self.scheduler.running.values())
            if not running:
                continue
            busy_nodes = sum(entry.nodes for entry in running)
            # Probability at least one of the busy nodes fails this tick.
            p_failure = 1.0 - np.exp(-busy_nodes * self.tick / self.node_mtbf)
            if self.rng.random() >= p_failure:
                continue
            # The victim is node-weighted: big jobs absorb more failures.
            weights = np.array([entry.nodes for entry in running], dtype=float)
            victim = running[
                int(self.rng.choice(len(running), p=weights / weights.sum()))
            ]
            victim.runner.interrupt("node_failure")
            self.failures_injected += 1
