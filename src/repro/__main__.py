"""Command-line entry point: regenerate tables/figures from the terminal.

Usage::

    python -m repro list                # show the experiment index
    python -m repro run T1              # regenerate one table/figure
    python -m repro run T1 --days 30    # ...with reduced horizon
    python -m repro run R1 --jobs 4     # fan its replicates over 4 workers
    python -m repro run-all --fast      # the full suite, parallel + cached
    python -m repro run-all --resume 20260806-101500-ab12cd
    python -m repro cache info          # result-cache location and size
    python -m repro taxonomy            # print the modality taxonomy
    python -m repro profile T2          # event-kernel hot-path table
    python -m repro stats               # render the latest telemetry sidecar

``run-all`` and ``run`` accept ``--jobs N`` (default: ``REPRO_JOBS`` env,
then CPU count), ``--no-cache``, ``--task-timeout SECONDS``, ``--retries N``,
``--no-artifacts`` / ``--artifacts-dir`` (the campaign artifact store behind
the runner's simulate-once/measure-everywhere two-stage DAG) and
``--timings`` (per-stage wall-clock and campaign dedup counters on stderr).  ``run-all`` additionally journals its progress under
``<runs-dir>/<run-id>/journal.jsonl`` (``--runs-dir``, default ``runs/`` or
``REPRO_RUNS_DIR``) so an interrupted sweep can be continued with
``--resume <run-id>`` — completed tasks are skipped via the result cache
and only pending or failed ones re-run.  Reports are written without
timing lines so the bytes are identical at any ``--jobs`` value; timing,
cache and fault-tolerance summaries go to stderr instead.

Chaos testing: set ``REPRO_CHAOS=kill:p,hang:p,corrupt:p`` to inject
worker kills, hangs and cache corruption; the sweep must still complete
with byte-identical reports (that is the point).
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every task; do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock limit per task; overruns are retried, "
                             "then recorded as failures (default: unlimited)")
    parser.add_argument("--retries", type=int, default=4, metavar="N",
                        help="retries per task after transient failures — worker "
                             "crashes and timeouts, never task exceptions (default: 4)")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="disable the campaign artifact store: every task "
                             "re-simulates its campaign (slower, same bytes)")
    parser.add_argument("--artifacts-dir", default=None,
                        help="campaign artifact store directory (default: "
                             "<cache-dir>/artifacts or REPRO_ARTIFACT_DIR)")
    parser.add_argument("--timings", action="store_true",
                        help="print per-stage wall-clock and campaign dedup "
                             "counters to stderr")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL telemetry sidecar (wall-domain "
                             "spans/events/metrics; never changes report bytes)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="scale tier: simulate campaigns as population "
                             "cells grouped into up to N stage-1 tasks, merged "
                             "deterministically (default: whole-campaign runs; "
                             "an execution knob — any N gives the same bytes)")


def _build_runner(args, journal=None, resume_keys=(), run_id=None):
    from repro.obs.telemetry import Telemetry
    from repro.runner import (
        ArtifactStore,
        ParallelRunner,
        ResultCache,
        RetryPolicy,
        chaos_from_env,
    )

    chaos_from_env()  # fail fast on a malformed REPRO_CHAOS spec
    if args.retries < 0:
        raise ValueError("--retries must be >= 0")
    cache = None
    if not args.no_cache and args.cache_dir:
        cache = ResultCache(root=args.cache_dir)
    artifacts = None
    if not args.no_cache and not args.no_artifacts:
        artifacts = ArtifactStore(root=_artifact_root(args))
    return ParallelRunner(
        jobs=args.jobs,
        cache=cache,
        use_cache=not args.no_cache,
        task_timeout=args.task_timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        journal=journal,
        resume_keys=resume_keys,
        artifacts=artifacts,
        telemetry=Telemetry(run_id=run_id),
        # Per-task sim tracing only when a sidecar was asked for explicitly:
        # the default path keeps the kernel's no-tracer fast path.
        trace_sim=getattr(args, "trace", None) is not None,
        shards=getattr(args, "shards", None),
    )


def _artifact_root(args):
    """``--artifacts-dir`` > ``<--cache-dir>/artifacts`` > env/default."""
    from pathlib import Path

    from repro.runner import default_artifact_dir

    if getattr(args, "artifacts_dir", None):
        return Path(args.artifacts_dir)
    if getattr(args, "cache_dir", None):
        return Path(args.cache_dir) / "artifacts"
    return default_artifact_dir()


def _fault_note(runner) -> str:
    """Stderr-only fault-tolerance summary (empty when nothing happened)."""
    parts = []
    if runner.retries:
        parts.append(f"retries: {runner.retries}")
    if runner.pool_deaths:
        parts.append(f"pool-deaths: {runner.pool_deaths}")
    if runner.degraded_tasks:
        parts.append(f"degraded: {len(runner.degraded_tasks)}")
    if runner.resume_skipped:
        parts.append(f"resumed: {runner.resume_skipped} skipped")
    if runner.campaign_failures:
        parts.append(f"campaign-stage-failures: {len(runner.campaign_failures)}")
    if runner.failures:
        parts.append(f"failed: {len(runner.failures)}")
    return (", " + ", ".join(parts)) if parts else ""


def _print_timings(runner) -> None:
    """``--timings``: the telemetry view of stage/campaign data, on stderr.

    The numbers come from the same terminal wall-summary record the JSONL
    sidecar carries — the stderr lines are a rendering of telemetry, not a
    parallel bookkeeping path.
    """
    from repro.obs.telemetry import Telemetry, timings_lines

    telemetry = runner.telemetry if runner.telemetry is not None else Telemetry()
    for line in timings_lines(telemetry.finish(runner)):
        print(line, file=sys.stderr)


def _write_sidecar(runner, path) -> None:
    """``--trace FILE``: persist the run's telemetry sidecar."""
    if runner.telemetry is None or not path:
        return
    written = runner.telemetry.write_jsonl(path)
    print(f"[telemetry sidecar written to {written}]", file=sys.stderr)


def _print_last_run_rates(args) -> None:
    """``cache stats``: hit rates of the latest run, from its sidecar.

    The sidecar's ``cache`` block is a snapshot of the registry-backed
    :class:`~repro.runner.cache.CacheStats`; campaign reuse comes from the
    same terminal summary.  Silent no-op when no run has left telemetry.
    """
    sidecar = _latest_sidecar(args)
    if sidecar is None:
        return
    from repro.obs import read_sidecar, sidecar_summary

    try:
        summary = sidecar_summary(read_sidecar(sidecar))
    except (OSError, ValueError):
        return
    cache = summary.get("cache")
    if cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 0.0
        print(f"last run:     {cache.get('hits', 0)} hits, "
              f"{cache.get('misses', 0)} misses ({rate:.1%} hit rate)")
    stats = summary.get("campaign_stats")
    if stats and stats.get("distinct"):
        reused = stats.get("reused", 0)
        rate = reused / stats["distinct"]
        print(f"              {stats['distinct']} campaigns, {reused} reused "
              f"({rate:.1%} artifact/memo reuse)")


def _latest_sidecar(args):
    """Newest ``<runs-dir>/<run-id>/telemetry.jsonl`` by write time.

    Run ids only timestamp to the second (the suffix is random), so two
    quick runs can tie lexically; the file mtime breaks the tie.
    """
    from pathlib import Path

    from repro.runner import default_runs_dir

    runs_dir = (
        Path(args.runs_dir)
        if getattr(args, "runs_dir", None)
        else default_runs_dir()
    )
    if not runs_dir.is_dir():
        return None
    # Deterministic tie-break: mtime first, then the full path as a string
    # (run-id lexicographic), so two sidecars written in the same second
    # cannot flap between invocations.
    candidates = sorted(
        runs_dir.glob("*/telemetry.jsonl"),
        key=lambda path: (path.stat().st_mtime, path.as_posix()),
    )
    return candidates[-1] if candidates else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeraGrid usage-modality reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("taxonomy", help="print the modality taxonomy table")

    report_parser = sub.add_parser(
        "report", help="regenerate every table/figure into one report"
    )
    report_parser.add_argument("--fast", action="store_true",
                               help="reduced horizons (smoke report)")
    report_parser.add_argument("--out", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--only", nargs="*", default=None,
                               help="subset of experiment ids")

    run_all_parser = sub.add_parser(
        "run-all",
        help="regenerate the report with parallel workers, caching and "
             "a resumable run journal",
    )
    run_all_parser.add_argument("--fast", action="store_true",
                                help="reduced horizons (smoke report)")
    run_all_parser.add_argument("--out", default=None,
                                help="write to a file instead of stdout")
    run_all_parser.add_argument("--only", nargs="*", default=None,
                                help="subset of experiment ids")
    run_all_parser.add_argument("--resume", default=None, metavar="RUN_ID",
                                help="continue an interrupted run: skip tasks its "
                                     "journal records as completed")
    run_all_parser.add_argument("--runs-dir", default=None,
                                help="run-journal directory (default: REPRO_RUNS_DIR or ./runs)")
    run_all_parser.add_argument("--no-journal", action="store_true",
                                help="do not write a run journal (run cannot be resumed)")
    _add_parallel_flags(run_all_parser)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. T1, F3")
    run_parser.add_argument("--days", type=float, default=None,
                            help="override the simulated horizon")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the master seed")
    _add_parallel_flags(run_parser)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="run random federation scenarios against the invariant oracle",
    )
    fuzz_parser.add_argument("--budget", type=int, default=50, metavar="N",
                             help="scenarios to draw and simulate (default: 50)")
    fuzz_parser.add_argument("--seed", type=int, default=0, metavar="S",
                             help="fuzzing seed; the whole run — and any "
                                  "failure — replays from it (default: 0)")
    fuzz_parser.add_argument("--max-days", type=float, default=6.0,
                             metavar="D",
                             help="longest simulated horizon per scenario "
                                  "(default: 6)")

    scenario_parser = sub.add_parser(
        "scenario",
        help="list or run the shipped federation-scenario library",
    )
    scenario_parser.add_argument(
        "action", choices=["list", "run"],
        help="list: show library entries; run: simulate one and print its "
             "oracle report",
    )
    scenario_parser.add_argument("name", nargs="?", default=None,
                                 help="library entry (for run), or a path to "
                                      "a scenario YAML document")
    scenario_parser.add_argument("--days", type=float, default=None,
                                 help="override the program's horizon")
    scenario_parser.add_argument("--seed", type=int, default=None,
                                 help="override the program's seed")
    scenario_parser.add_argument("--shards", type=int, default=None,
                                 help="simulate via population cells merged "
                                      "deterministically (default: the "
                                      "program's own shards knob)")

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or clear the result cache and campaign artifact store",
    )
    cache_parser.add_argument(
        "action", choices=["info", "clear", "stats", "gc"],
        help="info/clear: the result cache; stats: result cache + artifact "
             "store counts and bytes; gc: prune artifacts whose code-version "
             "no longer matches the working tree",
    )
    cache_parser.add_argument("--cache-dir", default=None,
                              help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_parser.add_argument("--artifacts-dir", default=None,
                              help="artifact store directory (default: "
                                   "<cache-dir>/artifacts or REPRO_ARTIFACT_DIR)")
    cache_parser.add_argument("--runs-dir", default=None,
                              help="run-journal directory searched for the "
                                   "latest telemetry sidecar (default: "
                                   "REPRO_RUNS_DIR or ./runs)")

    profile_parser = sub.add_parser(
        "profile",
        help="run one experiment serially under the sim tracer and print "
             "the event-kernel hot-path table",
    )
    profile_parser.add_argument("experiment", help="e.g. T2 or t2_usage")
    profile_parser.add_argument("--days", type=float, default=None,
                                help="override the simulated horizon")
    profile_parser.add_argument("--seed", type=int, default=None,
                                help="override the master seed")
    profile_parser.add_argument("--top", type=int, default=10, metavar="N",
                                help="rows per ranking table (default: 10)")
    profile_parser.add_argument("--chrome", default=None, metavar="FILE",
                                help="also write Chrome trace-event JSON "
                                     "(open in chrome://tracing or Perfetto)")
    profile_parser.add_argument("--span-cap", type=int, default=None,
                                metavar="N",
                                help="per-process span retention cap; "
                                     "aggregates are never capped")
    profile_parser.add_argument("--json", default=None, metavar="FILE",
                                dest="json_out",
                                help="also write a machine-readable profile "
                                     "(wall seconds, sim events, events/sec, "
                                     "host cores) in the BENCH_<id>.json shape")

    stats_parser = sub.add_parser(
        "stats",
        help="render a run's telemetry sidecar (default: the latest run)",
    )
    stats_parser.add_argument("sidecar", nargs="?", default=None,
                              help="path to a telemetry.jsonl (default: the "
                                   "newest one under the runs dir)")
    stats_parser.add_argument("--runs-dir", default=None,
                              help="run-journal directory (default: "
                                   "REPRO_RUNS_DIR or ./runs)")

    args = parser.parse_args(argv)

    if args.command == "taxonomy":
        from repro.core.report import taxonomy_table

        print(taxonomy_table())
        return 0

    if args.command == "fuzz":
        try:
            from repro.scenarios.fuzz import run_fuzz
        except ImportError as exc:
            print(exc, file=sys.stderr)
            return 2
        try:
            outcome = run_fuzz(
                budget=args.budget,
                seed=args.seed,
                max_days=args.max_days,
                out=sys.stdout,
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        return 0 if outcome.ok else 1

    if args.command == "scenario":
        from repro.scenarios import SCENARIO_LIBRARY, check_scenario, load_program
        from repro.workloads.synthetic import run_scenario

        if args.action == "list":
            for name in sorted(SCENARIO_LIBRARY):
                program = SCENARIO_LIBRARY[name]()
                print(f"{name:28s} days={program.days:<5g} seed={program.seed:<4d} "
                      f"{program.description}")
            return 0
        if args.name is None:
            print("scenario run needs a library name or a YAML path "
                  "(see: repro scenario list)", file=sys.stderr)
            return 2
        try:
            if args.name in SCENARIO_LIBRARY:
                program = SCENARIO_LIBRARY[args.name]()
            else:
                program = load_program(args.name)
        except FileNotFoundError:
            print(f"unknown scenario {args.name!r}: not a library entry "
                  f"(repro scenario list) and no such file", file=sys.stderr)
            return 2
        except (ValueError, ImportError) as exc:
            print(exc, file=sys.stderr)
            return 2
        config = program.compile(seed=args.seed, days=args.days)
        shards = args.shards if args.shards is not None else program.shards
        if shards < 1:
            print(f"--shards must be >= 1, got {shards}", file=sys.stderr)
            return 2
        print(f"scenario: {program.name}")
        if program.description:
            print(f"  {program.description}")
        print(f"  days={config.days:g} seed={config.seed} "
              f"sites={len(config.sites) if config.sites else config.scale}")
        if shards > 1:
            from repro.scenarios import check_merged_artifact
            from repro.workloads.sharding import cell_count, run_scenario_sharded

            artifact = run_scenario_sharded(config, shards=shards)
            report = check_merged_artifact(artifact)
            print(f"  cells={cell_count(config.population)} shards={shards}")
            print(f"  records={len(artifact.records)} "
                  f"nu={artifact.total_nu:.1f}")
        else:
            result = run_scenario(config)
            report = check_scenario(result)
            print(f"  records={len(result.records)} "
                  f"nu={result.central.total_nu():.1f} "
                  f"outages={sum(len(i.outages) for i in result.injectors)}")
        print("invariants:")
        for line in report.summary().splitlines():
            print(f"  {line}")
        if not report.ok:
            for violation in report.violations:
                print(f"  !! {violation}")
        return 0 if report.ok else 1

    if args.command == "profile":
        from repro.obs import (
            chrome_trace_from_tracer,
            profile_experiment,
            render_hot_path_table,
            resolve_experiment_id,
            write_chrome_trace,
        )

        try:
            experiment_id = resolve_experiment_id(args.experiment)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        knobs = {}
        if args.days is not None:
            knobs["days"] = args.days
        if args.seed is not None:
            knobs["seed"] = args.seed
        extra = {"span_cap": args.span_cap} if args.span_cap is not None else {}
        profile_started = time.perf_counter()
        tracer = profile_experiment(experiment_id, knobs, **extra)
        wall_seconds = time.perf_counter() - profile_started
        print(render_hot_path_table(tracer, top=args.top), end="")
        if args.chrome:
            path = write_chrome_trace(
                chrome_trace_from_tracer(tracer), args.chrome
            )
            print(f"[chrome trace written to {path}]", file=sys.stderr)
        if args.json_out:
            import json
            import os

            payload = {
                "bench": "profile",
                "experiment": experiment_id,
                "knobs": knobs,
                "host_cores": os.cpu_count(),
                "wall_seconds": round(wall_seconds, 3),
                "sim_events": tracer.events_total,
                "events_per_second": (
                    round(tracer.events_total / wall_seconds, 1)
                    if wall_seconds > 0 else None
                ),
                "heap_high_water": tracer.heap_high_water,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            }
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"[profile json written to {args.json_out}]", file=sys.stderr)
        return 0

    if args.command == "stats":
        from repro.obs import read_sidecar, render_stats, sidecar_summary

        path = args.sidecar or _latest_sidecar(args)
        if path is None:
            print(
                "no telemetry sidecar found: pass a path, or produce one "
                "with run/run-all --trace (run-all also writes one next to "
                "its journal)",
                file=sys.stderr,
            )
            return 2
        try:
            records = read_sidecar(path)
        except (OSError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"sidecar: {path}")
        print(
            render_stats(
                sidecar_summary(records), run_id=records[0].get("run_id")
            ),
            end="",
        )
        return 0

    if args.command == "cache":
        from repro.runner import ArtifactStore, ResultCache

        cache = ResultCache(root=args.cache_dir) if args.cache_dir else ResultCache()
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached results from {cache.root}")
        elif args.action == "stats":
            store = ArtifactStore(root=_artifact_root(args))
            print(f"cache dir:    {cache.root}")
            print(f"entries:      {len(cache.entries())}")
            print(f"size:         {cache.size_bytes()} bytes")
            print(f"artifact dir: {store.root}")
            print(f"artifacts:    {len(store.entries())}"
                  f" ({len(store.current_entries())} current code version)")
            print(f"quarantined:  {len(store.quarantined_entries())}")
            print(f"artifact size: {store.size_bytes()} bytes")
            print(f"code version: {store.version}")
            _print_last_run_rates(args)
        elif args.action == "gc":
            store = ArtifactStore(root=_artifact_root(args))
            removed = store.gc()
            print(
                f"pruned {removed} stale artifact(s) from {store.root} "
                f"(kept code version {store.version})"
            )
        else:
            entries = cache.entries()
            print(f"cache dir:    {cache.root}")
            print(f"entries:      {len(entries)}")
            print(f"quarantined:  {len(cache.quarantined_entries())}")
            print(f"size:         {cache.size_bytes()} bytes")
            print(f"code version: {cache.version}")
        return 0

    from repro.experiments import registry, run_experiment

    if args.command == "list":
        for experiment_id in sorted(registry):
            doc = (registry[experiment_id].__module__ or "").rsplit(".", 1)[-1]
            print(f"{experiment_id:4s} {doc}")
        return 0

    if args.command == "report":
        from repro.experiments.reporting import generate_report

        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                generate_report(out=handle, fast=args.fast, only=args.only)
            print(f"report written to {args.out}")
        else:
            generate_report(out=sys.stdout, fast=args.fast, only=args.only)
        return 0

    if args.command == "run-all":
        from pathlib import Path

        from repro.experiments.reporting import generate_report
        from repro.runner import RunJournal, default_runs_dir

        runs_dir = Path(args.runs_dir) if args.runs_dir else default_runs_dir()
        journal = None
        resume_keys: frozenset[str] = frozenset()
        try:
            if args.resume:
                if args.no_cache:
                    raise ValueError(
                        "--resume needs the result cache (completed tasks are "
                        "served from it); drop --no-cache"
                    )
                if args.no_journal:
                    raise ValueError("--resume and --no-journal are contradictory")
                journal = RunJournal.resume(runs_dir, args.resume)
                resume_keys = journal.completed_keys()
            elif not args.no_journal:
                journal = RunJournal.create(runs_dir)
            runner = _build_runner(
                args,
                journal=journal,
                resume_keys=resume_keys,
                run_id=journal.run_id if journal is not None else None,
            )
        except (ValueError, FileNotFoundError) as exc:
            print(exc, file=sys.stderr)
            return 2

        if journal is not None:
            journal.record(
                "run-started",
                run_id=journal.run_id,
                only=args.only,
                fast=args.fast,
                jobs=runner.jobs,
                resumed=bool(args.resume),
            )
            print(f"[run {journal.run_id}: journal at {journal.path}]",
                  file=sys.stderr)
        started = time.time()
        try:
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    outputs = generate_report(
                        out=handle, fast=args.fast, only=args.only,
                        runner=runner, timings=False,
                    )
            else:
                outputs = generate_report(
                    out=sys.stdout, fast=args.fast, only=args.only,
                    runner=runner, timings=False,
                )
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        except Exception as exc:
            # Containment of last resort: report, never traceback-crash.
            print(f"run-all failed: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        finally:
            if journal is not None:
                journal.close()
        elapsed = time.time() - started
        stats = runner.cache_stats
        cache_note = f", cache: {stats}" if stats is not None else ", cache: off"
        print(
            f"[run-all: {len(outputs)} experiments, jobs={runner.jobs}"
            f"{cache_note}{_fault_note(runner)}, {elapsed:.1f}s]",
            file=sys.stderr,
        )
        if args.timings:
            _print_timings(runner)
        if journal is not None:
            _write_sidecar(runner, journal.path.parent / "telemetry.jsonl")
        if args.trace:
            _write_sidecar(runner, args.trace)
        for failure in runner.failures:
            print(f"[task failed] {failure.experiment_id}: {failure.describe()}",
                  file=sys.stderr)
        if journal is not None:
            with journal:
                journal.record(
                    "run-completed",
                    run_id=journal.run_id,
                    experiments=len(outputs),
                    failures=len(runner.failures),
                    retries=runner.retries,
                    pool_deaths=runner.pool_deaths,
                    degraded=len(runner.degraded_tasks),
                    resumed_skipped=runner.resume_skipped,
                )
        if args.out:
            print(f"report written to {args.out}")
        return 3 if runner.failures else 0

    knobs = {}
    if args.days is not None:
        knobs["days"] = args.days
    if args.seed is not None:
        knobs["seed"] = args.seed
    use_runner = (
        args.jobs is not None or args.no_cache or args.cache_dir is not None
        or args.task_timeout is not None or args.no_artifacts
        or args.artifacts_dir is not None or args.timings
        or args.trace is not None or args.shards is not None
    )
    try:
        if use_runner:
            runner = _build_runner(args)
            output = runner.run(args.experiment_id.upper(), **knobs)
            if args.timings:
                _print_timings(runner)
            if args.trace:
                _write_sidecar(runner, args.trace)
            if runner.failures:
                print(output)
                for failure in runner.failures:
                    print(f"[task failed] {failure.describe()}", file=sys.stderr)
                return 3
        else:
            output = run_experiment(args.experiment_id.upper(), **knobs)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
