"""The invariant oracle: green on honest runs, loud on doctored ones.

Each doctoring test takes a clean scenario result, corrupts one piece of
state the way a real accounting bug would (a double-shipped AMIE record, a
tampered charge, a drifted kill counter), and asserts the *specific*
invariant trips — so a regression that blinds one check cannot hide behind
the others staying green.
"""

import dataclasses

import pytest

from repro.core.modalities import Modality
from repro.scenarios import (
    FederationDef,
    ModalityMix,
    OracleReport,
    OutageRegime,
    ScenarioProgram,
    Violation,
    check_scenario,
)
from repro.workloads import SiteSpec, run_scenario

FIXTURE = ScenarioProgram(
    name="oracle-fixture",
    days=2.0,
    seed=7,
    federation=FederationDef(
        preset=None,
        sites=(
            SiteSpec("alpha", 8, 4, 1.0, 1.0e9),
            SiteSpec("beta", 6, 4, 1.2, 6.25e8),
        ),
    ),
    mix=ModalityMix(
        total_users=10,
        weights={Modality.BATCH: 2.0, Modality.EXPLORATORY: 1.0,
                 Modality.GATEWAY: 1.0},
    ),
    outages=OutageRegime(
        site_mtbf_days=0.5,
        repair_median_hours=1.0,
        repair_min_hours=0.25,
        repair_max_hours=4.0,
    ),
    scheduler="fcfs",
)


@pytest.fixture
def result():
    return run_scenario(FIXTURE.compile())


def failed(report):
    return {name for name, ok in report.checks.items() if not ok}


def doctor_record(result, index, **changes):
    """Swap one stored record for a corrupted copy (records are frozen)."""
    records = result.central._records
    records[index] = dataclasses.replace(records[index], **changes)
    return records[index]


def test_clean_run_is_green(result):
    assert result.records, "fixture must produce usage records"
    report = check_scenario(result)
    assert report.ok
    assert failed(report) == set()
    # Every invariant family actually ran.
    assert {c.split(".")[0] for c in report.checks} == {
        "conservation", "double_charge", "records", "classifier", "lost_work",
    }


def test_duplicate_record_trips_unique_jobs(result):
    result.central._records.append(result.records[0])
    report = check_scenario(result)
    assert "double_charge.unique_jobs" in failed(report)


def test_tampered_charge_trips_conservation(result):
    doctor_record(result, 0, charged_nu=result.records[0].charged_nu + 1e6)
    report = check_scenario(result)
    bad = failed(report)
    assert "conservation.ledger_vs_central" in bad
    assert "double_charge.nominal_bound" in bad


def test_negative_charge_trips_nominal_bound(result):
    doctor_record(result, 0, charged_nu=-1.0)
    report = check_scenario(result)
    assert "double_charge.nominal_bound" in failed(report)


def test_unknown_resource_trips_known_resource(result):
    doctor_record(result, 0, resource="phantom-machine")
    report = check_scenario(result)
    assert "double_charge.known_resource" in failed(report)


def test_reversed_timestamps_trip_ordering(result):
    record = result.central._records[0]
    doctor_record(result, 0, end_time=record.submit_time - 10.0)
    report = check_scenario(result)
    assert "records.timestamps_ordered" in failed(report)


def test_zero_cores_trips_positive_cores(result):
    doctor_record(result, 0, cores=0)
    report = check_scenario(result)
    assert "records.positive_cores" in failed(report)


def test_unknown_account_trips_known_account(result):
    doctor_record(result, 0, account="slush-fund")
    report = check_scenario(result)
    assert "records.known_account" in failed(report)


def test_drifted_injector_counter_trips_consistency(result):
    assert result.injectors, "outage fixture must install injectors"
    result.injectors[0].jobs_killed += 1
    report = check_scenario(result)
    assert "lost_work.counter_consistent" in failed(report)


def test_drifted_site_counter_trips_site_counter(result):
    result.providers[0].jobs_lost_to_outages += 1
    report = check_scenario(result)
    assert "lost_work.site_counter" in failed(report)


def test_undrained_feed_trips_conservation(result):
    # Emulate a record stuck in a site's AMIE buffer past the final drain.
    provider = result.providers[0]
    provider.feed.publish(result.records[0])
    report = check_scenario(result)
    assert "conservation.feed_drained" in failed(report)


# ---------------------------------------------------------------- report unit


def test_report_and_combines_repeat_records():
    report = OracleReport()
    report.record("inv.a", True)
    report.record("inv.a", False, "broke on job 7")
    report.record("inv.a", True)  # a later success must not mask the failure
    assert report.checks["inv.a"] is False
    assert not report.ok
    assert [str(v) for v in report.violations] == ["inv.a: broke on job 7"]


def test_report_summary_format():
    report = OracleReport()
    report.record("b.second", True)
    report.record("a.first", False, "why")
    assert report.summary() == "FAIL a.first\nok   b.second"
    assert str(Violation("a.first", "why")) == "a.first: why"
