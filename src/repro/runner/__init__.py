"""Parallel experiment execution: process-pool fan-out plus result caching.

The runner treats every experiment as a list of independent tasks (declared
via :func:`repro.experiments.base.register_tasks`, or a synthesized
single-task plan) and executes them either inline (``jobs=1``) or across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Partial results are merged
in task-index order, so the assembled output is byte-identical regardless of
worker count or scheduling order.  An on-disk :class:`ResultCache` keyed by
``(experiment, params-hash, seed, code-version)`` makes re-running a sweep
recompute only what changed.
"""

from repro.runner.cache import CacheStats, ResultCache, code_version
from repro.runner.parallel import ParallelRunner, resolve_jobs

__all__ = [
    "CacheStats",
    "ParallelRunner",
    "ResultCache",
    "code_version",
    "resolve_jobs",
]
