"""T3 — Measurement accuracy: instrumented vs pre-instrumentation classifier.

Shape expectation: near-perfect instrumented F1 everywhere; heuristic F1
remains decent for BATCH/EXPLORATORY/VIZ (structural signals survive) but
the *user counts* diverge wildly for GATEWAY (collapse to community
accounts), which the paired user-count-error columns make explicit.
"""

from __future__ import annotations

from repro.core import (
    AttributeClassifier,
    HeuristicClassifier,
    score_classification,
)
from repro.core.evaluation import user_count_errors
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import modality_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T3")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    truth_jobs = result.truth_by_job()

    instrumented_cls = AttributeClassifier().classify(records)
    heuristic_cls = HeuristicClassifier(
        known_community_accounts=result.community_accounts
    ).classify(records)
    instrumented = score_classification(instrumented_cls, truth_jobs)
    heuristic = score_classification(heuristic_cls, truth_jobs)

    truth_users = result.active_truth_by_identity()
    true_counts = {m: 0 for m in MODALITY_ORDER}
    for modality in truth_users.values():
        true_counts[modality] += 1
    err_instr = user_count_errors(
        instrumented_cls.users_by_modality(), true_counts
    )
    err_heur = user_count_errors(heuristic_cls.users_by_modality(), true_counts)

    text = modality_table(
        {
            "F1 (instrumented)": {
                m: f"{instrumented.f1(m):.3f}" for m in MODALITY_ORDER
            },
            "F1 (no attributes)": {
                m: f"{heuristic.f1(m):.3f}" for m in MODALITY_ORDER
            },
            "user-count err (instr.)": {
                m: f"{100 * err_instr[m]:+.0f}%" for m in MODALITY_ORDER
            },
            "user-count err (no attr.)": {
                m: f"{100 * err_heur[m]:+.0f}%" for m in MODALITY_ORDER
            },
        },
        title=(
            "T3 — Measurement accuracy "
            f"(job accuracy: instrumented {instrumented.accuracy:.3f}, "
            f"no-attributes {heuristic.accuracy:.3f}; {instrumented.n_jobs} jobs)"
        ),
    )
    return ExperimentOutput(
        experiment_id="T3",
        title="Classifier accuracy with and without instrumentation",
        text=text,
        data={
            "instrumented_accuracy": instrumented.accuracy,
            "heuristic_accuracy": heuristic.accuracy,
            "instrumented_f1": {
                m.value: instrumented.f1(m) for m in MODALITY_ORDER
            },
            "heuristic_f1": {m.value: heuristic.f1(m) for m in MODALITY_ORDER},
            "instrumented_user_error": {
                m.value: err_instr[m] for m in MODALITY_ORDER
            },
            "heuristic_user_error": {
                m.value: err_heur[m] for m in MODALITY_ORDER
            },
        },
    )


def _campaigns(params: dict) -> list:
    """The one campaign T3's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T3", _campaigns)
