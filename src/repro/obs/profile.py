"""`repro profile` / `repro stats` rendering: the hot-path table.

This is the diagnostic face of the observability layer: run one experiment
serially under a :class:`~repro.obs.trace.SimTracer`, then render the
event-kernel hot paths (top event types and process types by deterministic
sim-event count, with wall-clock share as nondeterministic color).  The
ROADMAP's scale-tier item starts "profile the event kernel" — this table
is the ranking that decides what gets vectorized first.

Everything here writes to stderr/stdout of the diagnostic subcommands
only; nothing in this module is on the report path.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import DEFAULT_SPAN_CAP, SimTracer, traced_simulation

__all__ = [
    "profile_experiment",
    "render_hot_path_table",
    "render_stats",
    "resolve_experiment_id",
]


def resolve_experiment_id(name: str) -> str:
    """Map a user spelling to a registered experiment id.

    Accepts the canonical id (``T2``), lowercase (``t2``), and the
    descriptive form used in prose (``t2_usage`` → ``T2``).
    """
    from repro.experiments.base import registry

    candidate = name.upper()
    if candidate in registry:
        return candidate
    head = candidate.split("_", 1)[0]
    if head in registry:
        return head
    raise KeyError(
        f"unknown experiment {name!r}; known: {sorted(registry)}"
    )


def profile_experiment(
    experiment_id: str,
    knobs: Optional[dict] = None,
    span_cap: int = DEFAULT_SPAN_CAP,
) -> SimTracer:
    """Run ``experiment_id`` serially under a fresh tracer; return it.

    The shared campaign memo is cleared first so the profile measures real
    simulation work instead of replaying a warm in-process cache.
    """
    from repro.experiments import base

    base._campaign_cache.clear()
    with traced_simulation(span_cap=span_cap) as tracer:
        base.run_via_tasks(experiment_id, **(knobs or {}))
    return tracer


def render_hot_path_table(tracer: SimTracer, top: int = 10) -> str:
    """The event-kernel hot-path table (sim counts rank, wall share colors)."""
    lines = [
        "event kernel hot paths",
        "======================",
        "",
        f"sim events total:     {tracer.events_total}",
        f"event heap high-water: {tracer.heap_high_water}",
        f"wall in callbacks:    {tracer.wall_total:.3f}s"
        " (nondeterministic; diagnostic only)",
        "",
        f"top event types (by sim-event count, top {top})",
        f"  {'rank':>4}  {'event type':<24} {'sim events':>12}  {'wall share':>10}",
    ]
    for rank, (kind, count, share) in enumerate(tracer.hot_events(top), 1):
        lines.append(
            f"  {rank:>4}  {kind:<24} {count:>12}  {share:>9.1%}"
        )
    if tracer.events_total == 0:
        lines.append("  (no events traced)")
    lines += [
        "",
        f"top process types (by resume count, top {top})",
        f"  {'rank':>4}  {'process type':<24} {'resumes':>12}",
    ]
    processes = tracer.hot_processes(top)
    for rank, (kind, count) in enumerate(processes, 1):
        lines.append(f"  {rank:>4}  {kind:<24} {count:>12}")
    if not processes:
        lines.append("  (no process resumes traced)")
    if tracer.spans_dropped:
        lines += [
            "",
            f"note: {tracer.spans_dropped} process spans dropped "
            f"(cap {tracer.span_cap}); aggregates above are complete",
        ]
    return "\n".join(lines) + "\n"


def render_stats(summary: dict, run_id: Optional[str] = None) -> str:
    """Render a sidecar's terminal wall summary for ``repro stats``."""
    lines = ["run statistics", "=============="]
    if run_id:
        lines.append(f"run id: {run_id}")
    stage_seconds = summary.get("stage_seconds") or {}
    if stage_seconds:
        lines += ["", "stage wall-clock:"]
        for stage, seconds in stage_seconds.items():
            lines.append(f"  {stage:<10} {seconds:>8.2f}s")
    stats = summary.get("campaign_stats") or {}
    if stats:
        lines += [
            "",
            "campaigns:",
            f"  distinct    {stats.get('distinct', 0):>6}",
            f"  simulated   {stats.get('simulated', 0):>6}",
            f"  reused      {stats.get('reused', 0):>6}",
            f"  fallbacks   {stats.get('fallbacks', 0):>6}",
            f"  loads       {stats.get('loads', 0):>6}"
            f"  ({stats.get('load_seconds', 0.0):.2f}s)",
        ]
    counters = summary.get("counters") or {}
    if counters:
        lines += ["", "runner counters:"]
        for name in sorted(counters):
            lines.append(f"  {name:<18} {counters[name]:>6}")
    cache = summary.get("cache")
    if cache is not None:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 0.0
        lines += [
            "",
            "result cache:",
            f"  hits        {cache.get('hits', 0):>6}",
            f"  misses      {cache.get('misses', 0):>6}",
            f"  writes      {cache.get('writes', 0):>6}",
            f"  quarantined {cache.get('quarantined', 0):>6}",
            f"  hit rate    {rate:>6.1%}",
        ]
    metrics = summary.get("metrics") or {}
    if metrics:
        lines += ["", f"metrics registry: {len(metrics)} instruments"]
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, dict):
                rendered = ", ".join(
                    f"{key}={value[key]}" for key in sorted(value)
                )
                lines.append(f"  {name} = {{{rendered}}}")
            else:
                lines.append(f"  {name} = {value}")
    return "\n".join(lines) + "\n"
