"""Scenario assembly: federations, populations, full simulation runs."""

from repro.workloads.scenarios import SiteSpec, TERAGRID_2010, federation_specs
from repro.workloads.synthetic import ScenarioConfig, ScenarioResult, run_scenario
from repro.workloads.swf import records_to_swf, swf_to_records
from repro.workloads.replay import ReplayResult, arrivals_from_records, replay

__all__ = [
    "ReplayResult",
    "ScenarioConfig",
    "ScenarioResult",
    "SiteSpec",
    "TERAGRID_2010",
    "arrivals_from_records",
    "federation_specs",
    "records_to_swf",
    "replay",
    "run_scenario",
    "swf_to_records",
]
