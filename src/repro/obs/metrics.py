"""The central metrics registry: one source of truth for counters.

Before this module existed, operational counters were scattered dicts and
bare ``int`` attributes across the federation substrate (`infra.resilience`,
`infra.gateway`, `infra.amie`), the runner (`runner.cache`) and the oracle —
every consumer re-derived totals its own way.  The registry follows the
XDMoD idea of a single queryable metric namespace: every counter, gauge and
histogram has a dotted name (``ingest.packets_received``,
``gateway.nanohub.requests_shed``), components *register* their instruments
once and keep mutating them through normal attribute-style access, and any
consumer — the invariant oracle, a report footer, the telemetry sidecar —
reads the same underlying cells.

Determinism contract: instruments hold plain Python numbers fed exclusively
by simulation events, so a registry snapshot (:meth:`MetricsRegistry.as_dict`)
is a pure function of the scenario seed.  Nothing in this module reads the
wall clock.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = [
    "Counter",
    "CounterAttr",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
]


class CounterAttr:
    """Descriptor exposing a registry :class:`Counter` as a plain int attribute.

    Components that migrated their scattered ``self.count += 1`` ints onto
    the registry keep their exact attribute API through this: reads return
    the cell's value, writes go through :meth:`Counter.set` (so ``+=`` works
    and decrements still fail loudly).  ``slot`` names the instance
    attribute holding the :class:`Counter` cell.
    """

    def __init__(self, slot: str) -> None:
        self.slot = slot

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return getattr(obj, self.slot).value

    def __set__(self, obj, value) -> None:
        getattr(obj, self.slot).set(value)


class Counter:
    """A monotonically-increasing integer cell (decrements are a bug)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        self.value += amount

    def set(self, value: int) -> None:
        """Absolute assignment, for components that mirror legacy ``+=`` code."""
        if value < self.value:
            raise ValueError(
                f"{self.name}: counters only go up ({self.value} -> {value})"
            )
        self.value = value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value that also remembers its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value} hwm={self.high_water}>"


class Histogram:
    """Streaming summary of observed values: count / total / min / max.

    Deliberately bucket-free: the consumers here want totals and extremes
    (e.g. artifact load seconds), and a fixed bucket layout would be one
    more thing to keep deterministic across code versions.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} total={self.total}>"


class MetricsRegistry:
    """Dotted-name instrument registry (get-or-create, type-checked).

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    the name is already registered — that is what makes the registry a
    single source of truth rather than a mirror — and raise if the name is
    registered as a different instrument kind (two components colliding on
    one name is a wiring bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind):
        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"bad metric name {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"{name!r} already registered as "
                    f"{type(existing).__name__}, wanted {kind.__name__}"
                )
            return existing
        instrument = kind(name)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view that prepends ``prefix.`` to every name it registers."""
        return ScopedRegistry(self, prefix)

    # -- read side ------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def value(self, name: str):
        """The instrument's scalar value (histograms report their total)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            raise KeyError(name)
        if isinstance(instrument, Histogram):
            return instrument.total
        return instrument.value

    def family(self, prefix: str) -> Iterator[tuple[str, object]]:
        """Instruments whose name starts with ``prefix.`` (or equals it)."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        for name in self.names():
            if name == prefix or name.startswith(dotted):
                yield name, self._instruments[name]

    def as_dict(self) -> dict:
        """Deterministic flat snapshot (sorted names, plain JSON values)."""
        snapshot: dict = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                snapshot[name] = instrument.value
            elif isinstance(instrument, Gauge):
                snapshot[name] = {
                    "value": instrument.value,
                    "high_water": instrument.high_water,
                }
            else:
                snapshot[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return snapshot


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry` (shared storage)."""

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        if not prefix or prefix.endswith("."):
            raise ValueError(f"bad scope prefix {prefix!r}")
        self._registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._name(name))

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, self._name(prefix))
