"""Bench T5: regenerate the survey-vs-accounting comparison."""

from repro.core.modalities import Modality


def test_t5_survey(regenerate):
    output = regenerate("T5")
    survey = output.data["survey_shares"]
    true = output.data["true_shares"]
    measured = output.data["measured_shares"]
    # Survey over-reports batch and essentially misses gateway users.
    assert survey[Modality.BATCH.value] > true[Modality.BATCH.value]
    assert survey[Modality.GATEWAY.value] < true[Modality.GATEWAY.value] / 2
    # Accounting measurement tracks truth.
    for name, share in true.items():
        assert abs(measured[name] - share) < 0.1
