"""Shared factories for measurement-layer tests."""

import itertools

import pytest

from repro.infra.accounting import UsageRecord
from repro.infra.job import JobState

_ids = itertools.count(10_000)


@pytest.fixture
def make_record():
    """Factory for synthetic usage records with sensible defaults."""

    def factory(
        user="alice",
        account="TG-ALICE",
        resource="ranger",
        queue_name="normal",
        cores=16,
        walltime=7200.0,
        submit=0.0,
        wait=600.0,
        elapsed=3600.0,
        state=JobState.COMPLETED,
        nu=None,
        attributes=None,
        job_id=None,
    ):
        start = None if wait is None else submit + wait
        end = submit + (wait or 0.0) + elapsed if start is not None else submit
        return UsageRecord(
            job_id=next(_ids) if job_id is None else job_id,
            user=user,
            account=account,
            resource=resource,
            queue_name=queue_name,
            cores=cores,
            requested_walltime=walltime,
            submit_time=submit,
            start_time=start,
            end_time=end,
            final_state=state,
            charged_nu=(cores * elapsed / 3600.0) if nu is None else nu,
            attributes=dict(attributes or {}),
        )

    return factory
