"""EASY backfilling (Lifka 1995), the workhorse policy of TeraGrid systems.

The queue head receives a *shadow reservation* at its earliest feasible start
time.  Any later job may start out of order provided it cannot delay that
reservation: either it finishes before the shadow time, or it fits within the
nodes left over once the head's reservation is laid down ("extra" nodes).

This is the invariant the property tests pin down: **backfilling never moves
the head's reserved start later.**

Two reservation-management styles are supported:

* *reactive* (default) — the shadow is recomputed on every pass, so early
  job completions pull the head's start earlier; the head runs the moment
  the machine is actually free.
* *sticky* (``sticky_shadow=True``) — once computed, the head's reservation
  is locked: the head will not start before it even if the machine drains
  early.  This reproduces the fixed-start advance reservations of
  Moab/Maui-era production schedulers, whose bound-based idle gaps are the
  inefficiency the weekly-drain capability policy (experiment F4) was
  invented to avoid.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler.base import BatchScheduler
from repro.sim import Simulator

__all__ = ["EasyBackfillScheduler"]

_EPSILON = 1e-9


class EasyBackfillScheduler(BatchScheduler):
    """EASY backfill over the FIFO arrival order (subclasses may reorder)."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        on_job_end: Optional[Callable[[Job], None]] = None,
        sticky_shadow: bool = False,
        max_eligible_per_user: Optional[int] = None,
    ) -> None:
        super().__init__(
            sim,
            cluster,
            on_job_end=on_job_end,
            max_eligible_per_user=max_eligible_per_user,
        )
        self.sticky_shadow = sticky_shadow
        self._locked_shadow: dict[int, float] = {}

    # -- shadow management --------------------------------------------------
    def _held_by_lock(self, head: Job) -> bool:
        """Whether a sticky reservation forbids starting the head yet."""
        if not self.sticky_shadow:
            return False
        locked = self._locked_shadow.get(head.job_id)
        return locked is not None and self.sim.now < locked - _EPSILON

    def _shadow(self, head: Job) -> float:
        """The head's reserved start time under the configured style."""
        if not self.sticky_shadow:
            return self.earliest_start(head)
        locked = self._locked_shadow.get(head.job_id)
        if locked is None or locked < self.sim.now - _EPSILON:
            # No (valid) reservation yet: lay one down and keep it.
            locked = self.earliest_start(head)
            self._locked_shadow[head.job_id] = locked
        return locked

    def _head_wake_time(self, head: Job) -> float:
        wake = self.earliest_start(head)
        if self.sticky_shadow:
            locked = self._locked_shadow.get(head.job_id)
            if locked is not None:
                wake = max(wake, locked)
        return wake

    # -- policy ----------------------------------------------------------------
    def _policy_pass(self) -> None:
        # Phase 1: start jobs in order while they fit (plain FCFS progress).
        while True:
            order = self._ordered_queue()
            if not order:
                return
            head = order[0]
            if self.can_start_now(head) and not self._held_by_lock(head):
                self._locked_shadow.pop(head.job_id, None)
                self._start(head)
                continue
            break

        # Phase 2: head is blocked. Compute (or recall) its shadow
        # reservation and backfill behind it.
        order = self._ordered_queue()
        head = order[0]
        head_nodes = self.cluster.nodes_for(head.cores)
        shadow_start = self._shadow(head)
        profile = self.build_profile(for_job=head)
        # Nodes free during the head's reserved window once it starts:
        free_at_shadow = profile.available_during(shadow_start, head.walltime)
        extra_nodes = free_at_shadow - head_nodes

        for job in order[1:]:
            if not self.queue:
                return
            nodes = self.cluster.nodes_for(job.cores)
            if nodes > self.free_nodes:
                continue
            if not self.can_start_now(job):
                continue
            ends_before_shadow = self.sim.now + job.walltime <= shadow_start + _EPSILON
            fits_in_extra = nodes <= extra_nodes
            if ends_before_shadow or fits_in_extra:
                self._start(job)
                if fits_in_extra and not ends_before_shadow:
                    extra_nodes -= nodes
