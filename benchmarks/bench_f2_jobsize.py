"""Bench F2: regenerate the job-size CCDF figure."""

from repro.core.modalities import Modality


def ccdf_at(series, size):
    return dict(series).get(float(size), 0.0)


def test_f2_jobsize(regenerate):
    output = regenerate("F2")
    ccdf = output.data["ccdf"]
    # Gateway/exploratory jobs are small; coupled jobs are the largest.
    assert ccdf_at(ccdf[Modality.GATEWAY.value], 64) < 0.05
    assert ccdf_at(ccdf[Modality.EXPLORATORY.value], 64) < 0.10
    assert ccdf_at(ccdf[Modality.COUPLED.value], 64) > 0.5
    # Batch has a heavier large-size tail than exploratory.
    assert ccdf_at(ccdf[Modality.BATCH.value], 128) > ccdf_at(
        ccdf[Modality.EXPLORATORY.value], 128
    )
