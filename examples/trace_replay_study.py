#!/usr/bin/env python
"""Policy study by trace replay.

Generates a workload once (a 10-day campaign), exports it to SWF, then
replays the *same* trace against three scheduling policies on the same
machine — the methodology used for archived Parallel Workloads Archive
traces, demonstrated end to end: simulate → serialize → parse → replay.

Run:  python examples/trace_replay_study.py
"""

import io

from repro.core.report import ascii_table
from repro.infra.cluster import Cluster
from repro.infra.scheduler import (
    EasyBackfillScheduler,
    FairshareScheduler,
    FcfsScheduler,
)
from repro.infra.units import HOUR
from repro.sim import Simulator
from repro.users.population import PopulationSpec
from repro.workloads import (
    ScenarioConfig,
    arrivals_from_records,
    records_to_swf,
    replay,
    run_scenario,
    swf_to_records,
)


def main() -> None:
    print("Generating the source workload (10 days)...")
    source = run_scenario(
        ScenarioConfig(
            scale="small", days=10, seed=33, population=PopulationSpec(scale=0.03)
        )
    )

    # Round-trip through SWF, exactly as an archived trace would arrive.
    buffer = io.StringIO()
    records_to_swf(source.records, buffer)
    buffer.seek(0)
    trace = swf_to_records(buffer)
    print(f"Trace: {len(trace)} jobs serialized and re-parsed.\n")

    cluster = Cluster("replay-mach", nodes=48, cores_per_node=16)
    rows = []
    for label, policy in [
        ("FCFS", FcfsScheduler),
        ("EASY backfill", EasyBackfillScheduler),
        ("EASY + fairshare", FairshareScheduler),
    ]:
        sim = Simulator()
        scheduler = policy(sim, cluster)
        arrivals = arrivals_from_records(trace, max_cores=cluster.total_cores)
        result = replay(sim, scheduler, arrivals)
        rows.append(
            [
                label,
                f"{100 * result.utilization:.1f}%",
                f"{result.median_wait() / HOUR:.2f}h",
                sum(1 for j in result.jobs if j.state.is_terminal),
            ]
        )
    print(
        ascii_table(
            ["policy", "utilization", "median wait", "jobs finished"],
            rows,
            title="Same trace, three policies",
        )
    )


if __name__ == "__main__":
    main()
