"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("T1", "F7", "A1"):
        assert experiment_id in out


def test_taxonomy_prints_table(capsys):
    assert main(["taxonomy"]) == 0
    out = capsys.readouterr().out
    assert "Science-gateway access" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "T99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_executes_experiment(capsys):
    assert main(["run", "f3", "--days", "2", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "F3" in out
    assert "EASY" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_report_subset(capsys):
    assert main(["report", "--fast", "--only", "A1"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "regenerated in" in out


def test_report_unknown_experiment(tmp_path):
    import pytest as _pytest
    with _pytest.raises(KeyError):
        main(["report", "--only", "ZZ"])


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["report", "--fast", "--only", "A2", "--out", str(target)]) == 0
    assert "A2" in target.read_text()
