"""The byte-identity contract: telemetry never touches report bytes.

These are the CI-enforced guarantees from the observability design: a report
produced with tracing on is byte-identical to one produced with tracing off,
at any ``--jobs`` value, and the sim-time slice of the telemetry is stable
across worker counts.
"""

from repro.__main__ import main
from repro.obs.telemetry import read_sidecar, sidecar_summary, validate_sidecar


def _run_all(tmp_path, name, *extra):
    target = tmp_path / name
    code = main(
        ["run-all", "--fast", "--only", "R1", "--out", str(target),
         "--no-cache", "--no-journal", *extra]
    )
    assert code == 0
    return target


def test_report_bytes_identical_with_tracing_on_and_off(tmp_path, capsys):
    untraced = _run_all(tmp_path, "untraced.txt", "--jobs", "1")
    traced = _run_all(
        tmp_path, "traced.txt", "--jobs", "1", "--timings",
        "--trace", str(tmp_path / "trace.jsonl"),
    )
    capsys.readouterr()
    assert traced.read_bytes() == untraced.read_bytes()


def test_report_bytes_identical_traced_across_jobs(tmp_path, capsys):
    serial = _run_all(
        tmp_path, "serial.txt", "--jobs", "1",
        "--trace", str(tmp_path / "serial.jsonl"),
    )
    parallel = _run_all(
        tmp_path, "parallel.txt", "--jobs", "2",
        "--trace", str(tmp_path / "parallel.jsonl"),
    )
    capsys.readouterr()
    assert serial.read_bytes() == parallel.read_bytes()


def test_trace_flag_writes_a_valid_sidecar(tmp_path, capsys):
    from repro.experiments.base import _campaign_cache

    _campaign_cache.clear()  # memoized campaigns would trace zero sim events
    sidecar = tmp_path / "trace.jsonl"
    _run_all(tmp_path, "report.txt", "--jobs", "1", "--trace", str(sidecar))
    captured = capsys.readouterr()
    assert f"telemetry sidecar written to {sidecar}" in captured.err

    records = read_sidecar(sidecar)
    validate_sidecar(records)
    summary = sidecar_summary(records)
    # R1 fast = 3 replicate tasks, each traced and recorded.
    assert summary["metrics"]["runner.tasks_completed"] == 3
    task_spans = [r for r in records if r["type"] == "span" and r["name"] == "task"]
    assert len(task_spans) == 3
    sim_summaries = [r for r in records if r.get("domain") == "sim"]
    assert len(sim_summaries) == 3
    assert all(record["events_total"] > 0 for record in sim_summaries)


def test_sim_domain_telemetry_is_jobs_independent(tmp_path, capsys):
    """Worker count may reshape wall-time, never the sim-time slice.

    Each task's sim-domain summary is a pure function of the task: the
    per-task records shipped back from four pool workers must equal the
    ones the inline (``--jobs 1``) path recorded, key for key.
    """
    from repro.experiments.base import _campaign_cache

    for jobs, name in (("1", "serial.jsonl"), ("4", "parallel.jsonl")):
        # Drop the in-process campaign memo so both legs (and the workers
        # forked for the parallel one) simulate from the same cold start.
        _campaign_cache.clear()
        _run_all(tmp_path, f"report-{jobs}.txt", "--jobs", jobs,
                 "--trace", str(tmp_path / name))
    capsys.readouterr()

    def sim_records(path):
        records = [
            record for record in read_sidecar(path)
            if record.get("domain") == "sim"
        ]
        return sorted(records, key=lambda record: record["task"])

    serial = sim_records(tmp_path / "serial.jsonl")
    parallel = sim_records(tmp_path / "parallel.jsonl")
    assert len(serial) == 3  # R1 fast = 3 replicate tasks, all traced
    assert serial == parallel
