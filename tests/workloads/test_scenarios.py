"""Tests for federation presets and the scenario runner."""

import pytest

from repro.core.modalities import Modality
from repro.infra.scheduler import FcfsScheduler
from repro.users.population import PopulationSpec
from repro.workloads import (
    ScenarioConfig,
    TERAGRID_2010,
    federation_specs,
    run_scenario,
)


def test_presets_have_expected_sizes():
    assert len(federation_specs("small")) == 3
    assert len(federation_specs("medium")) == 5
    assert len(federation_specs("full")) == len(TERAGRID_2010) == 8
    with pytest.raises(ValueError):
        federation_specs("galactic")


def test_teragrid_2010_shape():
    by_name = {s.name: s for s in TERAGRID_2010}
    assert by_name["kraken"].nodes * by_name["kraken"].cores_per_node > (
        by_name["abe"].nodes * by_name["abe"].cores_per_node
    )
    for spec in TERAGRID_2010:
        cluster = spec.cluster()
        assert cluster.total_cores > 0
        assert spec.wan_bandwidth > 0


def test_run_scenario_defaults_and_overrides():
    result = run_scenario(
        days=5, seed=2, population=PopulationSpec(scale=0.02)
    )
    assert result.config.days == 5
    assert result.config.seed == 2
    assert len(result.records) > 0
    assert len(result.providers) == 3  # small federation


def test_run_scenario_is_reproducible():
    config = ScenarioConfig(days=5, seed=9, population=PopulationSpec(scale=0.02))
    a = run_scenario(config)
    b = run_scenario(config)
    # job ids are process-global, so compare everything except the raw ids
    sig_a = [(r.user, r.cores, r.submit_time, r.end_time, r.charged_nu) for r in a.records]
    sig_b = [(r.user, r.cores, r.submit_time, r.end_time, r.charged_nu) for r in b.records]
    assert sig_a == sig_b


def test_run_scenario_different_seeds_differ():
    a = run_scenario(days=5, seed=1, population=PopulationSpec(scale=0.02))
    b = run_scenario(days=5, seed=2, population=PopulationSpec(scale=0.02))
    sig_a = [(r.user, r.cores, r.submit_time) for r in a.records]
    sig_b = [(r.user, r.cores, r.submit_time) for r in b.records]
    assert sig_a != sig_b


def test_truth_by_job_covers_every_record():
    result = run_scenario(days=5, seed=3, population=PopulationSpec(scale=0.02))
    truth = result.truth_by_job()
    for record in result.records:
        assert record.job_id in truth


def test_active_truth_subset_of_population_truth():
    result = run_scenario(days=5, seed=3, population=PopulationSpec(scale=0.02))
    active = result.active_truth_by_identity()
    full = result.truth_by_identity()
    assert set(active) <= set(full)
    for identity, modality in active.items():
        assert full[identity] is modality


def test_scheduler_factory_override():
    result = run_scenario(
        days=3,
        seed=1,
        population=PopulationSpec(scale=0.02),
        scheduler_factory=FcfsScheduler,
    )
    for provider in result.providers:
        assert isinstance(provider.scheduler, FcfsScheduler)


def test_gateway_coverage_zero_leaves_no_tags():
    result = run_scenario(
        days=10,
        seed=4,
        population=PopulationSpec(scale=0.02),
        gateway_tagging_coverage=0.0,
    )
    gateway_records = [
        r
        for r in result.records
        if r.attributes.get("submit_interface") == "gateway"
    ]
    assert gateway_records
    for record in gateway_records:
        assert "gateway_user" not in record.attributes
