"""Experiment plumbing: output container, registry, campaign cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, ScenarioResult, run_scenario

__all__ = [
    "ExperimentOutput",
    "registry",
    "register",
    "run_experiment",
    "campaign",
    "CAMPAIGN_DAYS",
    "CAMPAIGN_SEED",
]

#: The canonical campaign most table experiments share (DESIGN.md §4).
CAMPAIGN_DAYS = 90.0
CAMPAIGN_SEED = 1
CAMPAIGN_SCALE = "small"
CAMPAIGN_POPULATION_SCALE = 0.05


@dataclass
class ExperimentOutput:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    text: str  # rendered tables / series blocks
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


registry: dict[str, Callable[..., ExperimentOutput]] = {}


def register(experiment_id: str):
    """Decorator: add an experiment ``run`` function to the registry."""

    def wrap(func: Callable[..., ExperimentOutput]):
        if experiment_id in registry:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        registry[experiment_id] = func
        return func

    return wrap


def run_experiment(experiment_id: str, **knobs) -> ExperimentOutput:
    try:
        func = registry[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        ) from None
    return func(**knobs)


_campaign_cache: dict[tuple, ScenarioResult] = {}


def campaign(
    days: float = CAMPAIGN_DAYS,
    seed: int = CAMPAIGN_SEED,
    scale: str = CAMPAIGN_SCALE,
    population_scale: float = CAMPAIGN_POPULATION_SCALE,
    gateway_tagging_coverage: float = 1.0,
    gateway_adoption_ramp_days: float = 0.0,
) -> ScenarioResult:
    """The shared campaign, memoized per knob combination.

    Several experiments read different aspects of the same run; caching keeps
    the benchmark suite's wall-clock dominated by distinct simulations only.
    """
    key = (
        days,
        seed,
        scale,
        population_scale,
        gateway_tagging_coverage,
        gateway_adoption_ramp_days,
    )
    if key not in _campaign_cache:
        _campaign_cache[key] = run_scenario(
            ScenarioConfig(
                scale=scale,
                days=days,
                seed=seed,
                population=PopulationSpec(scale=population_scale),
                gateway_tagging_coverage=gateway_tagging_coverage,
                gateway_adoption_ramp_days=gateway_adoption_ramp_days,
            )
        )
    return _campaign_cache[key]
