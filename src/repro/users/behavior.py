"""Behaviour processes: one simulation process per user, per modality.

Each process loops forever (the harness bounds the run with a horizon):
think for an exponential while, then perform one *session* of the user's
modality.  All stochastic draws come from a per-user named stream, so adding
users or modalities never perturbs existing ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

import numpy as np

from repro.core.modalities import Modality
from repro.infra.coalloc import CoAllocator
from repro.infra.gateway import ScienceGateway
from repro.infra.job import AttributeKeys, Job
from repro.infra.metascheduler import Metascheduler
from repro.infra.site import ResourceProvider
from repro.infra.submission import GramSubmitter, LoginSubmitter
from repro.infra.workflow import TaskGraph, WorkflowEngine
from repro.sim import AllOf, AnyOf, RandomStreams, Simulator
from repro.sim.distributions import bounded_lognormal, log2_cores
from repro.users.population import Population, User
from repro.users.profiles import DEFAULT_PROFILES, BehaviorProfile

__all__ = ["SimulationContext", "start_behaviors", "sample_job"]

_ensemble_ids = itertools.count(1)


@dataclass
class SimulationContext:
    """Everything behaviour processes need to act on the federation."""

    sim: Simulator
    streams: RandomStreams
    providers: list[ResourceProvider]
    metascheduler: Metascheduler
    gateways: dict[str, ScienceGateway]
    workflow_engine: WorkflowEngine
    coallocator: CoAllocator
    login: LoginSubmitter = dataclass_field(default_factory=LoginSubmitter)
    gram: GramSubmitter = dataclass_field(default_factory=GramSubmitter)
    #: fraction of CLI submissions that go through GRAM middleware
    gram_fraction: float = 0.15
    #: fraction of batch sessions sent somewhere other than the home site
    roaming_fraction: float = 0.15
    #: gateway end users become active uniformly over this many seconds
    #: (0 = everyone active from the start); models gateway adoption growth
    gateway_adoption_ramp: float = 0.0
    #: fraction of a batch user's sessions that are porting/testing work
    batch_porting_session_prob: float = 0.12
    #: WAN used for input staging (None disables data movement modeling)
    network: Optional["object"] = None

    def provider(self, name: str) -> ResourceProvider:
        for provider in self.providers:
            if provider.name == name:
                return provider
        raise KeyError(f"unknown provider {name!r}")


def sample_job(
    rng: np.random.Generator,
    profile: BehaviorProfile,
    user: User,
    max_cores_cap: Optional[int] = None,
    attributes: Optional[dict] = None,
    priority: float = 0.0,
) -> Job:
    """Draw one job from a profile (cores, runtime, walltime, failure)."""
    cores_cap = profile.max_cores
    if max_cores_cap is not None:
        cores_cap = min(cores_cap, max_cores_cap)
    cores = log2_cores(
        rng,
        profile.min_cores,
        max(cores_cap, profile.min_cores),
        profile.mean_log2_cores,
        profile.sigma_log2_cores,
    )
    runtime = bounded_lognormal(
        rng,
        profile.runtime_median,
        profile.runtime_sigma,
        profile.runtime_min,
        profile.runtime_max,
    )
    will_fail = bool(rng.random() < profile.failure_prob)
    if will_fail:
        # Failures happen early in the run.
        runtime *= float(rng.uniform(0.02, 0.5))
        runtime = max(runtime, 10.0)
    if rng.random() < profile.underestimate_prob:
        walltime = runtime * float(rng.uniform(0.5, 0.95))
    else:
        walltime = runtime * profile.walltime_pad
    return Job(
        user=user.user_id,
        account=user.account,
        cores=cores,
        walltime=max(walltime, 60.0),
        true_runtime=runtime,
        will_fail=will_fail,
        priority=priority,
        attributes=dict(attributes or {}),
        true_modality=profile.modality.value,
        true_user=user.user_id,
    )


def _think(ctx: SimulationContext, rng: np.random.Generator, mean: float):
    return ctx.sim.timeout(float(rng.exponential(mean)))


def _submit_cli(ctx: SimulationContext, rng, site: ResourceProvider, job: Job):
    """Submit via login node or (sometimes) GRAM middleware."""
    if rng.random() < ctx.gram_fraction:
        ctx.gram.submit(site, job)
    else:
        ctx.login.submit(site, job)


def _session_site(ctx: SimulationContext, rng, user: User) -> ResourceProvider:
    """The user's home site, or occasionally somewhere else entirely."""
    home = ctx.provider(user.home_site)
    if len(ctx.providers) > 1 and rng.random() < ctx.roaming_fraction:
        others = [p for p in ctx.providers if p.name != user.home_site]
        return others[int(rng.integers(len(others)))]
    return home


def _stage_inputs(ctx: SimulationContext, rng, user: User,
                  site: ResourceProvider, modality: Modality):
    """Move the session's input data to ``site`` if it lives elsewhere.

    Input sizes are heavy-tailed (tens of GB median); same-site sessions pay
    only a local copy.  Returns the transfer event, or None when no network
    is modelled.
    """
    if ctx.network is None:
        return None
    from repro.sim.distributions import bounded_lognormal

    size = bounded_lognormal(rng, 2e10, 1.5, 1e8, 2e12)
    return ctx.network.transfer(
        user.home_site, site.name, size, tag=modality.value
    )


# ---------------------------------------------------------------- behaviours


def batch_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Production campaigns: a few hours-long jobs per session, wait, repeat.

    Real production users are not pure: a fraction of their sessions is
    porting/testing work (new code version, new machine).  Those sessions
    use the exploratory profile and carry exploratory ground truth, which is
    what makes the residual batch/exploratory split genuinely fallible for
    the classifier (it labels a user's residual jobs as a block).
    """
    rng = ctx.streams.stream(f"user:{user.user_id}")
    porting_profile = DEFAULT_PROFILES[Modality.EXPLORATORY]
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = _session_site(ctx, rng, user)
        stage = _stage_inputs(ctx, rng, user, site, Modality.BATCH)
        if stage is not None:
            yield stage
        if rng.random() < ctx.batch_porting_session_prob:
            for _ in range(int(rng.integers(1, 5))):
                job = sample_job(
                    rng,
                    porting_profile,
                    user,
                    max_cores_cap=site.cluster.total_cores,
                )
                _submit_cli(ctx, rng, site, job)
                yield site.scheduler.wait_for(job)
                yield ctx.sim.timeout(float(rng.uniform(60.0, 600.0)))
            continue
        lo, hi = profile.jobs_per_session
        n_jobs = int(rng.integers(lo, hi + 1))
        waits = []
        for _ in range(n_jobs):
            job = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            _submit_cli(ctx, rng, site, job)
            waits.append(site.scheduler.wait_for(job))
        yield AllOf(ctx.sim, waits)


def exploratory_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Porting: sequential edit-compile-submit loops of tiny failing jobs."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = ctx.provider(user.home_site)  # porting sticks to one machine
        lo, hi = profile.jobs_per_session
        for _ in range(int(rng.integers(lo, hi + 1))):
            job = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            _submit_cli(ctx, rng, site, job)
            yield site.scheduler.wait_for(job)
            # look at the output, tweak, resubmit
            yield ctx.sim.timeout(float(rng.uniform(60.0, 600.0)))


def gateway_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Portal sessions: the gateway submits on the user's behalf."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    assert user.gateway is not None
    gateway = ctx.gateways[user.gateway]
    if ctx.gateway_adoption_ramp > 0:
        # This user discovers the gateway partway through the campaign.
        yield ctx.sim.timeout(float(rng.uniform(0, ctx.gateway_adoption_ramp)))
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = _session_site(ctx, rng, user)
        lo, hi = profile.jobs_per_session
        waits = []
        for _ in range(int(rng.integers(lo, hi + 1))):
            spec = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            job = gateway.submit(
                site,
                gateway_user=user.user_id,
                cores=spec.cores,
                walltime=spec.walltime,
                true_runtime=spec.true_runtime,
                will_fail=spec.will_fail,
                true_modality=profile.modality.value,
            )
            waits.append(site.scheduler.wait_for(job))
        yield AllOf(ctx.sim, waits)


def ensemble_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Sweeps: either a DAG through the workflow engine or a raw burst."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        width = int(rng.integers(profile.sweep_width[0], profile.sweep_width[1] + 1))
        template = sample_job(rng, profile, user)
        if rng.random() < profile.workflow_prob:
            graph = TaskGraph.parameter_sweep(
                f"{user.user_id}-sweep",
                width=width,
                cores=template.cores,
                walltime=template.walltime,
                true_runtime=template.true_runtime,
                output_bytes=1e8,
            )
            proc = ctx.workflow_engine.run(
                graph,
                user=user.user_id,
                account=user.account,
                true_modality=profile.modality.value,
            )
            yield proc
        else:
            site = _session_site(ctx, rng, user)
            ensemble_id = f"ens-{next(_ensemble_ids)}"
            waits = []
            for _ in range(width):
                job = sample_job(
                    rng,
                    profile,
                    user,
                    max_cores_cap=site.cluster.total_cores,
                    attributes={AttributeKeys.ENSEMBLE_ID: ensemble_id},
                )
                # Sweep members share the template's size (that is what
                # makes it a sweep) but keep their own runtimes.
                job.cores = min(template.cores, site.cluster.total_cores)
                _submit_cli(ctx, rng, site, job)
                waits.append(site.scheduler.wait_for(job))
                yield ctx.sim.timeout(float(rng.uniform(5.0, 60.0)))
            yield AllOf(ctx.sim, waits)


def viz_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Interactive sessions: needed now; cancelled if the queue is slow."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = ctx.provider(user.home_site)
        job = sample_job(
            rng,
            profile,
            user,
            max_cores_cap=site.cluster.total_cores,
            attributes={AttributeKeys.INTERACTIVE: True},
            priority=100.0,  # interactive queues boost priority
        )
        _submit_cli(ctx, rng, site, job)
        completion = site.scheduler.wait_for(job)
        patience = ctx.sim.timeout(profile.patience)
        yield AnyOf(ctx.sim, [completion, patience])
        if job.start_time is None and not job.state.is_terminal:
            # Queue too slow for an attended session: walk away.
            site.cancel(job)
        yield completion


def coupled_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Rare co-allocated runs across the largest machines."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        n_sites = int(rng.integers(profile.n_sites[0], profile.n_sites[1] + 1))
        n_sites = min(n_sites, len(ctx.providers))
        if n_sites < 2:
            continue  # cannot couple on a single-site federation
        ranked = sorted(
            ctx.providers, key=lambda p: -p.cluster.total_cores
        )[:n_sites]
        # Every part needs the input data set on its local filesystem.
        stages = [
            _stage_inputs(ctx, rng, user, site, Modality.COUPLED)
            for site in ranked
        ]
        stages = [s for s in stages if s is not None]
        if stages:
            yield AllOf(ctx.sim, stages)
        template = sample_job(rng, profile, user)
        parts = [
            (site, min(template.cores, site.cluster.total_cores))
            for site in ranked
        ]
        proc = ctx.coallocator.launch(
            user=user.user_id,
            account=user.account,
            parts=parts,
            walltime=template.walltime,
            single_site_runtime=template.true_runtime,
            true_modality=profile.modality.value,
        )
        yield proc


_BEHAVIORS = {
    Modality.BATCH: batch_user,
    Modality.EXPLORATORY: exploratory_user,
    Modality.GATEWAY: gateway_user,
    Modality.ENSEMBLE: ensemble_user,
    Modality.VIZ: viz_user,
    Modality.COUPLED: coupled_user,
}


def start_behaviors(
    ctx: SimulationContext,
    population: Population,
    profiles: Optional[dict[Modality, BehaviorProfile]] = None,
) -> int:
    """Spawn one behaviour process per user; returns how many were started."""
    profiles = profiles or DEFAULT_PROFILES
    started = 0
    for user in population.users:
        behavior = _BEHAVIORS[user.modality]
        ctx.sim.process(
            behavior(ctx, user, profiles[user.modality]),
            name=f"{user.modality.value}:{user.user_id}",
        )
        started += 1
    return started
