"""Fairshare priority on top of EASY backfill.

Queue order is by exponentially-decayed historical usage of each job's user
(lighter users first), breaking ties by arrival.  This is the Moab/Maui-style
fairshare that most TeraGrid resource providers layered over backfilling.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler.backfill import EasyBackfillScheduler
from repro.infra.units import DAY
from repro.sim import Simulator

__all__ = ["FairshareScheduler"]


class FairshareScheduler(EasyBackfillScheduler):
    """EASY backfill with decayed-usage ordering.

    ``half_life`` controls how fast past usage is forgiven (default 7 days).
    Usage is accumulated in node-seconds at job end.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        on_job_end: Optional[Callable[[Job], None]] = None,
        half_life: float = 7 * DAY,
    ) -> None:
        super().__init__(sim, cluster, on_job_end=on_job_end)
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self.half_life = half_life
        # user -> (decayed usage value, time of last update)
        self._usage: dict[str, tuple[float, float]] = {}

    # -- usage bookkeeping ---------------------------------------------------
    def decayed_usage(self, user: str) -> float:
        """The user's usage score, decayed to the current time."""
        entry = self._usage.get(user)
        if entry is None:
            return 0.0
        value, stamp = entry
        age = self.sim.now - stamp
        return value * math.exp(-math.log(2.0) * age / self.half_life)

    def _charge_usage(self, user: str, node_seconds: float) -> None:
        current = self.decayed_usage(user)
        self._usage[user] = (current + node_seconds, self.sim.now)

    def _emit_end(self, job: Job) -> None:
        if job.start_time is not None and job.end_time is not None:
            nodes = self.cluster.nodes_for(job.cores)
            self._charge_usage(job.user, nodes * (job.end_time - job.start_time))
        super()._emit_end(job)

    # -- ordering ---------------------------------------------------------------
    def _ordered_queue(self) -> list[Job]:
        order = sorted(
            self.queue,
            key=lambda job: (
                self.decayed_usage(job.user),
                self._arrival_order[job.job_id],
            ),
        )
        return self._apply_user_cap(order)
