"""Determinism properties of the sim kernel and the parallel runner.

The reproducibility contract this repo leans on everywhere: a fixed master
seed fully determines the event trace, the accounting record stream and the
final metrics — across repeated runs in one process, and across serial vs
process-pool execution of the same experiment.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.base import run_via_tasks
from repro.runner import ParallelRunner
from repro.sim import RandomStreams, Simulator
from repro.workloads import run_scenario


#: Attribute values minted from process-global counters ("wf-7", ensemble
#: ids, ...).  Two same-seed runs in one process simulate identical events
#: but number these groups differently, so the signature renumbers them by
#: first appearance — the grouping *structure* still must match exactly.
_GLOBAL_COUNTER_ATTRIBUTES = ("workflow_id", "ensemble_id", "coallocation_id")


def _record_signature(result):
    """The full accounting stream as comparable plain data.

    ``job_id`` is excluded for the same reason the grouping attributes are
    canonicalized: ids come from process-global counters, not from the
    simulation.  Everything physical must match.
    """
    canonical: dict[str, dict[str, int]] = {
        key: {} for key in _GLOBAL_COUNTER_ATTRIBUTES
    }
    signature = []
    for record in result.records:
        attributes = dict(record.attributes)
        for key in _GLOBAL_COUNTER_ATTRIBUTES:
            if key in attributes:
                seen = canonical[key]
                attributes[key] = seen.setdefault(attributes[key], len(seen))
        signature.append(
            (
                record.user,
                record.account,
                record.resource,
                record.queue_name,
                record.cores,
                record.requested_walltime,
                record.submit_time,
                record.start_time,
                record.end_time,
                record.final_state,
                record.charged_nu,
                sorted(attributes.items()),
                record.field_of_science,
            )
        )
    return signature


def _metrics_signature(result):
    return {
        "records": len(result.records),
        "charged": sum(r.charged_nu for r in result.records),
        "final_time": result.sim.now,
    }


# -- kernel-level event traces -------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(2, 20))
def test_seeded_event_trace_is_identical_across_runs(seed, n_procs):
    """Property: a seeded random workload fires the same (time, tag) trace
    every time it is simulated."""

    def trace_once():
        sim = Simulator()
        rng = RandomStreams(seed=seed).stream("delays")
        fired = []

        def waiter(sim, tag):
            yield sim.timeout(float(rng.random() * 100.0))
            fired.append((sim.now, tag))
            if rng.random() < 0.5:
                yield sim.timeout(float(rng.random() * 10.0))
                fired.append((sim.now, -tag))

        for tag in range(1, n_procs + 1):
            sim.process(waiter(sim, tag))
        sim.run()
        return fired

    assert trace_once() == trace_once()


# -- full-scenario record streams ----------------------------------------------

@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_same_seed_reproduces_scenario_records_and_metrics(seed):
    """Property: same seed ⇒ byte-identical usage records + final metrics."""
    first = run_scenario(days=1.0, seed=seed)
    second = run_scenario(days=1.0, seed=seed)
    assert _record_signature(first) == _record_signature(second)
    assert _metrics_signature(first) == _metrics_signature(second)


def test_different_seeds_produce_different_activity():
    a = run_scenario(days=1.0, seed=1)
    b = run_scenario(days=1.0, seed=2)
    assert _record_signature(a) != _record_signature(b)


# -- serial vs parallel --------------------------------------------------------

def test_parallel_execution_is_byte_identical_to_serial():
    """The runner contract: R1's replicate fan-out merged from a 2-worker
    process pool matches the inline serial path exactly."""
    knobs = dict(days=1.0, seeds=(1, 2))
    serial = run_via_tasks("R1", **knobs)
    parallel = ParallelRunner(jobs=2, use_cache=False).run("R1", **knobs)
    assert parallel.text == serial.text
    assert parallel.data == serial.data


def test_single_worker_runner_matches_serial_path():
    knobs = dict(days=1.0, seed=5, coverages=(0.0, 1.0))
    serial = run_via_tasks("F6", **knobs)
    inline = ParallelRunner(jobs=1, use_cache=False).run("F6", **knobs)
    assert inline.text == serial.text
    assert inline.data == serial.data
