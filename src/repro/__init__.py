"""repro — event-driven reproduction of *Cyberinfrastructure Usage
Modalities on the TeraGrid* (2011).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (processes, events, resources, RNG
    streams, workload distributions).
``repro.infra``
    The federated-grid substrate: sites, schedulers, accounting,
    allocations, network, storage, gateways, information service,
    metascheduler, workflows, co-allocation.
``repro.users``
    The synthetic community: fields, modality profiles, population builder
    and per-modality behaviour processes (the ground truth).
``repro.core``
    The paper's contribution: the modality taxonomy and the measurement
    system (classifiers, metrics, time series, survey, evaluation, reports).
``repro.workloads``
    Federation presets, the end-to-end scenario runner and SWF trace I/O.
``repro.experiments``
    One registered runner per table/figure (T1–T5, F1–F7).

Quick start::

    from repro.workloads import run_scenario
    from repro.core import AttributeClassifier, compute_metrics

    result = run_scenario(days=14, seed=42)
    classification = AttributeClassifier().classify(result.records)
    metrics = compute_metrics(result.records, classification)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
