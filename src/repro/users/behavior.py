"""Behaviour processes: one simulation process per user, per modality.

Each process loops forever (the harness bounds the run with a horizon):
think for an exponential while, then perform one *session* of the user's
modality.  All stochastic draws come from a per-user named stream, so adding
users or modalities never perturbs existing ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

import numpy as np

from repro.core.modalities import Modality
from repro.infra.coalloc import CoAllocator
from repro.infra.gateway import ScienceGateway
from repro.infra.job import AttributeKeys, Job, JobState
from repro.infra.metascheduler import Metascheduler
from repro.infra.resilience import saved_progress
from repro.infra.site import ResourceProvider, SiteDownError
from repro.infra.submission import GramSubmitter, LoginSubmitter
from repro.infra.workflow import TaskGraph, WorkflowEngine
from repro.sim import AllOf, AnyOf, RandomStreams, Simulator
from repro.sim.distributions import bounded_lognormal, log2_cores
from repro.users.population import Population, User
from repro.users.profiles import DEFAULT_PROFILES, BehaviorProfile

__all__ = [
    "DEFAULT_RECOVERY",
    "RecoveryPolicy",
    "SimulationContext",
    "no_recovery",
    "sample_job",
    "start_behaviors",
]

_ensemble_ids = itertools.count(1)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a user of one modality reacts to infrastructure failure.

    ``resubmit`` governs whether lost work is retried at all;
    ``max_attempts`` is the give-up threshold (total submission attempts per
    unit of work — exceeding it records an *abandonment*).  Retries wait an
    exponential backoff (``backoff_base * backoff_factor**(attempt-1)``).
    ``checkpoint_interval`` enables checkpoint-resume: only the progress
    since the last checkpoint is lost, and each restart pays
    ``restart_overhead`` of machine time (see :func:`saved_progress`).
    ``None`` means restart from scratch.
    """

    resubmit: bool = True
    max_attempts: int = 3
    backoff_base: float = 15 * 60.0
    backoff_factor: float = 2.0
    checkpoint_interval: Optional[float] = None
    restart_overhead: float = 5 * 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be nonnegative and non-shrinking")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive or None")
        if self.restart_overhead < 0:
            raise ValueError("restart_overhead must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Deterministic wait before retry number ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** max(attempt - 1, 0)


#: The recovery discipline each modality realistically ran with: batch
#: users resubmit from their submit scripts; porting loops retry once and
#: move on; gateways auto-retry on the user's behalf; ensembles re-run the
#: lost member; viz users walk away (an attended session cannot wait); and
#: capability (coupled) jobs checkpoint — at their scale restarting from
#: scratch is not an option.
DEFAULT_RECOVERY: dict[Modality, RecoveryPolicy] = {
    Modality.BATCH: RecoveryPolicy(max_attempts=4, backoff_base=30 * 60.0),
    Modality.EXPLORATORY: RecoveryPolicy(max_attempts=2, backoff_base=10 * 60.0),
    Modality.GATEWAY: RecoveryPolicy(max_attempts=3, backoff_base=15 * 60.0),
    Modality.ENSEMBLE: RecoveryPolicy(max_attempts=3, backoff_base=15 * 60.0),
    Modality.VIZ: RecoveryPolicy(resubmit=False, max_attempts=1),
    Modality.COUPLED: RecoveryPolicy(
        max_attempts=3,
        backoff_base=30 * 60.0,
        checkpoint_interval=2 * 3600.0,
        restart_overhead=10 * 60.0,
    ),
}


def no_recovery() -> dict[Modality, RecoveryPolicy]:
    """Outage-aware but fatalistic: failures are tolerated, never retried."""
    return {
        modality: RecoveryPolicy(resubmit=False, max_attempts=1)
        for modality in Modality
    }


@dataclass
class SimulationContext:
    """Everything behaviour processes need to act on the federation."""

    sim: Simulator
    streams: RandomStreams
    providers: list[ResourceProvider]
    metascheduler: Metascheduler
    gateways: dict[str, ScienceGateway]
    workflow_engine: WorkflowEngine
    coallocator: CoAllocator
    login: LoginSubmitter = dataclass_field(default_factory=LoginSubmitter)
    gram: GramSubmitter = dataclass_field(default_factory=GramSubmitter)
    #: fraction of CLI submissions that go through GRAM middleware
    gram_fraction: float = 0.15
    #: fraction of batch sessions sent somewhere other than the home site
    roaming_fraction: float = 0.15
    #: gateway end users become active uniformly over this many seconds
    #: (0 = everyone active from the start); models gateway adoption growth
    gateway_adoption_ramp: float = 0.0
    #: fraction of a batch user's sessions that are porting/testing work
    batch_porting_session_prob: float = 0.12
    #: WAN used for input staging (None disables data movement modeling)
    network: Optional["object"] = None
    #: per-modality reaction to infrastructure failure; None = legacy
    #: behaviour (no outage awareness, byte-identical to pre-resilience runs)
    recovery: Optional[dict[Modality, RecoveryPolicy]] = None
    #: per-modality counters fed by the recovery machinery (keys are
    #: ``Modality.value`` strings so they serialize cleanly)
    resubmissions: dict[str, int] = dataclass_field(default_factory=dict)
    abandonments: dict[str, int] = dataclass_field(default_factory=dict)
    deferrals: dict[str, int] = dataclass_field(default_factory=dict)

    def provider(self, name: str) -> ResourceProvider:
        for provider in self.providers:
            if provider.name == name:
                return provider
        raise KeyError(f"unknown provider {name!r}")

    def recovery_policy(self, modality: Modality) -> Optional[RecoveryPolicy]:
        if self.recovery is None:
            return None
        return self.recovery.get(modality)

    def count(self, counter: dict[str, int], modality: Modality) -> None:
        counter[modality.value] = counter.get(modality.value, 0) + 1


def sample_job(
    rng: np.random.Generator,
    profile: BehaviorProfile,
    user: User,
    max_cores_cap: Optional[int] = None,
    attributes: Optional[dict] = None,
    priority: float = 0.0,
) -> Job:
    """Draw one job from a profile (cores, runtime, walltime, failure)."""
    cores_cap = profile.max_cores
    if max_cores_cap is not None:
        cores_cap = min(cores_cap, max_cores_cap)
    cores = log2_cores(
        rng,
        profile.min_cores,
        max(cores_cap, profile.min_cores),
        profile.mean_log2_cores,
        profile.sigma_log2_cores,
    )
    runtime = bounded_lognormal(
        rng,
        profile.runtime_median,
        profile.runtime_sigma,
        profile.runtime_min,
        profile.runtime_max,
    )
    will_fail = bool(rng.random() < profile.failure_prob)
    if will_fail:
        # Failures happen early in the run.
        runtime *= float(rng.uniform(0.02, 0.5))
        runtime = max(runtime, 10.0)
    if rng.random() < profile.underestimate_prob:
        walltime = runtime * float(rng.uniform(0.5, 0.95))
    else:
        walltime = runtime * profile.walltime_pad
    return Job(
        user=user.user_id,
        account=user.account,
        cores=cores,
        walltime=max(walltime, 60.0),
        true_runtime=runtime,
        will_fail=will_fail,
        priority=priority,
        attributes=dict(attributes or {}),
        true_modality=profile.modality.value,
        true_user=user.user_id,
    )


def _think(ctx: SimulationContext, rng: np.random.Generator, mean: float):
    return ctx.sim.timeout(float(rng.exponential(mean)))


def _submit_cli(ctx: SimulationContext, rng, site: ResourceProvider, job: Job):
    """Submit via login node or (sometimes) GRAM middleware."""
    if rng.random() < ctx.gram_fraction:
        ctx.gram.submit(site, job)
    else:
        ctx.login.submit(site, job)


def _session_site(ctx: SimulationContext, rng, user: User) -> ResourceProvider:
    """The user's home site, or occasionally somewhere else entirely."""
    home = ctx.provider(user.home_site)
    if len(ctx.providers) > 1 and rng.random() < ctx.roaming_fraction:
        others = [p for p in ctx.providers if p.name != user.home_site]
        return others[int(rng.integers(len(others)))]
    return home


def _stage_inputs(ctx: SimulationContext, rng, user: User,
                  site: ResourceProvider, modality: Modality):
    """Move the session's input data to ``site`` if it lives elsewhere.

    Input sizes are heavy-tailed (tens of GB median); same-site sessions pay
    only a local copy.  Returns the transfer event, or None when no network
    is modelled.
    """
    if ctx.network is None:
        return None
    from repro.sim.distributions import bounded_lognormal

    size = bounded_lognormal(rng, 2e10, 1.5, 1e8, 2e12)
    return ctx.network.transfer(
        user.home_site, site.name, size, tag=modality.value
    )


# ----------------------------------------------------------------- recovery


def _infra_failed(job: Job) -> bool:
    """FAILED without being destined to fail: the machine ate it."""
    return job.state is JobState.FAILED and not job.will_fail


def _recovery_rng(ctx: SimulationContext, user: User):
    """The user's dedicated recovery stream.

    Backoffs and retry decisions draw here, never from the user's main
    behaviour stream — so enabling recovery can never perturb the job
    *workload* (sizes, runtimes, session timing) drawn by legacy code.
    """
    return ctx.streams.stream(f"recovery:{user.user_id}")


def _clone_for_resubmit(job: Job, remaining: float, overhead: float) -> Job:
    """The job a user resubmits after an infrastructure loss.

    ``remaining`` is the work still to do (checkpoint-adjusted); the restart
    pays ``overhead`` of machine time on top.  The resubmission keeps the
    original script's walltime request and ground-truth identity.
    """
    runtime = max(remaining + overhead, 10.0)
    return Job(
        user=job.user,
        account=job.account,
        cores=job.cores,
        walltime=max(job.walltime, runtime * 1.1),
        true_runtime=runtime,
        will_fail=False,
        attributes=dict(job.attributes),
        true_modality=job.true_modality,
        true_user=job.true_user,
    )


def _recover_job(
    ctx: SimulationContext,
    user: User,
    site: ResourceProvider,
    job: Job,
    policy: RecoveryPolicy,
    modality: Modality,
):
    """Run one job to completion under a recovery policy (a sub-process).

    Submission rejections during an outage are waited out
    (:class:`SiteDownError` → wait for the site, retry); infrastructure
    kills trigger resubmission with backoff, checkpoint-adjusted remaining
    work, and a give-up threshold that records an abandonment.  The process
    value is the final job, so callers can wait on the process exactly as
    they would on a completion event.
    """
    rng = _recovery_rng(ctx, user)
    attempts = 0
    current = job
    while True:
        try:
            _submit_cli(ctx, rng, site, current)
        except SiteDownError:
            ctx.count(ctx.deferrals, modality)
            if not policy.resubmit and attempts >= 1:
                ctx.count(ctx.abandonments, modality)
                return current
            yield site.wait_until_up()
            continue
        attempts += 1
        yield site.scheduler.wait_for(current)
        if not _infra_failed(current):
            return current
        saved = saved_progress(
            current.elapsed or 0.0, policy.checkpoint_interval
        )
        remaining = max(current.true_runtime - saved, 0.0)
        if (
            not policy.resubmit
            or attempts >= policy.max_attempts
            or remaining <= 1.0
        ):
            if remaining > 1.0:
                ctx.count(ctx.abandonments, modality)
            return current
        ctx.count(ctx.resubmissions, modality)
        yield ctx.sim.timeout(policy.backoff(attempts))
        current = _clone_for_resubmit(
            current, remaining, policy.restart_overhead
        )


def _submit_and_wait(
    ctx: SimulationContext,
    rng,
    user: User,
    site: ResourceProvider,
    job: Job,
    modality: Modality,
):
    """Submit ``job`` and return something yieldable for its completion.

    Without a recovery policy this is *exactly* the legacy sequence —
    synchronous ``_submit_cli`` (drawing the GRAM coin from the caller's
    stream) and the scheduler's completion event — so pre-resilience runs
    stay byte-identical.  With a policy, a recovery sub-process owns the
    job's whole retry lifecycle and the caller waits on the process.
    """
    policy = ctx.recovery_policy(modality)
    if policy is None:
        _submit_cli(ctx, rng, site, job)
        return site.scheduler.wait_for(job)
    return ctx.sim.process(
        _recover_job(ctx, user, site, job, policy, modality),
        name=f"recover-{job.job_id}",
    )


def _gateway_request(
    ctx: SimulationContext,
    user: User,
    gateway: ScienceGateway,
    site: ResourceProvider,
    spec: Job,
    policy: RecoveryPolicy,
    modality: Modality,
):
    """One gateway request under recovery (a sub-process).

    ``queued`` requests belong to the portal's backlog — it submits them on
    recovery, the user moves on (a deferral).  ``shed`` requests are retried
    with backoff up to the give-up threshold; infrastructure kills of an
    accepted job are re-requested the same way.
    """
    rng = _recovery_rng(ctx, user)
    attempts = 0
    remaining = spec.true_runtime
    while True:
        attempts += 1
        job, status = gateway.request(
            site,
            gateway_user=user.user_id,
            cores=spec.cores,
            walltime=spec.walltime,
            true_runtime=max(remaining, 10.0),
            will_fail=spec.will_fail if attempts == 1 else False,
            true_modality=modality.value,
        )
        if status == "queued":
            ctx.count(ctx.deferrals, modality)
            return None
        if status == "submitted":
            assert job is not None
            yield site.scheduler.wait_for(job)
            if not _infra_failed(job):
                return job
            saved = saved_progress(
                job.elapsed or 0.0, policy.checkpoint_interval
            )
            remaining = max(remaining - saved, 0.0)
            if remaining <= 1.0:
                return job
        if not policy.resubmit or attempts >= policy.max_attempts:
            ctx.count(ctx.abandonments, modality)
            return job
        ctx.count(ctx.resubmissions, modality)
        yield ctx.sim.timeout(policy.backoff(attempts))


# ---------------------------------------------------------------- behaviours


def batch_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Production campaigns: a few hours-long jobs per session, wait, repeat.

    Real production users are not pure: a fraction of their sessions is
    porting/testing work (new code version, new machine).  Those sessions
    use the exploratory profile and carry exploratory ground truth, which is
    what makes the residual batch/exploratory split genuinely fallible for
    the classifier (it labels a user's residual jobs as a block).
    """
    rng = ctx.streams.stream(f"user:{user.user_id}")
    porting_profile = DEFAULT_PROFILES[Modality.EXPLORATORY]
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = _session_site(ctx, rng, user)
        stage = _stage_inputs(ctx, rng, user, site, Modality.BATCH)
        if stage is not None:
            yield stage
        if rng.random() < ctx.batch_porting_session_prob:
            for _ in range(int(rng.integers(1, 5))):
                job = sample_job(
                    rng,
                    porting_profile,
                    user,
                    max_cores_cap=site.cluster.total_cores,
                )
                yield _submit_and_wait(
                    ctx, rng, user, site, job, porting_profile.modality
                )
                yield ctx.sim.timeout(float(rng.uniform(60.0, 600.0)))
            continue
        lo, hi = profile.jobs_per_session
        n_jobs = int(rng.integers(lo, hi + 1))
        waits = []
        for _ in range(n_jobs):
            job = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            waits.append(
                _submit_and_wait(ctx, rng, user, site, job, profile.modality)
            )
        yield AllOf(ctx.sim, waits)


def exploratory_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Porting: sequential edit-compile-submit loops of tiny failing jobs."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = ctx.provider(user.home_site)  # porting sticks to one machine
        lo, hi = profile.jobs_per_session
        for _ in range(int(rng.integers(lo, hi + 1))):
            job = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            yield _submit_and_wait(ctx, rng, user, site, job, profile.modality)
            # look at the output, tweak, resubmit
            yield ctx.sim.timeout(float(rng.uniform(60.0, 600.0)))


def gateway_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Portal sessions: the gateway submits on the user's behalf."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    assert user.gateway is not None
    gateway = ctx.gateways[user.gateway]
    if ctx.gateway_adoption_ramp > 0:
        # This user discovers the gateway partway through the campaign.
        yield ctx.sim.timeout(float(rng.uniform(0, ctx.gateway_adoption_ramp)))
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = _session_site(ctx, rng, user)
        lo, hi = profile.jobs_per_session
        waits = []
        policy = ctx.recovery_policy(profile.modality)
        for _ in range(int(rng.integers(lo, hi + 1))):
            spec = sample_job(
                rng, profile, user, max_cores_cap=site.cluster.total_cores
            )
            if policy is not None:
                waits.append(
                    ctx.sim.process(
                        _gateway_request(
                            ctx, user, gateway, site, spec, policy,
                            profile.modality,
                        ),
                        name=f"gw-request-{user.user_id}",
                    )
                )
                continue
            job = gateway.submit(
                site,
                gateway_user=user.user_id,
                cores=spec.cores,
                walltime=spec.walltime,
                true_runtime=spec.true_runtime,
                will_fail=spec.will_fail,
                true_modality=profile.modality.value,
            )
            waits.append(site.scheduler.wait_for(job))
        yield AllOf(ctx.sim, waits)


def ensemble_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Sweeps: either a DAG through the workflow engine or a raw burst."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        width = int(rng.integers(profile.sweep_width[0], profile.sweep_width[1] + 1))
        template = sample_job(rng, profile, user)
        if rng.random() < profile.workflow_prob:
            graph = TaskGraph.parameter_sweep(
                f"{user.user_id}-sweep",
                width=width,
                cores=template.cores,
                walltime=template.walltime,
                true_runtime=template.true_runtime,
                output_bytes=1e8,
            )
            proc = ctx.workflow_engine.run(
                graph,
                user=user.user_id,
                account=user.account,
                true_modality=profile.modality.value,
            )
            yield proc
        else:
            site = _session_site(ctx, rng, user)
            ensemble_id = f"ens-{next(_ensemble_ids)}"
            waits = []
            for _ in range(width):
                job = sample_job(
                    rng,
                    profile,
                    user,
                    max_cores_cap=site.cluster.total_cores,
                    attributes={AttributeKeys.ENSEMBLE_ID: ensemble_id},
                )
                # Sweep members share the template's size (that is what
                # makes it a sweep) but keep their own runtimes.
                job.cores = min(template.cores, site.cluster.total_cores)
                waits.append(
                    _submit_and_wait(
                        ctx, rng, user, site, job, profile.modality
                    )
                )
                yield ctx.sim.timeout(float(rng.uniform(5.0, 60.0)))
            yield AllOf(ctx.sim, waits)


def viz_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Interactive sessions: needed now; cancelled if the queue is slow."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        site = ctx.provider(user.home_site)
        job = sample_job(
            rng,
            profile,
            user,
            max_cores_cap=site.cluster.total_cores,
            attributes={AttributeKeys.INTERACTIVE: True},
            priority=100.0,  # interactive queues boost priority
        )
        if ctx.recovery is not None:
            # An attended session cannot be queued behind an outage: if the
            # site is down right now, the viz user simply gives up on it.
            try:
                _submit_cli(ctx, rng, site, job)
            except SiteDownError:
                ctx.count(ctx.abandonments, profile.modality)
                continue
        else:
            _submit_cli(ctx, rng, site, job)
        completion = site.scheduler.wait_for(job)
        patience = ctx.sim.timeout(profile.patience)
        yield AnyOf(ctx.sim, [completion, patience])
        if job.start_time is None and not job.state.is_terminal:
            # Queue too slow for an attended session: walk away.
            site.cancel(job)
        yield completion
        if ctx.recovery is not None and _infra_failed(job):
            # The session died under the user mid-flight; nothing to resume.
            ctx.count(ctx.abandonments, profile.modality)


def coupled_user(ctx: SimulationContext, user: User, profile: BehaviorProfile):
    """Rare co-allocated runs across the largest machines."""
    rng = ctx.streams.stream(f"user:{user.user_id}")
    while True:
        yield _think(ctx, rng, profile.think_time_mean)
        n_sites = int(rng.integers(profile.n_sites[0], profile.n_sites[1] + 1))
        n_sites = min(n_sites, len(ctx.providers))
        if n_sites < 2:
            continue  # cannot couple on a single-site federation
        ranked = sorted(
            ctx.providers, key=lambda p: -p.cluster.total_cores
        )[:n_sites]
        # Every part needs the input data set on its local filesystem.
        stages = [
            _stage_inputs(ctx, rng, user, site, Modality.COUPLED)
            for site in ranked
        ]
        stages = [s for s in stages if s is not None]
        if stages:
            yield AllOf(ctx.sim, stages)
        template = sample_job(rng, profile, user)
        policy = ctx.recovery_policy(profile.modality)
        if policy is None:
            parts = [
                (site, min(template.cores, site.cluster.total_cores))
                for site in ranked
            ]
            proc = ctx.coallocator.launch(
                user=user.user_id,
                account=user.account,
                parts=parts,
                walltime=template.walltime,
                single_site_runtime=template.true_runtime,
                true_modality=profile.modality.value,
            )
            yield proc
            continue
        # Capability runs under recovery: retry the whole coupled launch
        # with checkpoint-adjusted remaining work, over sites that are up.
        remaining = template.true_runtime
        attempts = 0
        overhead = ctx.coallocator.wan_overhead_factor
        while remaining > 1.0:
            up_sites = [p for p in ranked if p.up]
            if len(up_sites) < 2:
                ctx.count(ctx.abandonments, profile.modality)
                break
            attempts += 1
            parts = [
                (site, min(template.cores, site.cluster.total_cores))
                for site in up_sites
            ]
            proc = ctx.coallocator.launch(
                user=user.user_id,
                account=user.account,
                parts=parts,
                walltime=template.walltime,
                single_site_runtime=max(
                    remaining + policy.restart_overhead, 10.0
                ),
                true_modality=profile.modality.value,
            )
            result = yield proc
            if result.succeeded:
                break
            lost_to_infra = any(
                _infra_failed(j) or j.state is JobState.CREATED
                for j in result.jobs
            )
            if not lost_to_infra:
                break  # cancelled / application outcome: not ours to retry
            coupled_elapsed = max(
                (j.elapsed or 0.0) for j in result.jobs
            )
            saved = saved_progress(
                coupled_elapsed / overhead, policy.checkpoint_interval
            )
            remaining = max(remaining - saved, 0.0)
            if (
                not policy.resubmit
                or attempts >= policy.max_attempts
                or remaining <= 1.0
            ):
                if remaining > 1.0:
                    ctx.count(ctx.abandonments, profile.modality)
                break
            ctx.count(ctx.resubmissions, profile.modality)
            yield ctx.sim.timeout(policy.backoff(attempts))


_BEHAVIORS = {
    Modality.BATCH: batch_user,
    Modality.EXPLORATORY: exploratory_user,
    Modality.GATEWAY: gateway_user,
    Modality.ENSEMBLE: ensemble_user,
    Modality.VIZ: viz_user,
    Modality.COUPLED: coupled_user,
}


def start_behaviors(
    ctx: SimulationContext,
    population: Population,
    profiles: Optional[dict[Modality, BehaviorProfile]] = None,
    member_indices: Optional[frozenset[int]] = None,
) -> int:
    """Spawn one behaviour process per user; returns how many were started.

    ``member_indices`` restricts startup to the users at those ordinals in
    ``population.users`` — the sharded scale tier builds the full population
    in every cell (so gateways, accounts and per-user streams are identical
    everywhere) but activates each user in exactly one cell.  The population
    is laid out modality-block by modality-block, so a stride over ordinals
    samples every modality in every cell.
    """
    profiles = profiles or DEFAULT_PROFILES
    started = 0
    for index, user in enumerate(population.users):
        if member_indices is not None and index not in member_indices:
            continue
        behavior = _BEHAVIORS[user.modality]
        ctx.sim.process(
            behavior(ctx, user, profiles[user.modality]),
            name=f"{user.modality.value}:{user.user_id}",
        )
        started += 1
    return started
