"""Property tests pinning the scheduling policies' core invariants.

Three guarantees the experiment layer silently relies on:

* EASY backfill never *starves* the queue head — backfilled jobs may jump
  the queue, but the head starts no later than the shadow reservation it
  was given when it became blocked;
* fairshare's decayed-usage score is monotonically non-increasing between
  charge events (usage is only ever forgiven with time, never grows on its
  own), halving exactly every half-life;
* FCFS preserves arrival order under equal-priority ties — jobs start in
  exactly the order they were submitted.
"""

from hypothesis import given, settings, strategies as st

from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler import (
    EasyBackfillScheduler,
    FairshareScheduler,
    FcfsScheduler,
)
from repro.infra.units import DAY, HOUR
from repro.sim import Simulator
from tests.strategies import job_specs

_job_specs = job_specs(max_walltime=200, max_offset=100)


def _submit_workload(sim, scheduler, specs, user="u"):
    jobs = []

    def submit_later(sim, delay, job):
        yield sim.timeout(delay)
        scheduler.submit(job)

    for cores, walltime, fraction, offset in specs:
        job = Job(
            user=user,
            account="acct",
            cores=cores,
            walltime=float(walltime),
            true_runtime=float(walltime) * fraction,
        )
        jobs.append(job)
        sim.process(submit_later(sim, float(offset), job))
    return jobs


# -- backfill: no head starvation ---------------------------------------------

class _ShadowRecorder(EasyBackfillScheduler):
    """Records every shadow computed for each blocked head."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadows: dict[int, list[float]] = {}

    def _shadow(self, head):
        shadow = super()._shadow(head)
        self.shadows.setdefault(head.job_id, []).append(shadow)
        return shadow


@settings(max_examples=40, deadline=None)
@given(_job_specs)
def test_backfill_never_starves_the_head_past_its_shadow(specs):
    """Whenever a job was the blocked head, it starts no later than the
    first shadow reservation laid down for it — backfilled jobs never push
    it back, no matter how much traffic arrives behind it."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    scheduler = _ShadowRecorder(sim, cluster)
    jobs = _submit_workload(sim, scheduler, specs)
    sim.run(until=100_000.0)

    for job in jobs:
        assert job.start_time is not None, "workload must drain"
        shadows = scheduler.shadows.get(job.job_id)
        if shadows:
            assert job.start_time <= shadows[0] + 1e-6, (
                f"job {job.job_id} started at {job.start_time}, past its "
                f"first shadow {shadows[0]}"
            )
            # Reactive shadows only ever move the reserved start *earlier*.
            for earlier, later in zip(shadows, shadows[1:]):
                assert later <= earlier + 1e-6


# -- fairshare: monotone decay -------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=100.0, max_value=1e6),  # first charge (node-seconds)
    st.lists(
        st.floats(min_value=1.0, max_value=10 * DAY), min_size=2, max_size=12
    ),  # sampling gaps
    st.floats(min_value=1 * HOUR, max_value=14 * DAY),  # half-life
)
def test_fairshare_usage_decays_monotonically_between_events(
    charge, gaps, half_life
):
    sim = Simulator()
    cluster = Cluster("mach", nodes=4, cores_per_node=1)
    scheduler = FairshareScheduler(sim, cluster, half_life=half_life)
    scheduler._charge_usage("alice", charge)

    samples = [scheduler.decayed_usage("alice")]
    for gap in gaps:
        sim.run(until=sim.now + gap)
        samples.append(scheduler.decayed_usage("alice"))

    assert samples[0] <= charge * (1 + 1e-9)
    for earlier, later in zip(samples, samples[1:]):
        assert later <= earlier * (1 + 1e-12), "usage grew without a charge"
    assert all(value >= 0.0 for value in samples)


def test_fairshare_usage_halves_at_the_half_life():
    sim = Simulator()
    cluster = Cluster("mach", nodes=4, cores_per_node=1)
    scheduler = FairshareScheduler(sim, cluster, half_life=2 * DAY)
    scheduler._charge_usage("alice", 1000.0)
    sim.run(until=2 * DAY)
    assert abs(scheduler.decayed_usage("alice") - 500.0) < 1e-6


def test_fairshare_charge_after_decay_adds_to_decayed_value():
    sim = Simulator()
    cluster = Cluster("mach", nodes=4, cores_per_node=1)
    scheduler = FairshareScheduler(sim, cluster, half_life=1 * DAY)
    scheduler._charge_usage("alice", 800.0)
    sim.run(until=1 * DAY)  # decays to 400
    scheduler._charge_usage("alice", 100.0)
    assert abs(scheduler.decayed_usage("alice") - 500.0) < 1e-6


# -- FCFS: arrival order under ties --------------------------------------------

@settings(max_examples=40, deadline=None)
@given(_job_specs)
def test_fcfs_preserves_arrival_order_under_equal_priority(specs):
    """With all priorities equal, FCFS starts jobs in exactly the order
    they arrived — a later arrival never runs first."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    scheduler = FcfsScheduler(sim, cluster)
    started = []
    jobs = _submit_workload(sim, scheduler, specs)
    original_start = scheduler._start

    def recording_start(job):
        started.append(job.job_id)
        original_start(job)

    scheduler._start = recording_start
    sim.run(until=200_000.0)

    assert len(started) == len(jobs), "workload must drain"
    arrival_rank = {
        job_id: rank
        for rank, job_id in enumerate(
            sorted(scheduler._arrival_order, key=scheduler._arrival_order.get)
        )
    }
    ranks = [arrival_rank[job_id] for job_id in started]
    assert ranks == sorted(ranks), "a later arrival started before an earlier one"


def test_ordered_queue_breaks_equal_priority_by_arrival():
    """The base ordering itself: equal priorities fall back to FIFO."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=1, cores_per_node=1)
    scheduler = FcfsScheduler(sim, cluster)
    blocker = Job(user="u", account="acct", cores=1, walltime=50.0, true_runtime=50.0)
    scheduler.submit(blocker)  # occupies the machine
    waiting = [
        Job(user="u", account="acct", cores=1, walltime=10.0, true_runtime=10.0)
        for _ in range(5)
    ]
    for job in waiting:
        scheduler.submit(job)
    assert [job.job_id for job in scheduler._ordered_queue()] == [
        job.job_id for job in waiting
    ]