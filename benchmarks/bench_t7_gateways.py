"""Bench T7: regenerate the per-gateway community report."""


def test_t7_gateways(regenerate):
    output = regenerate("T7")
    gateways = output.data
    assert len(gateways) >= 2
    users = sorted((g["end_users"] for g in gateways.values()), reverse=True)
    # Popularity is heavy-tailed: the top gateway dominates.
    assert users[0] >= 2 * users[-1]
    # Full tagging in the canonical campaign.
    for entry in gateways.values():
        assert entry["coverage"] > 0.95
