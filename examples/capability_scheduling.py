#!/usr/bin/env python
"""Capability scheduling policies on a Kraken-like machine.

Full-machine "hero" runs and high total utilization pull a scheduler in
opposite directions.  This example runs the same workload — background batch
jobs plus prioritized full-machine heroes — under three policies and prints
the trade-off:

* plain EASY backfill (reactive shadow reservations),
* EASY with *sticky* reservations (Moab-era fixed start times), and
* the weekly-drain capability windows NICS ran on Kraken.

Run:  python examples/capability_scheduling.py
"""

import numpy as np

from repro.core.report import ascii_table
from repro.experiments.f3_wait_times import _feeder, single_site_workload
from repro.experiments.f4_capability import _hero_arrivals
from repro.infra.cluster import Cluster
from repro.infra.scheduler import EasyBackfillScheduler, WeeklyDrainScheduler
from repro.infra.units import DAY, HOUR, WEEK
from repro.sim import RandomStreams, Simulator


def run_policy(label, factory, days=28.0, load=0.65, heroes_per_week=4):
    sim = Simulator()
    cluster = Cluster("kraken-like", nodes=48, cores_per_node=8)
    scheduler = factory(sim, cluster)
    streams = RandomStreams(23)
    background = single_site_workload(
        streams.stream("bg"), cluster, days, load=load,
        walltime_pad=(2.0, 5.0), runtime_median=4 * HOUR,
    )
    heroes = _hero_arrivals(
        streams.stream("heroes"), cluster, days, per_week=heroes_per_week
    )
    arrivals = sorted(background + heroes, key=lambda pair: pair[0])
    sim.process(_feeder(sim, scheduler, arrivals), name="feeder")
    horizon = days * DAY
    sim.run(until=horizon)
    finished = [j for j in scheduler.completed if j.start_time is not None]
    delivered = sum(
        cluster.nodes_for(j.cores) * (min(j.end_time, horizon) - j.start_time)
        for j in finished
    )
    hero_waits = [j.wait_time / HOUR for j in finished if j.user == "hero"]
    return [
        label,
        f"{100 * delivered / (cluster.nodes * horizon):.1f}%",
        f"{np.median(hero_waits):.0f}h" if hero_waits else "-",
        len(hero_waits),
    ]


def main() -> None:
    print(__doc__)
    rows = [
        run_policy("EASY (reactive)", EasyBackfillScheduler),
        run_policy(
            "EASY (sticky reservations)",
            lambda sim, cluster: EasyBackfillScheduler(
                sim, cluster, sticky_shadow=True
            ),
        ),
        run_policy(
            "weekly drain windows",
            lambda sim, cluster: WeeklyDrainScheduler(
                sim,
                cluster,
                capability_fraction=0.9,
                window=2 * DAY,
                period=WEEK,
                first_window=3 * DAY,
            ),
        ),
    ]
    print(
        ascii_table(
            ["policy", "utilization", "hero median wait", "heroes completed"],
            rows,
            title="28 days, 65% background load, 4 full-machine heroes/week",
        )
    )


if __name__ == "__main__":
    main()
