"""Property-based scenario fuzzing: random federations vs. the oracle.

:func:`run_fuzz` drives hypothesis over the scenario-space strategies with a
fixed seed and budget: each drawn :class:`ScenarioProgram` is compiled,
simulated, and checked against every invariant in
:mod:`repro.scenarios.oracle`.  Two guarantees the CLI contract depends on:

* **determinism** — the same ``(seed, budget)`` replays the identical
  scenario sequence (the hypothesis RNG is pinned with ``@seed`` and the
  example database is disabled), and the report is byte-stable: no timing,
  no ordering from unsorted containers, hypothesis's own chatter silenced;
* **replayability** — a failure report carries the offending program (shrunk
  to a minimal counterexample by hypothesis), the compiled config and the
  ``repro fuzz`` invocation that reproduces it from the seed alone.

A scenario that *crashes* the simulator is as much a finding as one that
breaks an invariant; both are shrunk and reported the same way.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO, Optional

try:
    from hypothesis import HealthCheck, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings as hypothesis_settings
    from hypothesis.reporting import with_reporter
except ImportError as exc:  # pragma: no cover - environment-dependent
    raise ImportError(
        "scenario fuzzing needs hypothesis (pip install hypothesis)"
    ) from exc

from repro.scenarios.dsl import ScenarioProgram
from repro.scenarios.oracle import OracleReport, check_scenario
from repro.scenarios.strategies import scenario_programs
from repro.workloads.synthetic import run_scenario

__all__ = ["FuzzOutcome", "run_fuzz"]


class OracleViolationError(AssertionError):
    """A scenario broke at least one invariant (drives hypothesis shrinking)."""


@dataclass
class FuzzOutcome:
    """What one fuzzing campaign did."""

    budget: int
    seed: int
    executed: int = 0
    failure: Optional[ScenarioProgram] = None
    failure_report: Optional[OracleReport] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None and self.error is None


def _print_replay(outcome: FuzzOutcome, out: IO[str]) -> None:
    if outcome.failure is not None:
        print(f"scenario: {outcome.failure!r}", file=out)
        print(f"config:   {outcome.failure.compile()!r}", file=out)
    print(
        f"replay:   python -m repro fuzz "
        f"--budget {outcome.budget} --seed {outcome.seed}",
        file=out,
    )


def run_fuzz(
    budget: int,
    seed: int,
    max_days: float = 6.0,
    out: IO[str] = sys.stdout,
) -> FuzzOutcome:
    """Run ``budget`` random scenarios against the oracle; report to ``out``.

    Returns the outcome (``.ok`` decides the CLI exit code).  The executed
    count can exceed the budget on failure: hypothesis replays scenarios
    while shrinking to a minimal counterexample, which keeps the *reported*
    program small without affecting determinism.
    """
    if budget < 1:
        raise ValueError(f"--budget must be >= 1, got {budget}")
    if seed < 0:
        raise ValueError(f"--seed must be >= 0, got {seed}")
    outcome = FuzzOutcome(budget=budget, seed=seed)
    print(f"fuzz: budget={budget} seed={seed} max-days={max_days:g}", file=out)

    @hypothesis_settings(
        max_examples=budget,
        database=None,
        deadline=None,
        derandomize=False,
        print_blob=False,
        # Shrinking a failure can stumble into a *different* bug; chase one
        # counterexample to its minimum instead of raising an ExceptionGroup
        # (which would be reported as a harness crash, nondeterministically).
        report_multiple_bugs=False,
        suppress_health_check=list(HealthCheck),
    )
    @hypothesis_seed(seed)
    @given(scenario_programs(max_days=max_days))
    def property_holds(program: ScenarioProgram) -> None:
        outcome.executed += 1
        # Remember the program under test: if it crashes the simulator,
        # hypothesis's final shrink replay leaves the minimal example here.
        outcome.failure = program
        result = run_scenario(program.compile())
        report = check_scenario(result)
        if not report.ok:
            outcome.failure_report = report
            raise OracleViolationError(
                "; ".join(str(v) for v in report.violations)
            )
        outcome.failure = None

    try:
        # Hypothesis narrates falsifying examples through its reporter;
        # silence it so the byte-stable report below is the only output.
        with with_reporter(lambda _message: None):
            property_holds()
    except OracleViolationError:
        report = outcome.failure_report
        assert report is not None
        print(
            f"FAILED: {len(report.violations)} invariant violation(s)",
            file=out,
        )
        for violation in report.violations:
            print(f"  {violation}", file=out)
        print("invariants:", file=out)
        for line in report.summary().splitlines():
            print(f"  {line}", file=out)
        _print_replay(outcome, out)
    except Exception as exc:  # simulator crash or harness fault — report it
        outcome.error = f"{type(exc).__name__}: {exc}"
        print(f"FAILED: scenario crashed: {outcome.error}", file=out)
        _print_replay(outcome, out)
    else:
        print(f"ok: {outcome.executed} scenarios, all invariants held", file=out)
    return outcome
