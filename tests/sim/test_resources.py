"""Tests for counting resources and stores."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Simulator
from repro.sim.resources import Resource, Store


def test_resource_grants_immediately_when_available():
    sim = Simulator()
    log = []

    def worker(sim, res):
        req = res.request()
        yield req
        log.append(sim.now)
        res.release(req)

    res = Resource(sim, capacity=1)
    sim.process(worker(sim, res))
    sim.run()
    assert log == [0.0]
    assert res.in_use == 0


def test_resource_serializes_under_contention():
    sim = Simulator()
    log = []

    def worker(sim, res, tag, hold):
        req = res.request()
        yield req
        log.append((sim.now, tag, "start"))
        yield sim.timeout(hold)
        res.release(req)
        log.append((sim.now, tag, "end"))

    res = Resource(sim, capacity=1)
    sim.process(worker(sim, res, "a", 5.0))
    sim.process(worker(sim, res, "b", 3.0))
    sim.run()
    assert log == [
        (0.0, "a", "start"),
        (5.0, "a", "end"),
        (5.0, "b", "start"),
        (8.0, "b", "end"),
    ]


def test_multi_unit_requests():
    sim = Simulator()
    log = []

    def worker(sim, res, tag, amount, hold):
        req = res.request(amount=amount)
        yield req
        log.append((sim.now, tag))
        yield sim.timeout(hold)
        res.release(req)

    res = Resource(sim, capacity=4)
    sim.process(worker(sim, res, "big", 3, 10.0))
    sim.process(worker(sim, res, "small", 2, 1.0))  # must wait for big
    sim.run()
    assert log == [(0.0, "big"), (10.0, "small")]


def test_strict_queue_order_blocks_small_behind_large():
    """A large head request blocks later small requests (no starvation)."""
    sim = Simulator()
    log = []

    def holder(sim, res):
        req = res.request(amount=3)
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def big_then_small(sim, res):
        yield sim.timeout(1.0)
        big = res.request(amount=4)  # cannot fit until holder releases
        small = res.request(amount=1)  # could fit now, but must wait behind big
        yield big
        log.append(("big", sim.now))
        res.release(big)
        yield small
        log.append(("small", sim.now))
        res.release(small)

    res = Resource(sim, capacity=4)
    sim.process(holder(sim, res))
    sim.process(big_then_small(sim, res))
    sim.run()
    assert log == [("big", 10.0), ("small", 10.0)]


def test_priority_orders_queue():
    sim = Simulator()
    log = []

    def holder(sim, res):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def worker(sim, res, tag, priority):
        yield sim.timeout(1.0)
        req = res.request(priority=priority)
        yield req
        log.append(tag)
        res.release(req)

    res = Resource(sim, capacity=1)
    sim.process(holder(sim, res))
    sim.process(worker(sim, res, "low", 10))
    sim.process(worker(sim, res, "high", 0))
    sim.run()
    assert log == ["high", "low"]


def test_cancel_removes_pending_request():
    sim = Simulator()
    log = []

    def holder(sim, res):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def impatient(sim, res):
        yield sim.timeout(1.0)
        req = res.request()
        yield sim.timeout(1.0)  # give up before granted
        req.cancel()
        log.append("cancelled")

    def patient(sim, res):
        yield sim.timeout(2.0)
        req = res.request()
        yield req
        log.append(("granted", sim.now))
        res.release(req)

    res = Resource(sim, capacity=1)
    sim.process(holder(sim, res))
    sim.process(impatient(sim, res))
    sim.process(patient(sim, res))
    sim.run()
    assert ("granted", 5.0) in log and "cancelled" in log


def test_request_validation():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(ValueError):
        res.request(amount=0)
    with pytest.raises(ValueError):
        res.request(amount=3)
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_release_of_ungranted_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    assert first.triggered and not second.triggered
    with pytest.raises(RuntimeError):
        res.release(second)


def test_store_fifo():
    sim = Simulator()
    log = []

    def producer(sim, store):
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            log.append((sim.now, item))

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert log == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_with_filter():
    sim = Simulator()
    log = []

    def producer(sim, store):
        yield sim.timeout(1.0)
        store.put("apple")
        yield sim.timeout(1.0)
        store.put("banana")

    def consumer(sim, store):
        item = yield store.get(filter=lambda x: x.startswith("b"))
        log.append((sim.now, item))

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert log == [(2.0, "banana")]
    assert store.items == ("apple",)


def test_store_buffered_item_served_immediately():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    log = []

    def consumer(sim, store):
        item = yield store.get()
        log.append((sim.now, item))

    sim.process(consumer(sim, store))
    sim.run()
    assert log == [(0.0, "x")]
    assert len(store) == 0


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=20),
    st.integers(min_value=4, max_value=8),
)
def test_resource_never_exceeds_capacity(amounts, capacity):
    """Property: in-use units never exceed capacity; all requests complete."""
    sim = Simulator()
    completed = []
    max_in_use = [0]

    def worker(sim, res, amount, tag):
        req = res.request(amount=amount)
        yield req
        max_in_use[0] = max(max_in_use[0], res.in_use)
        assert res.in_use <= res.capacity
        yield sim.timeout(1.0)
        res.release(req)
        completed.append(tag)

    res = Resource(sim, capacity=capacity)
    for tag, amount in enumerate(amounts):
        sim.process(worker(sim, res, amount, tag))
    sim.run()
    assert sorted(completed) == list(range(len(amounts)))
    assert res.in_use == 0
    assert 0 < max_in_use[0] <= capacity
