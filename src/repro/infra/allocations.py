"""Allocation accounts and service-unit charging.

TeraGrid usage is charged against *allocations*: peer-reviewed research
grants, small startup grants, or *community* allocations held by science
gateways on behalf of their whole user base.  The community-allocation
mechanism is what makes gateway usage measurement hard — thousands of end
users share one account — and is why the paper proposes per-job gateway-user
attributes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Allocation", "AllocationLedger", "AllocationType"]


class AllocationType(enum.Enum):
    STARTUP = "startup"  # small exploratory grants
    RESEARCH = "research"  # peer-reviewed (TRAC) awards
    COMMUNITY = "community"  # gateway-held, shared by many end users


@dataclass
class Allocation:
    """A single account: an NU budget shared by one or more users.

    ``field_of_science`` is the award's discipline (allocations, not users,
    carry the field in TeraGrid accounting — usage reports join through it).
    """

    account_id: str
    kind: AllocationType
    budget_nu: float
    users: set[str] = field(default_factory=set)
    charged_nu: float = 0.0
    overdraft_allowed: bool = True
    field_of_science: Optional[str] = None

    def __post_init__(self) -> None:
        if self.budget_nu < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget_nu}")

    @property
    def remaining_nu(self) -> float:
        return self.budget_nu - self.charged_nu

    @property
    def exhausted(self) -> bool:
        return self.charged_nu >= self.budget_nu

    def charge(self, nu: float) -> float:
        """Charge ``nu`` normalized units; returns the amount charged.

        With ``overdraft_allowed`` (the default — TeraGrid charged jobs that
        ran even if they overran the award) the full amount is charged; the
        account simply goes negative.  Otherwise the charge is clipped to the
        remaining balance.
        """
        if nu < 0:
            raise ValueError(f"charge must be >= 0, got {nu}")
        amount = nu if self.overdraft_allowed else min(nu, max(self.remaining_nu, 0.0))
        self.charged_nu += amount
        return amount


class AllocationLedger:
    """Registry of all allocations, indexed by account and by user."""

    def __init__(self) -> None:
        self._accounts: dict[str, Allocation] = {}
        self._by_user: dict[str, list[str]] = {}

    def create(
        self,
        account_id: str,
        kind: AllocationType,
        budget_nu: float,
        users: set[str] | None = None,
        overdraft_allowed: bool = True,
        field_of_science: Optional[str] = None,
    ) -> Allocation:
        if account_id in self._accounts:
            raise ValueError(f"duplicate account id {account_id!r}")
        allocation = Allocation(
            account_id=account_id,
            kind=kind,
            budget_nu=budget_nu,
            users=set(users or ()),
            overdraft_allowed=overdraft_allowed,
            field_of_science=field_of_science,
        )
        self._accounts[account_id] = allocation
        for user in allocation.users:
            self._by_user.setdefault(user, []).append(account_id)
        return allocation

    def add_user(self, account_id: str, user: str) -> None:
        allocation = self.get(account_id)
        if user not in allocation.users:
            allocation.users.add(user)
            self._by_user.setdefault(user, []).append(account_id)

    def get(self, account_id: str) -> Allocation:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise KeyError(f"unknown account {account_id!r}") from None

    def accounts_of(self, user: str) -> list[Allocation]:
        return [self._accounts[a] for a in self._by_user.get(user, [])]

    def charge(self, account_id: str, nu: float) -> float:
        return self.get(account_id).charge(nu)

    def all_accounts(self) -> list[Allocation]:
        return list(self._accounts.values())

    def total_charged(self) -> float:
        return sum(a.charged_nu for a in self._accounts.values())

    def __contains__(self, account_id: str) -> bool:
        return account_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)
