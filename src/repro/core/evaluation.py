"""Scoring the measurement system against simulation ground truth.

The real TeraGrid could never do this — there was no ground truth.  The
simulation knows each job's and each user's true modality, so classifier
quality becomes measurable: per-modality precision/recall/F1 over jobs, user
counts versus truth, and per-identity primary-modality accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.classifier import Classification
from repro.core.modalities import MODALITY_ORDER, Modality

__all__ = ["ConfusionSummary", "score_classification", "user_count_errors"]


@dataclass
class ConfusionSummary:
    """Per-modality job-level confusion statistics."""

    #: confusion[truth][predicted] = job count
    confusion: dict[Modality, dict[Modality, int]] = field(default_factory=dict)
    n_jobs: int = 0
    n_correct: int = 0

    @property
    def accuracy(self) -> float:
        if self.n_jobs == 0:
            return 0.0
        return self.n_correct / self.n_jobs

    def _predicted_count(self, modality: Modality) -> int:
        return sum(row.get(modality, 0) for row in self.confusion.values())

    def _truth_count(self, modality: Modality) -> int:
        return sum(self.confusion.get(modality, {}).values())

    def precision(self, modality: Modality) -> float:
        predicted = self._predicted_count(modality)
        if predicted == 0:
            return 0.0
        return self.confusion.get(modality, {}).get(modality, 0) / predicted

    def recall(self, modality: Modality) -> float:
        truth = self._truth_count(modality)
        if truth == 0:
            return 0.0
        return self.confusion.get(modality, {}).get(modality, 0) / truth

    def f1(self, modality: Modality) -> float:
        p, r = self.precision(modality), self.recall(modality)
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def score_classification(
    classification: Classification,
    truth_by_job: Mapping[int, Modality],
) -> ConfusionSummary:
    """Job-level confusion of predicted labels against ground truth.

    Jobs present in the classification but absent from ``truth_by_job`` are
    an error (the harness must supply truth for every simulated job).
    """
    summary = ConfusionSummary(
        confusion={m: {n: 0 for n in MODALITY_ORDER} for m in MODALITY_ORDER}
    )
    for job_id, predicted in classification.job_labels.items():
        try:
            truth = truth_by_job[job_id]
        except KeyError:
            raise ValueError(f"no ground truth for job {job_id}") from None
        summary.confusion[truth][predicted] += 1
        summary.n_jobs += 1
        if truth is predicted:
            summary.n_correct += 1
    return summary


def user_count_errors(
    measured_users: Mapping[Modality, int],
    true_users: Mapping[Modality, int],
) -> dict[Modality, float]:
    """Relative error of measured user counts per modality.

    ``(measured - true) / true``; 0 is perfect, -1 means the modality's users
    were entirely invisible (the uninstrumented-gateway pathology).
    A modality with no true users maps to 0.0 when also measured as 0, else
    +inf is avoided by reporting the raw measured count as the error.
    """
    errors: dict[Modality, float] = {}
    for modality in MODALITY_ORDER:
        true = true_users.get(modality, 0)
        measured = measured_users.get(modality, 0)
        if true == 0:
            errors[modality] = float(measured)
        else:
            errors[modality] = (measured - true) / true
    return errors
