"""Tests for the experiment registry and fast-knob experiment runs.

Experiments run here at reduced horizons — correctness of structure and
direction, not publication-quality statistics (that is what benchmarks/ is
for).
"""

import pytest

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.experiments import ExperimentOutput, registry, run_experiment
from repro.experiments.base import campaign

ALL_IDS = {
    "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
    "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
    "A1", "A2", "A3", "A4", "A5", "R1",
}


def test_registry_covers_design_md_index():
    assert set(registry) == ALL_IDS


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("T99")


def test_campaign_cache_returns_same_object():
    a = campaign(days=6.0, seed=77, population_scale=0.02)
    b = campaign(days=6.0, seed=77, population_scale=0.02)
    assert a is b
    c = campaign(days=6.0, seed=78, population_scale=0.02)
    assert c is not a


def test_campaign_cache_key_is_spelling_insensitive():
    # Regression: days=6 (int) and days=6.0 (float) used to be distinct memo
    # keys, silently doubling the simulation cost of a mixed-caller suite.
    a = campaign(days=6, seed=79, population_scale=0.02)
    b = campaign(days=6.0, seed=79.0, population_scale=0.02)
    assert a is b


@pytest.fixture(scope="module")
def fast_knobs():
    return dict(days=10.0, seed=2, population_scale=0.03)


def test_t1_structure_and_shape(fast_knobs):
    output = run_experiment("T1", **fast_knobs)
    assert isinstance(output, ExperimentOutput)
    assert output.experiment_id == "T1"
    assert "T1" in output.text
    for key in ("true", "instrumented", "uninstrumented"):
        assert set(output.data[key]) == {m.value for m in MODALITY_ORDER}
    assert (
        output.data["uninstrumented"]["gateway"]
        <= output.data["true"]["gateway"]
    )


def test_t2_nu_shares_sum_to_one(fast_knobs):
    output = run_experiment("T2", **fast_knobs)
    assert sum(output.data["nu_share"].values()) == pytest.approx(1.0)
    assert output.data["gini"] > 0


def test_t3_instrumented_beats_heuristic(fast_knobs):
    output = run_experiment("T3", **fast_knobs)
    assert output.data["instrumented_accuracy"] >= output.data["heuristic_accuracy"]
    assert output.data["heuristic_user_error"]["gateway"] < 0


def test_t4_covers_all_sites(fast_knobs):
    output = run_experiment("T4", **fast_knobs)
    assert len(output.data) == 3  # small federation
    for split in output.data.values():
        assert set(split) == {m.value for m in MODALITY_ORDER}


def test_t5_shares_are_probabilities(fast_knobs):
    output = run_experiment("T5", **fast_knobs)
    for key in ("true_shares", "measured_shares", "survey_shares"):
        shares = output.data[key]
        assert all(0.0 <= v <= 1.0 for v in shares.values())
    assert 0.0 <= output.data["response_rate"] <= 1.0


def test_f1_series_lengths_match(fast_knobs):
    output = run_experiment(
        "F1", days=40.0, seed=2, ramp_days=30.0, population_scale=0.03
    )
    lengths = {len(v) for v in output.data.values()}
    assert len(lengths) == 1


def test_f2_ccdf_monotone_decreasing(fast_knobs):
    output = run_experiment("F2", **fast_knobs)
    for series in output.data["ccdf"].values():
        values = [y for _x, y in series]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
        assert values[0] == 1.0  # every job uses >= 1 core


def test_f3_easy_dominates_fcfs_on_small_jobs():
    output = run_experiment("F3", days=4.0, seed=5)
    small = "small (<=8 cores)"
    assert (
        output.data["EASY"][small]["median_h"]
        <= output.data["FCFS"][small]["median_h"]
    )
    assert set(output.data["utilization"]) == {"FCFS", "EASY"}


def test_f4_reports_all_rates():
    output = run_experiment("F4", days=14.0, hero_rates=(1, 4))
    assert set(output.data) == {1, 4, "crossover_per_week"}
    for rate in (1, 4):
        assert 0 < output.data[rate]["easy"]["utilization"] <= 1
        assert 0 < output.data[rate]["drain"]["utilization"] <= 1


def test_f5_all_strategies_measured():
    output = run_experiment("F5", days=2.0, seed=3)
    assert set(output.data["strategies"]) == {
        "random",
        "round_robin",
        "least_loaded",
        "predicted_start",
    }
    for outcome in output.data["strategies"].values():
        assert outcome["n_started"] > 0


def test_f6_identified_monotone():
    output = run_experiment("F6", days=8.0, coverages=(0.0, 0.5, 1.0))
    identified = [output.data[c]["identified"] for c in (0.0, 0.5, 1.0)]
    assert identified == sorted(identified)
    assert output.data[0.0]["identified"] == 0


def test_f7_sweep_and_coupled():
    output = run_experiment("F7", widths=(2, 8))
    sweep = dict(output.data["sweep"])
    assert sweep[2.0] <= sweep[8.0] + 1e-9
    assert output.data["coupled"]["runtime_slowdown"] > 1.0


def test_a1_reports_all_pads():
    output = run_experiment("A1", days=4.0)
    assert len(output.data) == 4
    for outcome in output.data.values():
        assert 0 < outcome["utilization"] <= 1
        assert outcome["n_finished"] > 0


def test_a2_reactive_beats_sticky():
    output = run_experiment("A2", days=6.0)
    for outcome in output.data.values():
        assert (
            outcome["reactive"]["utilization"]
            >= outcome["sticky"]["utilization"] - 0.02
        )


def test_f8_measurement_flip():
    output = run_experiment("F8", days=5.0, width=40)
    assert output.data["pilot_untagged"]["records_seen"] == 1
    assert output.data["pilot_untagged"]["measured_modality"] == "batch"
    assert output.data["pilot_tagged"]["measured_modality"] == "ensemble"


def test_f9_structure(fast_knobs):
    output = run_experiment("F9", **fast_knobs)
    for modality in ("batch", "ensemble", "coupled"):
        assert "transfers" in output.data[modality]
    assert output.data["total_transfers"] >= 0


def test_r1_replicates_structure():
    output = run_experiment("R1", days=5.0, seeds=(11, 12), population_scale=0.02)
    assert output.data["n_seeds"] == 2
    for modality in ("batch", "gateway"):
        assert len(output.data[modality]["values"]) == 2


def test_t6_fields_structure(fast_knobs):
    output = run_experiment("T6", **fast_knobs)
    assert output.data
    total = sum(entry["nu"] for entry in output.data.values())
    assert total > 0
    assert "(unassigned)" not in output.data


def test_a3_structure():
    output = run_experiment("A3", mtbfs_hours=(500.0,))
    entry = output.data[500.0]
    assert entry["checkpoint"]["waste_ratio"] <= entry["restart"]["waste_ratio"]


def test_a5_recovery_ladder():
    output = run_experiment("A5", days=3.0, regimes=("hostile",))
    clean = output.data["clean"]
    none = output.data["hostile / none"]
    retry = output.data["hostile / retry"]
    audit = output.data["hostile / audit"]
    # clean cell: lossless exchange, perfect conservation
    assert clean["delivered"] == clean["published"]
    assert clean["nu_err"] == pytest.approx(0.0, abs=1e-9)
    assert clean["unrecovered"] == 0
    # the recovery ladder strictly improves delivery
    assert none["delivered"] < retry["delivered"] <= audit["delivered"]
    assert none["unrecovered"] > 0
    assert retry["unrecovered"] <= none["unrecovered"]
    # the audit's guarantee: nothing unrecovered, conservation restored
    assert audit["unrecovered"] == 0
    assert audit["delivered"] == audit["published"]
    assert audit["nu_err"] == pytest.approx(0.0, abs=1e-9)
    # measurement damage is undercounting, not misclassification
    assert none["accuracy"] > 0.9


def test_t7_gateway_report(fast_knobs):
    output = run_experiment("T7", **fast_knobs)
    assert len(output.data) >= 2  # several gateways active
    for entry in output.data.values():
        assert entry["end_users"] >= 0
        assert 0.0 <= entry["coverage"] <= 1.0


def test_t8_access_paths_sum_to_totals(fast_knobs):
    output = run_experiment("T8", **fast_knobs)
    for modality, entry in output.data.items():
        parts = sum(entry[p] for p in ("login", "gram", "gateway", "engine/other"))
        assert parts == entry["total"]
    assert output.data["gateway"]["gateway"] == output.data["gateway"]["total"]
