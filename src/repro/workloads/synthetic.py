"""End-to-end scenario runner: federation + population + behaviours → records.

:func:`run_scenario` is the workhorse every experiment builds on.  It wires
the full substrate, runs the simulation for a configured horizon, drains the
accounting feeds and returns both the *observable* products (the central
accounting DB) and the *ground truth* (per-job and per-identity modality
maps) needed to score the measurement system.

Two campaign-sharing companions live here as well:

* :class:`CampaignKey` — the canonical identity of one shared campaign
  (``days=90`` and ``days=90.0`` are the *same* campaign), used by the
  in-process memo and the on-disk artifact store alike;
* :class:`CampaignArtifact` — a measurement-sufficient snapshot of a
  :class:`ScenarioResult`: everything the table/figure experiments read
  (records, truth maps, community accounts, accounting totals, WAN
  transfers) without the live :class:`~repro.sim.Simulator` object graph,
  so one worker's simulation can be serialized once and fanned out to the
  rest of a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Type

import repro.infra as infra
from repro.core.modalities import Modality
from repro.infra.accounting import CentralAccountingDB, UsageRecord
from repro.infra.amie import (
    AmieIngestEndpoint,
    IngestRecoveryPolicy,
    PacketFaultRegime,
    ReconciliationReport,
    ResilientAmieFeed,
)
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.resilience import OutagePolicy, SiteOutageInjector
from repro.infra.scheduler.base import BatchScheduler
from repro.infra.scheduler.backfill import EasyBackfillScheduler
from repro.infra.units import DAY, HOUR, MINUTE
from repro.obs.metrics import MetricsRegistry
from repro.sim import RandomStreams, Simulator
from repro.users.behavior import (
    RecoveryPolicy,
    SimulationContext,
    start_behaviors,
)
from repro.users.population import (
    Population,
    PopulationSpec,
    build_population,
    cell_members,
)
from repro.users.profiles import BehaviorProfile
from repro.workloads.scenarios import SiteSpec, federation_specs

__all__ = [
    "CAMPAIGN_DAYS",
    "CAMPAIGN_POPULATION_SCALE",
    "CAMPAIGN_SCALE",
    "CAMPAIGN_SEED",
    "CampaignArtifact",
    "CampaignKey",
    "ScenarioConfig",
    "ScenarioResult",
    "TransferSummary",
    "run_scenario",
]

#: The canonical campaign most table experiments share (DESIGN.md §4).
CAMPAIGN_DAYS = 90.0
CAMPAIGN_SEED = 1
CAMPAIGN_SCALE = "small"
CAMPAIGN_POPULATION_SCALE = 0.05


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of one simulated campaign."""

    scale: str = "small"
    days: float = 30.0
    seed: int = 0
    population: PopulationSpec = field(default_factory=lambda: PopulationSpec(scale=0.05))
    gateway_tagging_coverage: float = 1.0
    scheduler_factory: Type[BatchScheduler] | Callable[..., BatchScheduler] = (
        EasyBackfillScheduler
    )
    metascheduler_strategy: SelectionStrategy = SelectionStrategy.PREDICTED_START
    amie_interval: float = 6 * HOUR
    info_publish_interval: float = 15 * 60.0
    profiles: Optional[dict[Modality, BehaviorProfile]] = None
    sites: Optional[tuple[SiteSpec, ...]] = None
    #: gateway end users activate uniformly over this many days (0 = at once)
    gateway_adoption_ramp_days: float = 0.0
    #: unplanned-outage process per site (None = no outages, legacy runs)
    outages: Optional[OutagePolicy] = None
    #: how long the info service keeps serving pre-outage state for a dead site
    outage_propagation_lag: float = 10 * MINUTE
    #: per-modality reaction to infrastructure failure (None = legacy)
    recovery: Optional[dict[Modality, RecoveryPolicy]] = None
    #: gateway requests held through a backend outage (0 = shed them all)
    gateway_backlog: int = 0
    #: fault climate of the site→center AMIE exchange (None/disabled = the
    #: historical lossless in-process call, byte-identical to legacy runs)
    packet_faults: Optional[PacketFaultRegime] = None
    #: recovery discipline against ``packet_faults`` (None = full defaults:
    #: retransmit with backoff + end-of-run reconciliation re-sends)
    ingest_recovery: Optional[IngestRecoveryPolicy] = None
    #: population cell ``(cell, cells)`` of the sharded scale tier: the full
    #: population is built identically in every cell, but only users whose
    #: ordinal satisfies ``ordinal % cells == cell`` run behavior processes.
    #: ``None`` (legacy) simulates everyone in one coupled run.
    shard: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        # Fail at construction with a nameable knob, not downstream with a
        # zero-length run, a silent no-tagging campaign, or a ValueError
        # deep inside the gateway layer.
        if not self.days > 0:
            raise ValueError(f"days must be positive, got {self.days}")
        if not (0.0 <= self.gateway_tagging_coverage <= 1.0):
            raise ValueError(
                "gateway_tagging_coverage must be in [0, 1], "
                f"got {self.gateway_tagging_coverage}"
            )
        if self.gateway_backlog < 0:
            raise ValueError(
                f"gateway_backlog must be >= 0, got {self.gateway_backlog}"
            )
        if self.gateway_adoption_ramp_days < 0:
            raise ValueError(
                "gateway_adoption_ramp_days must be >= 0, "
                f"got {self.gateway_adoption_ramp_days}"
            )
        if self.amie_interval <= 0:
            raise ValueError(
                f"amie_interval must be positive, got {self.amie_interval}"
            )
        if self.info_publish_interval <= 0:
            raise ValueError(
                "info_publish_interval must be positive, "
                f"got {self.info_publish_interval}"
            )
        if self.outage_propagation_lag < 0:
            raise ValueError(
                "outage_propagation_lag must be >= 0, "
                f"got {self.outage_propagation_lag}"
            )
        if self.packet_faults is not None and not isinstance(
            self.packet_faults, PacketFaultRegime
        ):
            raise ValueError(
                f"packet_faults must be a PacketFaultRegime, "
                f"got {self.packet_faults!r}"
            )
        if self.ingest_recovery is not None and not isinstance(
            self.ingest_recovery, IngestRecoveryPolicy
        ):
            raise ValueError(
                f"ingest_recovery must be an IngestRecoveryPolicy, "
                f"got {self.ingest_recovery!r}"
            )
        if self.shard is not None:
            cell, cells = self.shard
            if not (
                isinstance(cell, int) and isinstance(cells, int)
                and cells >= 1 and 0 <= cell < cells
            ):
                raise ValueError(
                    f"shard must be (cell, cells) with 0 <= cell < cells, "
                    f"got {self.shard!r}"
                )

    @property
    def horizon(self) -> float:
        return self.days * DAY

    @property
    def faulty_ingest(self) -> bool:
        """Whether the AMIE exchange runs over the faulty transport."""
        return self.packet_faults is not None and self.packet_faults.enabled


@dataclass
class ScenarioResult:
    """Everything a measurement experiment needs from one run."""

    config: ScenarioConfig
    central: CentralAccountingDB
    population: Population
    providers: list
    gateways: dict
    sim: Simulator
    ledger: infra.AllocationLedger
    network: infra.Network
    metascheduler: Optional[infra.Metascheduler] = None
    context: Optional[SimulationContext] = None
    injectors: list = field(default_factory=list)
    #: central receive side of the faulty AMIE exchange (None = lossless run)
    amie_endpoint: Optional[AmieIngestEndpoint] = None
    #: end-of-run audit outcome (None = lossless run)
    reconciliation: Optional[ReconciliationReport] = None
    #: the run-wide metric namespace every component registered into
    #: (``ingest.*``, ``gateway.*``, ``resilience.*``, ``amie.*``); None only
    #: for results constructed by hand in tests
    metrics: Optional[MetricsRegistry] = None

    @property
    def records(self) -> list[UsageRecord]:
        return self.central.all_records()

    @property
    def community_accounts(self) -> set[str]:
        return {
            account for _user, account in self.population.community_accounts.values()
        }

    def truth_by_job(self) -> dict[int, Modality]:
        """Ground-truth modality of every job with a usage record."""
        truth: dict[int, Modality] = {}
        for provider in self.providers:
            for job in provider.scheduler.completed:
                if job.true_modality is None:
                    raise AssertionError(
                        f"job {job.job_id} finished without ground truth"
                    )
                truth[job.job_id] = Modality(job.true_modality)
        return truth

    def truth_by_identity(self) -> dict[str, Modality]:
        return self.population.truth_by_identity

    def active_truth_by_identity(self) -> dict[str, Modality]:
        """Ground truth restricted to identities that actually ran jobs.

        Short campaigns leave some (especially gateway/coupled) users
        inactive; measured counts should be compared against users who left
        any trace in accounting.
        """
        active: set[str] = set()
        for provider in self.providers:
            for job in provider.scheduler.completed:
                user = job.true_user or job.user
                gateway = job.attributes.get("gateway_name")
                if job.attributes.get("submit_interface") == "gateway":
                    active.add(f"{gateway}:{user}")
                else:
                    active.add(user)
        return {
            identity: modality
            for identity, modality in self.population.truth_by_identity.items()
            if identity in active
        }


def run_scenario(config: ScenarioConfig | None = None, **overrides) -> ScenarioResult:
    """Build and run one campaign; see :class:`ScenarioConfig` for knobs.

    Keyword overrides are applied on top of ``config`` (or the defaults), so
    ``run_scenario(days=90, seed=3)`` works without building a config.
    """
    if config is None:
        config = ScenarioConfig()
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)

    sim = Simulator()
    if config.shard is not None:
        # Scale tier: population cells draw through the vectorized
        # pre-sampling facade.  Every cell of a campaign uses the same master
        # seed, so the shared world (population, gateways, outages) is
        # identical across cells and cell outputs are independent of how
        # cells are grouped onto stage-1 tasks.
        from repro.sim.rng import BufferedStreams

        streams: RandomStreams = BufferedStreams(seed=config.seed)
    else:
        streams = RandomStreams(seed=config.seed)
    ledger = infra.AllocationLedger()
    central = CentralAccountingDB()
    network = infra.Network(sim)
    # One metric namespace per run: every component below registers its
    # counters here, so the oracle (and the telemetry sidecar) read the same
    # cells the components mutate.
    metrics = MetricsRegistry()

    # A disabled regime takes the plain lossless path below — not merely an
    # equivalent-looking one: the resilient feed schedules extra simulator
    # events, and byte-identity with historical runs demands zero of them.
    endpoint = None
    recovery = None
    if config.faulty_ingest:
        endpoint = AmieIngestEndpoint(central, metrics=metrics)
        recovery = (
            config.ingest_recovery
            if config.ingest_recovery is not None
            else IngestRecoveryPolicy()
        )

    specs = config.sites if config.sites is not None else federation_specs(config.scale)
    providers = []
    for spec in specs:
        feed_factory = None
        if endpoint is not None:
            def feed_factory(
                feed_sim, _name=spec.name, _endpoint=endpoint, _recovery=recovery
            ):
                return ResilientAmieFeed(
                    feed_sim,
                    _endpoint,
                    feed_id=_name,
                    regime=config.packet_faults,
                    policy=_recovery,
                    rng=streams.stream(f"amie:{_name}"),
                    interval=config.amie_interval,
                    metrics=metrics,
                )
        provider = infra.ResourceProvider(
            sim,
            spec.cluster(),
            ledger,
            central,
            scheduler_factory=config.scheduler_factory,
            amie_interval=config.amie_interval,
            feed_factory=feed_factory,
        )
        providers.append(provider)
        network.add_site(spec.name, spec.wan_bandwidth)

    info = infra.InformationService(
        sim, providers, publish_interval=config.info_publish_interval
    )
    meta = infra.Metascheduler(
        providers,
        config.metascheduler_strategy,
        rng=streams.stream("metascheduler"),
        info_service=info,
    )
    engine = infra.WorkflowEngine(sim, meta, network=network)
    coalloc = infra.CoAllocator(sim)

    population = build_population(
        config.population, streams.stream("population"), providers, ledger
    )
    gateways = {
        name: infra.ScienceGateway(
            name=name,
            community_user=community_user,
            community_account=account,
            rng=streams.stream(f"gateway:{name}"),
            tagging_coverage=config.gateway_tagging_coverage,
            sim=sim,
            max_backlog=config.gateway_backlog,
            metrics=metrics,
        )
        for name, (community_user, account) in population.community_accounts.items()
    }

    injectors = []
    if config.outages is not None:
        info.outage_propagation_lag = config.outage_propagation_lag
        injectors = [
            infra.SiteOutageInjector(
                sim,
                provider,
                streams.stream(f"outage:{provider.name}"),
                policy=config.outages,
                metascheduler=meta,
                metrics=metrics,
            )
            for provider in providers
        ]

    ctx = SimulationContext(
        sim=sim,
        streams=streams,
        providers=providers,
        metascheduler=meta,
        gateways=gateways,
        workflow_engine=engine,
        coallocator=coalloc,
        gateway_adoption_ramp=config.gateway_adoption_ramp_days * DAY,
        network=network,
        recovery=config.recovery,
    )
    member_indices = None
    if config.shard is not None:
        member_indices = cell_members(population, *config.shard)
    start_behaviors(
        ctx, population, profiles=config.profiles, member_indices=member_indices
    )

    sim.run(until=config.horizon)
    for provider in providers:
        provider.feed.drain()
    reconciliation = None
    if endpoint is not None:
        reconciliation = endpoint.reconcile(
            [provider.feed for provider in providers],
            resend=recovery.reconcile,
        )

    return ScenarioResult(
        config=config,
        central=central,
        population=population,
        providers=providers,
        gateways=gateways,
        sim=sim,
        ledger=ledger,
        network=network,
        metascheduler=meta,
        context=ctx,
        injectors=injectors,
        amie_endpoint=endpoint,
        reconciliation=reconciliation,
        metrics=metrics,
    )


@dataclass(frozen=True)
class CampaignKey:
    """Canonical identity of one shared campaign.

    Construct through :meth:`make`, which coerces every field to its
    canonical type — ``days=90`` (int) and ``days=90.0`` (float) historically
    produced *distinct* memo entries and therefore duplicate simulations;
    canonicalization collapses them.  The field set is exactly the knob set
    of :func:`repro.experiments.base.campaign`, and :meth:`config` expands a
    key back into the :class:`ScenarioConfig` that function builds, so a key
    alone is sufficient to (re)simulate its campaign bit-for-bit.
    """

    days: float
    seed: int
    scale: str
    population_scale: float
    gateway_tagging_coverage: float
    gateway_adoption_ramp_days: float

    @classmethod
    def make(
        cls,
        days: float = CAMPAIGN_DAYS,
        seed: int = CAMPAIGN_SEED,
        scale: str = CAMPAIGN_SCALE,
        population_scale: float = CAMPAIGN_POPULATION_SCALE,
        gateway_tagging_coverage: float = 1.0,
        gateway_adoption_ramp_days: float = 0.0,
    ) -> "CampaignKey":
        return cls(
            days=float(days),
            seed=int(seed),
            scale=str(scale),
            population_scale=float(population_scale),
            gateway_tagging_coverage=float(gateway_tagging_coverage),
            gateway_adoption_ramp_days=float(gateway_adoption_ramp_days),
        )

    def asdict(self) -> dict:
        return {
            "days": self.days,
            "seed": self.seed,
            "scale": self.scale,
            "population_scale": self.population_scale,
            "gateway_tagging_coverage": self.gateway_tagging_coverage,
            "gateway_adoption_ramp_days": self.gateway_adoption_ramp_days,
        }

    def config(self) -> ScenarioConfig:
        return ScenarioConfig(
            scale=self.scale,
            days=self.days,
            seed=self.seed,
            population=PopulationSpec(scale=self.population_scale),
            gateway_tagging_coverage=self.gateway_tagging_coverage,
            gateway_adoption_ramp_days=self.gateway_adoption_ramp_days,
        )


@dataclass(frozen=True)
class TransferSummary:
    """The analysis-facing slice of one completed :class:`~repro.infra.network.Transfer`."""

    src: str
    dst: str
    size_bytes: float
    tag: Optional[str]
    duration: Optional[float]


class _CentralView:
    """Accounting-DB stand-in backed by extracted data (read-only)."""

    def __init__(self, records: list[UsageRecord], total_nu: float) -> None:
        self._records = records
        self._total_nu = total_nu

    def all_records(self) -> list[UsageRecord]:
        return list(self._records)

    def total_nu(self) -> float:
        return self._total_nu

    def __len__(self) -> int:
        return len(self._records)


class _NetworkView:
    """Network stand-in exposing only the completed-transfer log."""

    def __init__(self, transfers: tuple[TransferSummary, ...]) -> None:
        self._transfers = transfers

    @property
    def completed_transfers(self) -> tuple[TransferSummary, ...]:
        return self._transfers


@dataclass
class CampaignArtifact:
    """A measurement-sufficient snapshot of one campaign's results.

    Duck-types the slice of :class:`ScenarioResult` the campaign-reading
    experiments consume — ``records``, the truth maps, ``community_accounts``,
    ``central.total_nu()`` and ``network.completed_transfers`` — while
    containing only plain picklable data (no simulator, no providers, no
    event queues).  :meth:`from_result` extracts one from a live result; the
    round-trip fidelity contract (every measurement taken from the artifact
    equals the one taken live) is enforced by the test suite, because the
    byte-identity of store-enabled sweeps rests on it.
    """

    key: Optional[CampaignKey]
    records: list[UsageRecord]
    job_truth: dict[int, Modality]
    identity_truth: dict[str, Modality]
    active_identities: frozenset[str]
    community_accounts: frozenset[str]
    total_nu: float
    transfers: tuple[TransferSummary, ...]
    #: deterministic registry snapshot (:meth:`MetricsRegistry.as_dict`) taken
    #: at extraction time; empty for hand-built results with no registry
    metric_snapshot: dict = field(default_factory=dict)

    @classmethod
    def from_result(
        cls, result: ScenarioResult, key: Optional[CampaignKey] = None
    ) -> "CampaignArtifact":
        registry = getattr(result, "metrics", None)
        return cls(
            key=key,
            records=result.records,
            job_truth=result.truth_by_job(),
            identity_truth=dict(result.truth_by_identity()),
            active_identities=frozenset(result.active_truth_by_identity()),
            community_accounts=frozenset(result.community_accounts),
            total_nu=result.central.total_nu(),
            transfers=tuple(
                TransferSummary(
                    src=t.src,
                    dst=t.dst,
                    size_bytes=t.size_bytes,
                    tag=t.tag,
                    duration=t.duration,
                )
                for t in result.network.completed_transfers
            ),
            metric_snapshot=registry.as_dict() if registry is not None else {},
        )

    # -- the ScenarioResult measurement surface ------------------------------
    @property
    def central(self) -> _CentralView:
        return _CentralView(self.records, self.total_nu)

    @property
    def network(self) -> _NetworkView:
        return _NetworkView(self.transfers)

    @property
    def config(self) -> Optional[ScenarioConfig]:
        return self.key.config() if self.key is not None else None

    def truth_by_job(self) -> dict[int, Modality]:
        return dict(self.job_truth)

    def truth_by_identity(self) -> dict[str, Modality]:
        return dict(self.identity_truth)

    def active_truth_by_identity(self) -> dict[str, Modality]:
        return {
            identity: modality
            for identity, modality in self.identity_truth.items()
            if identity in self.active_identities
        }
