"""Bench A4: regenerate the site-outage resilience ablation."""


def test_a4_resilience(regenerate):
    output = regenerate("A4")
    cells = output.data
    baseline = cells["no outages"]
    outage_cells = [c for label, c in cells.items() if label != "no outages"]
    # Outages actually happened and killed work in every non-baseline cell.
    for cell in outage_cells:
        assert cell["outages"] > 0
        assert cell["completed_ch"] < baseline["completed_ch"]
    # Within each MTBF, recovery policies trade throughput for goodput:
    # campaigns stop being abandoned (the user keeps resubmitting instead).
    by_mtbf = {}
    for cell in outage_cells:
        by_mtbf.setdefault(cell["mtbf_days"], {})[cell["recovery"]] = cell
    for arms in by_mtbf.values():
        if {"none", "retry"} <= set(arms):
            assert (
                arms["retry"]["abandonments"] < arms["none"]["abandonments"]
            )
            assert arms["retry"]["resubmissions"] > 0
    # Single-site batch falls off a cliff without resubmission, while the
    # gateway-mediated modality rides out outages on its request backlog.
    worst = min(by_mtbf)
    give_up = by_mtbf[worst]["none"]
    base_mod = baseline["by_modality"]
    retained = {
        m: give_up["by_modality"][m] / base_mod[m]
        for m in ("batch", "gateway")
        if base_mod.get(m)
    }
    assert retained["batch"] < retained["gateway"]
    # More reliable sites complete more science within a recovery discipline.
    for recovery in ("none", "retry"):
        ordered = sorted(
            (c for c in outage_cells if c["recovery"] == recovery),
            key=lambda c: c["mtbf_days"],
        )
        completed = [c["completed_ch"] for c in ordered]
        assert completed == sorted(completed)
