"""Unit tests for the central metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    CounterAttr,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments_and_rejects_decrements():
    counter = Counter("x")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert int(counter) == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        counter.set(3)
    counter.set(9)
    assert counter.value == 9


def test_gauge_tracks_high_water():
    gauge = Gauge("depth")
    gauge.set(3.0)
    gauge.set(1.0)
    assert gauge.value == 1.0
    assert gauge.high_water == 3.0


def test_histogram_summarises_stream():
    histogram = Histogram("load")
    for value in (2.0, 0.5, 1.5):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == 4.0
    assert histogram.min == 0.5
    assert histogram.max == 2.0
    assert histogram.mean == pytest.approx(4.0 / 3)
    assert Histogram("empty").mean == 0.0


def test_registry_get_or_create_returns_the_same_cell():
    registry = MetricsRegistry()
    first = registry.counter("a.b")
    second = registry.counter("a.b")
    assert first is second
    first.inc()
    assert registry.value("a.b") == 1


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("a")
    with pytest.raises(TypeError):
        registry.gauge("a")
    with pytest.raises(TypeError):
        registry.histogram("a")


def test_registry_rejects_bad_names():
    registry = MetricsRegistry()
    for bad in ("", ".x", "x."):
        with pytest.raises(ValueError):
            registry.counter(bad)


def test_scoped_registry_prefixes_and_nests():
    registry = MetricsRegistry()
    scope = registry.scoped("gateway").scoped("nanohub")
    cell = scope.counter("jobs")
    cell.inc(7)
    assert registry.value("gateway.nanohub.jobs") == 7
    assert "gateway.nanohub.jobs" in registry
    with pytest.raises(ValueError):
        registry.scoped("")


def test_family_iterates_prefix_matches_only():
    registry = MetricsRegistry()
    registry.counter("ingest.feed.SiteA.records")
    registry.counter("ingest.feed.SiteB.records")
    registry.counter("ingest.packets")
    registry.counter("ingestion.other")
    names = [name for name, _cell in registry.family("ingest.feed")]
    assert names == [
        "ingest.feed.SiteA.records",
        "ingest.feed.SiteB.records",
    ]


def test_value_reports_histogram_totals_and_raises_on_unknown():
    registry = MetricsRegistry()
    registry.histogram("h").observe(2.5)
    assert registry.value("h") == 2.5
    with pytest.raises(KeyError):
        registry.value("missing")


def test_as_dict_snapshot_is_sorted_and_plain():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.gauge("a").set(1.5)
    registry.histogram("c").observe(3.0)
    snapshot = registry.as_dict()
    assert list(snapshot) == ["a", "b", "c"]
    assert snapshot["a"] == {"value": 1.5, "high_water": 1.5}
    assert snapshot["b"] == 2
    assert snapshot["c"] == {"count": 1, "total": 3.0, "min": 3.0, "max": 3.0}


def test_counter_attr_descriptor_keeps_attribute_api():
    class Component:
        sent = CounterAttr("_sent")

        def __init__(self, registry):
            self._sent = registry.counter("component.sent")

    registry = MetricsRegistry()
    component = Component(registry)
    component.sent += 3
    assert component.sent == 3
    assert registry.value("component.sent") == 3
    with pytest.raises(ValueError):
        component.sent -= 1
    assert type(Component.sent) is CounterAttr
