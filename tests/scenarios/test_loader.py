"""YAML/dict scenario documents compile to the same programs as the DSL."""

import io
import textwrap

import pytest

from repro.core.modalities import Modality
from repro.infra.metascheduler import SelectionStrategy
from repro.scenarios import (
    FederationDef,
    GatewayFleet,
    IngestFaults,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
    load_program,
    program_from_dict,
    program_from_yaml,
)
from repro.users.behavior import RecoveryPolicy

DOC = textwrap.dedent(
    """
    name: doc-federation
    description: loader round-trip fixture
    days: 9
    seed: 13
    federation:
      sites:
        - {name: alpha, nodes: 16, cores_per_node: 8,
           nu_per_core_hour: 1.0, wan_bandwidth: 1.0e9}
        - {name: beta, nodes: 8, cores_per_node: 4,
           nu_per_core_hour: 1.5, wan_bandwidth: 5.0e8}
    mix:
      total_users: 24
      weights: {batch: 2, exploratory: 1, gateway: 1}
    gateways: {n_gateways: 2, tagging_coverage: 0.8, backlog: 8}
    outages: {site_mtbf_days: 10, repair_median_hours: 4}
    recovery:
      batch: {max_attempts: 5, backoff_base: 600}
    load: {intensity: 1.5}
    scheduler: fcfs
    metascheduler: least_loaded
    """
)


def equivalent_dsl_program():
    from repro.workloads import SiteSpec

    return ScenarioProgram(
        name="doc-federation",
        description="loader round-trip fixture",
        days=9.0,
        seed=13,
        federation=FederationDef(
            preset=None,
            sites=(
                SiteSpec("alpha", 16, 8, 1.0, 1.0e9),
                SiteSpec("beta", 8, 4, 1.5, 5.0e8),
            ),
        ),
        mix=ModalityMix(
            total_users=24,
            weights={Modality.BATCH: 2.0, Modality.EXPLORATORY: 1.0,
                     Modality.GATEWAY: 1.0},
        ),
        gateways=GatewayFleet(n_gateways=2, tagging_coverage=0.8, backlog=8),
        outages=OutageRegime(site_mtbf_days=10.0, repair_median_hours=4.0),
        recovery=RecoverySuite(
            overrides={
                Modality.BATCH: RecoveryPolicy(max_attempts=5,
                                               backoff_base=600),
            }
        ),
        load=LoadShape(intensity=1.5),
        scheduler="fcfs",
        metascheduler=SelectionStrategy.LEAST_LOADED,
    )


def test_yaml_round_trips_to_the_python_dsl():
    loaded = program_from_yaml(DOC)
    assert loaded == equivalent_dsl_program()
    assert loaded.compile() == equivalent_dsl_program().compile()


def test_load_program_accepts_path_and_stream(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text(DOC)
    assert load_program(str(path)) == program_from_yaml(DOC)
    assert load_program(io.StringIO(DOC)) == program_from_yaml(DOC)


def test_preset_shorthand():
    program = program_from_dict({"name": "x", "federation": "small"})
    assert program.federation == FederationDef(preset="small")
    program = program_from_dict(
        {"name": "x", "federation": {"preset": "full"}}
    )
    assert program.federation == FederationDef(preset="full")


def test_defaults_fill_in_for_missing_sections():
    program = program_from_dict({"name": "bare"})
    assert program == ScenarioProgram(name="bare")


def test_unknown_top_level_key_rejected():
    with pytest.raises(ValueError, match="unknown scenario key"):
        program_from_dict({"name": "x", "schedular": "fcfs"})


def test_unknown_section_key_rejected():
    with pytest.raises(ValueError, match="unknown federation key"):
        program_from_dict(
            {"name": "x", "federation": {"preset": "small", "size": 3}}
        )
    with pytest.raises(ValueError, match="unknown mix key"):
        program_from_dict(
            {"name": "x", "mix": {"total_users": 4, "weight": {}}}
        )


def test_unknown_modality_and_metascheduler_name_errors():
    with pytest.raises(ValueError, match="unknown modality 'steering'"):
        program_from_dict(
            {"name": "x",
             "mix": {"total_users": 4, "weights": {"steering": 1}}}
        )
    with pytest.raises(ValueError, match="unknown metascheduler 'psychic'"):
        program_from_dict({"name": "x", "metascheduler": "psychic"})


def test_missing_name_and_non_mapping_rejected():
    with pytest.raises(ValueError, match="needs a name"):
        program_from_dict({"days": 3})
    with pytest.raises(ValueError, match="must be a mapping"):
        program_from_dict(["not", "a", "mapping"])


def test_section_validation_still_applies():
    # The loader only translates shapes; dataclass validation still fires.
    with pytest.raises(ValueError, match="tagging_coverage"):
        program_from_dict(
            {"name": "x", "gateways": {"tagging_coverage": 2.0}}
        )
    with pytest.raises(ValueError, match="unknown scheduler"):
        program_from_dict({"name": "x", "scheduler": "lottery"})


def test_ingest_section_round_trips():
    program = program_from_dict(
        {
            "name": "x",
            "ingest": {
                "drop_rate": 0.25,
                "duplicate_rate": 0.1,
                "delay_mean_minutes": 30,
                "recovery": "retry",
                "max_attempts": 3,
            },
        }
    )
    assert program.ingest == IngestFaults(
        drop_rate=0.25,
        duplicate_rate=0.1,
        delay_mean_minutes=30,
        recovery="retry",
        max_attempts=3,
    )
    config = program.compile()
    assert config.faulty_ingest
    assert config.ingest_recovery.retransmit
    assert not config.ingest_recovery.reconcile


def test_ingest_section_validation_applies_through_loader():
    with pytest.raises(ValueError, match="unknown recovery level"):
        program_from_dict(
            {"name": "x", "ingest": {"recovery": "wishful-thinking"}}
        )
    with pytest.raises(TypeError):
        program_from_dict({"name": "x", "ingest": {"packet_size": 9}})
