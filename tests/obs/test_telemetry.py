"""Telemetry sidecar: round-trip, schema validation, timings view."""

import pytest

from repro.obs.telemetry import (
    SCHEMA,
    Telemetry,
    read_sidecar,
    sidecar_summary,
    timings_lines,
    validate_sidecar,
)
from repro.obs.trace import SimTracer


def _populated_telemetry():
    telemetry = Telemetry(run_id="run-1")
    telemetry.event("cache-hit", key="abc", experiment="T1")
    telemetry.add_span("task", 100.0, 2.5, experiment="T1", status="ok")
    telemetry.metrics.counter("runner.retries").inc(3)
    return telemetry


def test_sidecar_roundtrip(tmp_path):
    telemetry = _populated_telemetry()
    path = telemetry.write_jsonl(tmp_path / "sub" / "telemetry.jsonl")
    records = read_sidecar(path)
    assert records[0]["type"] == "header"
    assert records[0]["schema"] == SCHEMA
    assert records[0]["run_id"] == "run-1"
    kinds = [record["type"] for record in records[1:]]
    assert kinds == ["event", "span", "summary"]
    summary = sidecar_summary(records)
    assert summary["metrics"]["runner.retries"] == 3


def test_span_context_manager_measures(tmp_path):
    telemetry = Telemetry()
    with telemetry.span("stage:test", tag="x"):
        pass
    (record,) = telemetry.records
    assert record["type"] == "span"
    assert record["duration"] >= 0
    assert record["tag"] == "x"


def test_sim_summaries_embed_both_domains():
    telemetry = Telemetry()
    telemetry.add_sim_summary(SimTracer())
    domains = [record["domain"] for record in telemetry.records]
    assert domains == ["sim", "wall"]
    validate_sidecar(telemetry.all_records())


def test_validate_rejects_missing_header():
    with pytest.raises(ValueError):
        validate_sidecar([])
    with pytest.raises(ValueError):
        validate_sidecar([{"type": "event", "name": "x", "at": 1.0}])


def test_validate_rejects_duplicate_header():
    telemetry = Telemetry()
    records = telemetry.all_records()
    with pytest.raises(ValueError, match="duplicate header"):
        validate_sidecar([records[0], records[0], records[-1]])


def test_validate_rejects_span_defects():
    header = Telemetry().header()
    summary = Telemetry().finish()
    bad_duration = {"type": "span", "name": "x", "start": 1.0, "duration": -1}
    with pytest.raises(ValueError, match="negative"):
        validate_sidecar([header, bad_duration, summary])
    no_name = {"type": "span", "start": 1.0, "duration": 1.0}
    with pytest.raises(ValueError, match="without a name"):
        validate_sidecar([header, no_name, summary])


def test_validate_requires_exactly_one_terminal_summary():
    telemetry = Telemetry()
    records = telemetry.all_records()
    with pytest.raises(ValueError, match="exactly one terminal wall summary"):
        validate_sidecar(records[:-1])
    with pytest.raises(ValueError, match="exactly one terminal wall summary"):
        validate_sidecar(records + [records[-1]])


def test_validate_rejects_unknown_types_and_domains():
    header = Telemetry().header()
    summary = Telemetry().finish()
    with pytest.raises(ValueError, match="unknown record type"):
        validate_sidecar([header, {"type": "mystery"}, summary])
    with pytest.raises(ValueError, match="unknown domain"):
        validate_sidecar(
            [header, {"type": "summary", "domain": "dream"}, summary]
        )


def test_timings_lines_match_the_legacy_stderr_shape():
    summary = {
        "stage_seconds": {"plan": 0.004, "campaign": 5.037, "measure": 0.131},
        "campaign_stats": {
            "distinct": 3, "simulated": 3, "reused": 0,
            "fallbacks": 0, "loads": 2, "load_seconds": 0.25,
        },
    }
    lines = timings_lines(summary)
    assert lines == [
        "[timings: plan: 0.00s, campaign: 5.04s, measure: 0.13s]",
        "[campaigns: 3 distinct, 3 simulated, 0 reused, "
        "0 fallback simulations, 2 artifact loads (0.25s)]",
    ]


def test_timings_lines_handle_empty_summary():
    lines = timings_lines({})
    assert lines[0] == "[timings: none]"
    assert "0 distinct" in lines[1]
