"""Bench F1: regenerate the modality-growth-by-quarter figure."""

from repro.core.modalities import Modality


def test_f1_growth(regenerate):
    output = regenerate("F1", days=182.0, ramp_days=120.0)
    gateway = output.data[Modality.GATEWAY.value]
    batch = output.data[Modality.BATCH.value]
    assert len(gateway) >= 2
    # Gateway adoption grows quarter over quarter; batch stays flat.
    assert gateway[-1] > gateway[0]
    assert abs(batch[-1] - batch[0]) <= max(2, 0.2 * batch[0])
