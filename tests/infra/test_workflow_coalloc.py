"""Tests for the workflow engine and co-allocator."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.infra as I
from repro.infra.job import AttributeKeys, JobState
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.units import HOUR
from repro.infra.workflow import TaskGraph, TaskSpec
from repro.sim import Simulator


def make_federation(n_sites=2, nodes=8, with_network=True):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, 1e12, users={"alice"})
    central = I.CentralAccountingDB()
    providers = [
        I.ResourceProvider(
            sim,
            I.Cluster(f"site{i}", nodes=nodes, cores_per_node=1),
            ledger,
            central,
        )
        for i in range(n_sites)
    ]
    network = None
    if with_network:
        network = I.Network(sim)
        for p in providers:
            network.add_site(p.name, 1e9)
    meta = I.Metascheduler(providers, SelectionStrategy.PREDICTED_START)
    return sim, providers, meta, network, central


# ------------------------------------------------------------------ TaskGraph


def test_task_graph_construction_and_topo_order():
    graph = TaskGraph("g")
    for name in "abc":
        graph.add_task(TaskSpec(name=name, cores=1, walltime=10.0, true_runtime=5.0))
    graph.add_dependency("a", "b")
    graph.add_dependency("b", "c")
    assert graph.topological_order() == ["a", "b", "c"]
    assert graph.predecessors("c") == ["b"]
    assert graph.successors("a") == ["b"]
    assert len(graph) == 3


def test_task_graph_rejects_cycles_and_duplicates():
    graph = TaskGraph("g")
    graph.add_task(TaskSpec(name="a", cores=1, walltime=10.0, true_runtime=5.0))
    graph.add_task(TaskSpec(name="b", cores=1, walltime=10.0, true_runtime=5.0))
    graph.add_dependency("a", "b")
    with pytest.raises(ValueError):
        graph.add_dependency("b", "a")
    with pytest.raises(ValueError):
        graph.add_task(TaskSpec(name="a", cores=1, walltime=10.0, true_runtime=5.0))
    with pytest.raises(KeyError):
        graph.add_dependency("a", "zz")


def test_critical_path_runtime():
    graph = TaskGraph("g")
    for name, runtime in [("a", 10.0), ("b", 20.0), ("c", 5.0)]:
        graph.add_task(
            TaskSpec(name=name, cores=1, walltime=100.0, true_runtime=runtime)
        )
    graph.add_dependency("a", "c")
    graph.add_dependency("b", "c")
    assert graph.critical_path_runtime() == 25.0


def test_parameter_sweep_factory():
    graph = TaskGraph.parameter_sweep(
        "sweep", width=5, cores=2, walltime=HOUR, true_runtime=HOUR / 2
    )
    assert len(graph) == 6  # 5 sweeps + merge
    merge = "sweep-merge"
    assert set(graph.predecessors(merge)) == {f"sweep-sweep-{i}" for i in range(5)}
    flat = TaskGraph.parameter_sweep(
        "flat", width=3, cores=1, walltime=HOUR, true_runtime=HOUR, with_merge=False
    )
    assert len(flat) == 3


# ------------------------------------------------------------------- engine


def test_workflow_executes_in_dependency_order():
    sim, providers, meta, network, central = make_federation()
    engine = I.WorkflowEngine(sim, meta, network=network)
    graph = TaskGraph("g")
    graph.add_task(TaskSpec(name="pre", cores=1, walltime=HOUR,
                            true_runtime=HOUR / 2, output_bytes=1e9))
    graph.add_task(TaskSpec(name="main", cores=4, walltime=HOUR,
                            true_runtime=HOUR / 2))
    graph.add_dependency("pre", "main")
    proc = engine.run(graph, user="alice", account="acct",
                      true_modality="ensemble")
    result = sim.run(until=proc)
    assert result.succeeded
    jobs = {j.attributes[AttributeKeys.WORKFLOW_ID]: j for j in result.jobs}
    assert len(result.jobs) == 2
    pre, main = result.jobs
    assert main.start_time >= pre.end_time
    wf_ids = {j.attributes[AttributeKeys.WORKFLOW_ID] for j in result.jobs}
    assert len(wf_ids) == 1


def test_workflow_sweep_runs_wide_then_merges():
    sim, providers, meta, network, central = make_federation(nodes=16)
    engine = I.WorkflowEngine(sim, meta, network=network)
    graph = TaskGraph.parameter_sweep(
        "s", width=8, cores=1, walltime=HOUR, true_runtime=HOUR / 2
    )
    proc = engine.run(graph, user="alice", account="acct")
    result = sim.run(until=proc)
    assert result.succeeded
    assert len(result.jobs) == 9
    merge_job = result.jobs[-1]
    sweep_ends = [j.end_time for j in result.jobs[:-1]]
    assert merge_job.start_time >= max(sweep_ends)
    assert result.makespan > 0


def test_workflow_result_records_makespan():
    sim, providers, meta, network, central = make_federation()
    engine = I.WorkflowEngine(sim, meta, network=network)
    graph = TaskGraph.parameter_sweep(
        "s", width=2, cores=1, walltime=HOUR, true_runtime=HOUR / 4,
        with_merge=False,
    )
    proc = engine.run(graph, user="alice", account="acct")
    result = sim.run(until=proc)
    assert result.makespan >= HOUR / 4
    assert engine.results == [result]


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=3))
def test_workflow_respects_topological_order_property(width, depth):
    """Property: every job starts only after all its predecessors ended."""
    sim, providers, meta, network, central = make_federation(nodes=16)
    engine = I.WorkflowEngine(sim, meta, network=network)
    graph = TaskGraph("g")
    # Layered DAG: `depth` chained layers of `width` tasks.
    names = []
    for layer in range(depth + 1):
        layer_names = []
        for i in range(width):
            name = f"t{layer}-{i}"
            graph.add_task(TaskSpec(name=name, cores=1, walltime=HOUR,
                                    true_runtime=600.0, output_bytes=1e6))
            layer_names.append(name)
        if layer > 0:
            for prev in names[-1]:
                for cur in layer_names:
                    graph.add_dependency(prev, cur)
        names.append(layer_names)
    proc = engine.run(graph, user="alice", account="acct")
    result = sim.run(until=proc)
    # Jobs are launched layer by layer (the engine waits for each level), so
    # result.jobs partitions into consecutive layers of `width`.
    jobs = result.jobs
    for layer in range(1, depth + 1):
        earlier = jobs[: layer * width]
        current = jobs[layer * width : (layer + 1) * width]
        latest_end = max(j.end_time for j in earlier[-width:])
        for job in current:
            assert job.start_time >= latest_end - 1e-6


def test_coalloc_synchronized_start_and_attributes():
    sim, providers, meta, network, central = make_federation(n_sites=3)
    coalloc = I.CoAllocator(sim, slack=60.0, wan_overhead_factor=1.5)
    proc = coalloc.launch(
        user="alice",
        account="acct",
        parts=[(providers[0], 4), (providers[1], 4)],
        walltime=2 * HOUR,
        single_site_runtime=HOUR,
        true_modality="coupled",
    )
    record = sim.run(until=proc)
    assert record.succeeded
    assert record.synchronized
    starts = {j.start_time for j in record.jobs}
    assert len(starts) == 1  # exact common start
    ids = {j.attributes[AttributeKeys.COALLOCATION_ID] for j in record.jobs}
    assert len(ids) == 1
    # WAN overhead inflates runtime 1.5x.
    for j in record.jobs:
        assert j.elapsed == pytest.approx(1.5 * HOUR)


def test_coalloc_waits_for_busy_site():
    sim, providers, meta, network, central = make_federation(n_sites=2, nodes=4)
    from repro.infra.job import Job

    blocker = Job(user="alice", account="acct", cores=4,
                  walltime=3 * HOUR, true_runtime=3 * HOUR)
    providers[0].submit(blocker)
    coalloc = I.CoAllocator(sim, slack=60.0)
    proc = coalloc.launch(
        user="alice",
        account="acct",
        parts=[(providers[0], 4), (providers[1], 4)],
        walltime=HOUR,
        single_site_runtime=HOUR / 2,
    )
    record = sim.run(until=proc)
    assert record.planned_start == pytest.approx(3 * HOUR + 60.0)
    assert record.synchronized


def test_coalloc_validation():
    sim, providers, *_ = make_federation()
    with pytest.raises(ValueError):
        I.CoAllocator(sim, slack=-1.0)
    with pytest.raises(ValueError):
        I.CoAllocator(sim, wan_overhead_factor=0.5)
    coalloc = I.CoAllocator(sim)
    with pytest.raises(ValueError):
        coalloc.launch("alice", "acct", [(providers[0], 4)], HOUR, HOUR)
