"""Tests for the WAN model and site storage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.infra.network import Network
from repro.infra.storage import DataCollection, GB, StorageSystem, TB
from repro.sim import Simulator


def make_net(bandwidths):
    sim = Simulator()
    net = Network(sim)
    for site, bw in bandwidths.items():
        net.add_site(site, bw)
    return sim, net


def run_transfer(sim, net, src, dst, size):
    result = {}

    def mover(sim):
        transfer = yield net.transfer(src, dst, size)
        result["duration"] = transfer.duration
        result["transfer"] = transfer

    sim.process(mover(sim))
    sim.run()
    return result


def test_single_transfer_at_bottleneck_rate():
    sim, net = make_net({"a": 100.0, "b": 50.0})
    result = run_transfer(sim, net, "a", "b", 5000.0)
    assert result["duration"] == pytest.approx(100.0)  # 5000 B / 50 B/s


def test_two_transfers_share_a_link():
    sim, net = make_net({"a": 100.0, "b": 100.0, "c": 100.0})
    durations = {}

    def mover(sim, tag, dst):
        transfer = yield net.transfer("a", dst, 1000.0)
        durations[tag] = transfer.duration

    sim.process(mover(sim, "t1", "b"))
    sim.process(mover(sim, "t2", "c"))
    sim.run()
    # Both share a's 100 B/s uplink: 50 B/s each -> 20 s.
    assert durations["t1"] == pytest.approx(20.0)
    assert durations["t2"] == pytest.approx(20.0)


def test_rate_increases_when_contender_finishes():
    sim, net = make_net({"a": 100.0, "b": 100.0, "c": 100.0})
    durations = {}

    def mover(sim, tag, dst, size):
        transfer = yield net.transfer("a", dst, size)
        durations[tag] = transfer.duration

    sim.process(mover(sim, "small", "b", 500.0))
    sim.process(mover(sim, "large", "c", 2000.0))
    sim.run()
    # Shared at 50 B/s until the small one finishes at t=10 (500 B);
    # the large one then has 2000-500=1500 B left at 100 B/s -> 15 s more.
    assert durations["small"] == pytest.approx(10.0)
    assert durations["large"] == pytest.approx(25.0)


def test_disjoint_transfers_do_not_interact():
    sim, net = make_net({"a": 100.0, "b": 100.0, "c": 100.0, "d": 100.0})
    durations = {}

    def mover(sim, tag, src, dst):
        transfer = yield net.transfer(src, dst, 1000.0)
        durations[tag] = transfer.duration

    sim.process(mover(sim, "t1", "a", "b"))
    sim.process(mover(sim, "t2", "c", "d"))
    sim.run()
    assert durations["t1"] == pytest.approx(10.0)
    assert durations["t2"] == pytest.approx(10.0)


def test_same_site_transfer_is_local_copy():
    sim, net = make_net({"a": 100.0})
    result = run_transfer(sim, net, "a", "a", 1e12)
    assert result["duration"] == pytest.approx(net.local_copy_time)


def test_unknown_site_rejected():
    sim, net = make_net({"a": 100.0})
    with pytest.raises(KeyError):
        net.transfer("a", "zz", 10.0)


def test_duplicate_site_rejected():
    sim, net = make_net({"a": 100.0})
    with pytest.raises(ValueError):
        net.add_site("a", 50.0)


def test_estimate_duration_is_uncontended_bound():
    sim, net = make_net({"a": 100.0, "b": 25.0})
    assert net.estimate_duration("a", "b", 1000.0) == pytest.approx(40.0)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=10.0, max_value=1e5),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_all_transfers_complete_and_respect_capacity_bound(specs):
    """Property: every transfer finishes, and none finishes faster than its
    uncontended bottleneck bound."""
    sim, net = make_net({"a": 100.0, "b": 80.0, "c": 50.0})
    outcomes = []

    def mover(sim, delay, src, dst, size):
        yield sim.timeout(delay)
        transfer = yield net.transfer(src, dst, size)
        outcomes.append((transfer, net.estimate_duration(src, dst, size)))

    for src, dst, size, delay in specs:
        sim.process(mover(sim, delay, src, dst, size))
    sim.run()
    assert len(outcomes) == len(specs)
    for transfer, bound in outcomes:
        assert transfer.duration is not None
        assert transfer.duration >= bound - 1e-6
        assert transfer.remaining == 0.0


# ------------------------------------------------------------------- storage


def make_storage(capacity=10 * TB):
    sim = Simulator()
    net = Network(sim)
    net.add_site("here", 1e9)
    net.add_site("there", 1e9)
    storage = StorageSystem(sim, "here", capacity, net)
    return sim, storage


def test_collection_hosting_uses_capacity():
    sim, storage = make_storage(capacity=2 * TB)
    storage.host_collection(DataCollection("genomes", 1.5 * TB, "here"))
    assert storage.free_bytes == pytest.approx(0.5 * TB)
    with pytest.raises(RuntimeError):
        storage.host_collection(DataCollection("more", 1 * TB, "here"))


def test_collection_home_site_enforced():
    sim, storage = make_storage()
    with pytest.raises(ValueError):
        storage.host_collection(DataCollection("x", GB, "elsewhere"))


def test_duplicate_collection_rejected():
    sim, storage = make_storage()
    storage.host_collection(DataCollection("x", GB, "here"))
    with pytest.raises(ValueError):
        storage.host_collection(DataCollection("x", GB, "here"))


def test_access_collection_counts():
    sim, storage = make_storage()
    storage.host_collection(DataCollection("x", GB, "here"))
    storage.access_collection("x")
    storage.access_collection("x")
    assert storage.collections["x"].accesses == 2
    with pytest.raises(KeyError):
        storage.access_collection("missing")


def test_stage_in_moves_data_and_logs():
    sim, storage = make_storage()
    done = []

    def stager(sim):
        yield storage.stage_in("inputs", "there", 5 * GB)
        done.append(sim.now)

    sim.process(stager(sim))
    sim.run()
    assert done and done[0] == pytest.approx(5 * GB / 1e9)
    assert storage.used_bytes == pytest.approx(5 * GB)
    op = storage.stage_log[0]
    assert (op.src, op.dst, op.what) == ("there", "here", "inputs")
    assert op.finished_at == done[0]


def test_release_floors_at_zero():
    sim, storage = make_storage()
    storage.allocate(GB)
    storage.release(5 * GB)
    assert storage.used_bytes == 0.0
