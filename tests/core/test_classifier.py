"""Tests for the attribute and heuristic modality classifiers."""

import pytest

from repro.core.classifier import (
    AttributeClassifier,
    ClassifierConfig,
    HeuristicClassifier,
)
from repro.core.modalities import Modality
from repro.infra.job import AttributeKeys, JobState
from repro.infra.units import HOUR, MINUTE


def test_attribute_labels_take_precedence(make_record):
    classifier = AttributeClassifier()
    assert classifier.label_job(
        make_record(attributes={AttributeKeys.COALLOCATION_ID: "c1"})
    ) is Modality.COUPLED
    assert classifier.label_job(
        make_record(attributes={AttributeKeys.INTERACTIVE: True})
    ) is Modality.VIZ
    assert classifier.label_job(
        make_record(queue_name="interactive")
    ) is Modality.VIZ
    assert classifier.label_job(
        make_record(attributes={AttributeKeys.SUBMIT_INTERFACE: "gateway"})
    ) is Modality.GATEWAY
    assert classifier.label_job(
        make_record(attributes={AttributeKeys.ENSEMBLE_ID: "e1"})
    ) is Modality.ENSEMBLE
    assert classifier.label_job(
        make_record(attributes={AttributeKeys.WORKFLOW_ID: "w1"})
    ) is Modality.ENSEMBLE
    assert classifier.label_job(make_record()) is None


def test_coupled_beats_other_attributes(make_record):
    record = make_record(
        attributes={
            AttributeKeys.COALLOCATION_ID: "c1",
            AttributeKeys.WORKFLOW_ID: "w1",
        }
    )
    assert AttributeClassifier().label_job(record) is Modality.COUPLED


def batch_like(make_record, n=6, user="prod", start_id=1000):
    """Long, reliable, mid-size jobs."""
    return [
        make_record(
            user=user,
            cores=64,
            elapsed=4 * HOUR,
            submit=i * 12 * HOUR,
            job_id=start_id + i,
        )
        for i in range(n)
    ]


def exploratory_like(make_record, n=8, user="porter", start_id=2000):
    """Short, tiny, failure-prone jobs."""
    return [
        make_record(
            user=user,
            cores=2,
            elapsed=5 * MINUTE,
            submit=i * 2 * HOUR,
            state=JobState.FAILED if i % 3 == 0 else JobState.COMPLETED,
            job_id=start_id + i,
        )
        for i in range(n)
    ]


def test_residual_split_batch_vs_exploratory(make_record):
    records = batch_like(make_record) + exploratory_like(make_record)
    classification = AttributeClassifier().classify(records)
    assert classification.identity_primary["prod"] is Modality.BATCH
    assert classification.identity_primary["porter"] is Modality.EXPLORATORY


def test_users_by_modality_counts_primaries(make_record):
    records = batch_like(make_record) + exploratory_like(make_record)
    classification = AttributeClassifier().classify(records)
    counts = classification.users_by_modality()
    assert counts[Modality.BATCH] == 1
    assert counts[Modality.EXPLORATORY] == 1
    assert classification.n_identities == 2


def test_multi_modality_user_primary_by_job_count(make_record):
    records = batch_like(make_record, n=2, user="mixed", start_id=3000)
    records += [
        make_record(
            user="mixed",
            attributes={AttributeKeys.ENSEMBLE_ID: "e"},
            submit=1e6 + i * 60,
            cores=8,
            job_id=3100 + i,
        )
        for i in range(10)
    ]
    classification = AttributeClassifier().classify(records)
    assert classification.identity_primary["mixed"] is Modality.ENSEMBLE
    assert classification.identity_modalities["mixed"] == {
        Modality.BATCH,
        Modality.ENSEMBLE,
    }
    exhibiting = classification.users_exhibiting()
    assert exhibiting[Modality.BATCH] == 1
    assert exhibiting[Modality.ENSEMBLE] == 1


def test_instrumented_gateway_users_resolved(make_record):
    records = [
        make_record(
            user="gw_portal",
            account="TG-COMM",
            attributes={
                AttributeKeys.SUBMIT_INTERFACE: "gateway",
                AttributeKeys.GATEWAY_NAME: "portal",
                AttributeKeys.GATEWAY_USER: f"end{i}",
            },
            submit=i * HOUR,
            cores=1,
            elapsed=10 * MINUTE,
            job_id=4000 + i,
        )
        for i in range(12)
    ]
    classification = AttributeClassifier().classify(records)
    counts = classification.users_by_modality()
    assert counts[Modality.GATEWAY] == 12


def test_heuristic_gateway_collapse(make_record):
    records = [
        make_record(
            user="gw_portal",
            account="TG-COMM",
            attributes={
                AttributeKeys.SUBMIT_INTERFACE: "gateway",
                AttributeKeys.GATEWAY_NAME: "portal",
                AttributeKeys.GATEWAY_USER: f"end{i}",
            },
            submit=i * HOUR,
            cores=1,
            elapsed=10 * MINUTE,
            job_id=5000 + i,
        )
        for i in range(12)
    ]
    heuristic = HeuristicClassifier(known_community_accounts={"TG-COMM"})
    classification = heuristic.classify(records)
    counts = classification.users_by_modality()
    assert counts[Modality.GATEWAY] == 1  # 12 users invisible behind 1 account
    assert classification.identity_primary["gw_portal"] is Modality.GATEWAY


def test_heuristic_without_community_knowledge_misreads_gateway(make_record):
    records = [
        make_record(
            user="gw_portal",
            account="TG-COMM",
            submit=i * HOUR,
            cores=1,
            elapsed=10 * MINUTE,
            job_id=5200 + i,
        )
        for i in range(12)
    ]
    classification = HeuristicClassifier().classify(records)
    assert classification.identity_primary["gw_portal"] in (
        Modality.EXPLORATORY,
        Modality.BATCH,
    )


def test_heuristic_detects_ensemble_bursts(make_record):
    records = [
        make_record(
            user="sweeper",
            cores=16,
            submit=i * 30.0,
            elapsed=HOUR,
            attributes={AttributeKeys.ENSEMBLE_ID: "hidden"},
            job_id=5300 + i,
        )
        for i in range(20)
    ]
    classification = HeuristicClassifier().classify(records)
    assert classification.identity_primary["sweeper"] is Modality.ENSEMBLE
    # attributes were ignored, not used:
    for label in classification.job_labels.values():
        assert label is Modality.ENSEMBLE


def test_heuristic_detects_coupled_coincident_starts(make_record):
    records = [
        make_record(
            user="coupler",
            resource=site,
            cores=128,
            walltime=4 * HOUR,
            submit=0.0,
            wait=100.0,
            elapsed=2 * HOUR,
            job_id=5400 + i,
        )
        for i, site in enumerate(["ranger", "kraken"])
    ]
    classification = HeuristicClassifier().classify(records)
    for record_id in (5400, 5401):
        assert classification.job_labels[record_id] is Modality.COUPLED


def test_heuristic_same_site_coincidence_not_coupled(make_record):
    records = [
        make_record(
            user="just-lucky",
            resource="ranger",
            cores=4,
            walltime=HOUR,
            submit=0.0,
            wait=100.0,
            elapsed=HOUR / 2,
            job_id=5500 + i,
        )
        for i in range(2)
    ]
    classification = HeuristicClassifier().classify(records)
    for record_id in (5500, 5501):
        assert classification.job_labels[record_id] is not Modality.COUPLED


def test_heuristic_viz_via_interactive_queue(make_record):
    records = [
        make_record(
            user="vizzer",
            queue_name="interactive",
            cores=1,
            elapsed=2 * HOUR,
            submit=i * 10 * HOUR,
            job_id=5600 + i,
        )
        for i in range(3)
    ]
    classification = HeuristicClassifier().classify(records)
    assert classification.identity_primary["vizzer"] is Modality.VIZ


def test_classifiers_are_deterministic(make_record):
    records = (
        batch_like(make_record)
        + exploratory_like(make_record)
        + [
            make_record(
                user="gw",
                attributes={AttributeKeys.SUBMIT_INTERFACE: "gateway"},
                job_id=6000,
            )
        ]
    )
    a = AttributeClassifier().classify(records)
    b = AttributeClassifier().classify(list(reversed(records)))
    assert a.job_labels == b.job_labels
    assert a.identity_primary == b.identity_primary


def test_every_job_gets_a_label(make_record):
    records = batch_like(make_record) + exploratory_like(make_record)
    for classifier in (AttributeClassifier(), HeuristicClassifier()):
        classification = classifier.classify(records)
        assert set(classification.job_labels) == {r.job_id for r in records}
        for label in classification.job_labels.values():
            assert isinstance(label, Modality)


def test_config_thresholds_are_respected(make_record):
    # With an absurdly high runtime threshold everything looks exploratory.
    config = ClassifierConfig(
        exploratory_max_median_elapsed=100 * HOUR,
        exploratory_max_median_cores=1e9,
    )
    records = batch_like(make_record, user="prod2", start_id=7000)
    classification = AttributeClassifier(config).classify(records)
    assert classification.identity_primary["prod2"] is Modality.EXPLORATORY
