"""Tests for table/figure rendering."""

import pytest

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.core.report import ascii_table, modality_table, series_block, taxonomy_table


def test_ascii_table_alignment_and_rule():
    table = ascii_table(["name", "value"], [["a", 1], ["longer", 22]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    assert len({len(line) for line in lines[1:]}) <= 2  # consistent width


def test_ascii_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        ascii_table(["a", "b"], [["only-one"]])


def test_series_block_format():
    block = series_block("F1", {"gateway": [(0, 1.0), (1, 5.0)]})
    lines = block.splitlines()
    assert lines[0] == "F1"
    assert lines[1] == "# series: gateway"
    assert lines[2].split("\t") == ["0", "1"]


def test_modality_table_has_row_per_modality():
    counts = {m: i for i, m in enumerate(MODALITY_ORDER)}
    table = modality_table({"users": counts}, title="T1")
    lines = table.splitlines()
    assert len(lines) == 3 + len(MODALITY_ORDER)  # title, header, rule, rows
    assert "Science-gateway access" in table


def test_modality_table_blank_for_missing():
    table = modality_table({"users": {Modality.BATCH: 5}})
    assert "5" in table


def test_taxonomy_table_mentions_all_modalities():
    table = taxonomy_table()
    for modality in MODALITY_ORDER:
        assert modality.label in table
