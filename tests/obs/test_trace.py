"""Two-domain tracer: determinism of the sim slice, kernel neutrality."""

from repro.obs.trace import SimTracer, process_type, traced_simulation
from repro.sim import Simulator, engine


def _toy_workload(sim, log):
    """A small multi-process workload exercising timeouts and events."""

    gate = sim.event()

    def worker(worker_id):
        for step in range(3):
            yield sim.timeout(1.0 + worker_id)
            log.append((sim.now, f"worker-{worker_id}", step))
        if worker_id == 0:
            gate.succeed()

    def watcher():
        yield gate
        log.append((sim.now, "watcher", "woke"))

    for worker_id in range(3):
        sim.process(worker(worker_id), name=f"worker:{worker_id}")
    sim.process(watcher(), name="watcher:main")


def _run(tracer=None):
    log = []
    sim = Simulator(tracer=tracer)
    _toy_workload(sim, log)
    sim.run(until=20.0)
    return log


def test_process_type_collapses_instance_names():
    assert process_type("outage:SiteA") == "outage"
    assert process_type("plain") == "plain"
    assert process_type("job-523") == "job"  # global serials are not types
    assert process_type("sched-wake") == "sched-wake"


def test_tracing_does_not_change_simulation_outcomes():
    untraced = _run()
    traced = _run(SimTracer())
    assert traced == untraced


def test_sim_summary_is_identical_across_runs():
    first = SimTracer()
    second = SimTracer()
    _run(first)
    _run(second)
    assert first.sim_summary() == second.sim_summary()
    assert first.events_total > 0
    assert first.heap_high_water > 0
    assert first.resumes_by_process["worker"] >= 9


def test_process_spans_record_sim_lifetimes():
    tracer = SimTracer()
    _run(tracer)
    spans = {name: (start, end) for _k, name, start, end in tracer.process_spans}
    start, end = spans["worker:0"]
    assert start == 0.0
    assert end == 3.0  # three 1-second timeouts
    assert spans["watcher:main"][1] == 3.0  # woke by worker:0's gate


def test_span_cap_bounds_retention_but_not_aggregates():
    tracer = SimTracer(span_cap=2)
    _run(tracer)
    assert len(tracer.process_spans) == 2
    assert tracer.spans_dropped == 2  # 4 processes, 2 retained
    summary = tracer.sim_summary()
    assert summary["process_spans_retained"] == 2
    assert summary["process_spans_dropped"] == 2
    # Aggregates still see every process.
    assert sum(tracer.resumes_by_process.values()) > 4


def test_traced_simulation_installs_and_restores_default():
    assert engine.default_tracer() is None
    with traced_simulation() as tracer:
        assert engine.default_tracer() is tracer
        _toy = Simulator()
        assert _toy._tracer is tracer
    assert engine.default_tracer() is None


def test_hot_events_rank_by_sim_count():
    tracer = SimTracer()
    _run(tracer)
    rows = tracer.hot_events(top=3)
    counts = [count for _kind, count, _share in rows]
    assert counts == sorted(counts, reverse=True)
    shares = [share for _kind, _count, share in tracer.hot_events(top=100)]
    assert all(0.0 <= share <= 1.0 for share in shares)


def test_wall_summary_keeps_its_own_domain():
    tracer = SimTracer()
    _run(tracer)
    sim_summary = tracer.sim_summary()
    wall_summary = tracer.wall_summary()
    assert sim_summary["domain"] == "sim"
    assert wall_summary["domain"] == "wall"
    assert "wall_total_seconds" not in sim_summary
    assert "events_total" not in wall_summary


def test_traced_scenario_sim_slice_is_seed_stable():
    """The deterministic slice of a real campaign is a pure seed function.

    This is the jobs-independence guarantee in microcosm: workers at any
    ``--jobs`` value run this same serial simulation per campaign, so equal
    summaries here mean equal sim-domain telemetry everywhere.
    """
    from repro.workloads.synthetic import run_scenario

    summaries = []
    for _attempt in range(2):
        with traced_simulation() as tracer:
            run_scenario(days=1.0, seed=3)
        summaries.append(tracer.sim_summary())
    assert summaries[0] == summaries[1]
    assert summaries[0]["events_total"] > 0
