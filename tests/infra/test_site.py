"""Tests for the resource provider (site) integration."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.infra as I
from repro.infra.job import Job, JobState
from repro.infra.units import HOUR
from repro.sim import Simulator


def make_site(nodes=8, cores_per_node=4, nu=1.0, budget=1e9):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create("acct", I.AllocationType.RESEARCH, budget, users={"alice"})
    central = I.CentralAccountingDB()
    cluster = I.Cluster("mach", nodes=nodes, cores_per_node=cores_per_node,
                        nu_per_core_hour=nu)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    return sim, site, ledger, central


def job(cores=4, walltime=HOUR, runtime=None, user="alice", account="acct"):
    return Job(
        user=user,
        account=account,
        cores=cores,
        walltime=walltime,
        true_runtime=walltime if runtime is None else runtime,
    )


def test_submit_runs_and_charges():
    sim, site, ledger, central = make_site(nu=2.0)
    j = job(cores=8, walltime=HOUR, runtime=HOUR / 2)
    site.submit(j)
    sim.run(until=HOUR)
    site.feed.drain()
    # 8 cores x 0.5 h x 2.0 NU = 8 NU
    assert j.charged_nu == pytest.approx(8.0)
    assert ledger.total_charged() == pytest.approx(8.0)
    assert central.total_nu() == pytest.approx(8.0)


def test_unknown_account_rejected():
    sim, site, *_ = make_site()
    with pytest.raises(KeyError):
        site.submit(job(account="nope"))


def test_user_not_on_account_rejected():
    sim, site, *_ = make_site()
    with pytest.raises(PermissionError):
        site.submit(job(user="mallory"))


def test_cancelled_unstarted_job_charges_nothing():
    sim, site, ledger, central = make_site(nodes=1, cores_per_node=1)
    blocker = job(cores=1, walltime=10 * HOUR)
    victim = job(cores=1, walltime=HOUR)
    site.submit(blocker)
    site.submit(victim)
    site.cancel(victim)
    sim.run(until=20 * HOUR)
    site.feed.drain()
    assert victim.charged_nu == 0.0
    records = {r.job_id: r for r in central.all_records()}
    assert records[victim.job_id].charged_nu == 0.0
    assert records[victim.job_id].final_state is JobState.CANCELLED


def test_walltime_killed_job_charged_full_walltime():
    sim, site, ledger, _ = make_site()
    j = job(cores=4, walltime=HOUR, runtime=10 * HOUR)
    site.submit(j)
    sim.run(until=2 * HOUR)
    assert j.state is JobState.KILLED_WALLTIME
    assert j.charged_nu == pytest.approx(4.0)  # 4 cores x 1 h


def test_status_snapshot_fields():
    sim, site, *_ = make_site(nodes=8)
    for _ in range(3):
        site.submit(job(cores=32, walltime=HOUR))  # each fills the machine
    snap = site.status_snapshot()
    assert snap["resource"] == "mach"
    assert snap["total_nodes"] == 8
    assert snap["free_nodes"] == 0
    assert snap["running_jobs"] == 1
    assert snap["queued_jobs"] == 2
    assert snap["pending_node_seconds"] == pytest.approx(2 * 8 * HOUR)


def test_one_record_per_terminal_job():
    sim, site, _, central = make_site()
    jobs = [job(cores=2, walltime=HOUR / 4) for _ in range(20)]
    for j in jobs:
        site.submit(j)
    sim.run(until=30 * HOUR)
    site.feed.drain()
    assert len(central) == 20
    assert {r.job_id for r in central.all_records()} == {j.job_id for j in jobs}


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=32),  # cores
            st.floats(min_value=60.0, max_value=4 * HOUR),  # walltime
            st.floats(min_value=0.1, max_value=1.5),  # runtime fraction
        ),
        min_size=1,
        max_size=15,
    )
)
def test_charge_conservation(specs):
    """Property: sum of charges == sum of cores x elapsed x rate, and the
    ledger, the jobs and the central DB all agree."""
    sim, site, ledger, central = make_site(nu=1.5)
    jobs = []
    for cores, walltime, fraction in specs:
        j = job(cores=cores, walltime=walltime, runtime=walltime * fraction)
        jobs.append(j)
        site.submit(j)
    sim.run(until=1000 * HOUR)
    site.feed.drain()
    expected = sum(
        1.5 * j.cores * (j.end_time - j.start_time) / HOUR for j in jobs
    )
    assert ledger.total_charged() == pytest.approx(expected)
    assert central.total_nu() == pytest.approx(expected)
    assert sum(j.charged_nu for j in jobs) == pytest.approx(expected)


def test_record_carries_allocation_field_of_science():
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create(
        "acct",
        I.AllocationType.RESEARCH,
        1e9,
        users={"alice"},
        field_of_science="Physics",
    )
    central = I.CentralAccountingDB()
    cluster = I.Cluster("mach", nodes=4, cores_per_node=4)
    site = I.ResourceProvider(sim, cluster, ledger, central)
    j = job(cores=4, walltime=HOUR, runtime=HOUR / 2)
    site.submit(j)
    sim.run(until=2 * HOUR)
    site.feed.drain()
    record = central.all_records()[0]
    assert record.field_of_science == "Physics"
