"""Bench F5: regenerate the resource-selection comparison."""

from repro.infra.units import MINUTE


def test_f5_metascheduling(regenerate):
    output = regenerate("F5", days=7.0)
    strategies = output.data["strategies"]
    # Informed selection beats uninformed selection.
    assert (
        strategies["predicted_start"]["mean_wait_min"]
        < strategies["random"]["mean_wait_min"]
    )
    assert (
        strategies["least_loaded"]["mean_wait_min"]
        < strategies["round_robin"]["mean_wait_min"]
    )
    # Staleness degrades the informed strategy monotonically at the extremes.
    staleness = output.data["staleness"]
    intervals = sorted(staleness)
    assert (
        staleness[intervals[0]]["mean_wait_min"]
        < staleness[intervals[-1]]["mean_wait_min"]
    )
