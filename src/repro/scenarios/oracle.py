"""The invariant oracle: global properties every scenario result must satisfy.

The fuzzing harness (and the regression suite pinning the canonical
campaign) judge a run not by matching expected numbers — arbitrary scenarios
have no expected numbers — but by *conservation-style invariants* that hold
for every federation the simulator can legally produce:

* **conservation** — every normalized unit charged against an allocation in
  the ledger shows up exactly once in the central accounting database, and
  nothing is left buffered in a site's AMIE feed;
* **no-double-charge** — one usage record per job, with a charge that never
  exceeds the nominal rate x occupancy for its machine (overdraft clipping
  can only lower it);
* **record well-formedness** — timestamps ordered, occupancy within the
  requested walltime, resources and accounts that actually exist;
* **classifier sanity** — the attribute classifier labels *every* record
  exactly once and its identity totals are internally consistent (classifier
  totals ≡ record totals);
* **bounded lost work** — each unplanned outage kills no more jobs than the
  machine could possibly run, the killed jobs' cores fit the machine, and
  per-site kill counters agree with the injector's event log;
* **metrics consistency** — every component counter that migrated onto the
  run-wide :class:`~repro.obs.metrics.MetricsRegistry` reads back identically
  through the registry and through the component attribute (no shadow ints).

:func:`check_scenario` runs all of them and returns an :class:`OracleReport`;
``report.ok`` is the fuzzing harness's pass/fail signal and
``report.violations`` carry human-readable detail for the replay message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classifier import AttributeClassifier
from repro.core.modalities import Modality
from repro.infra.units import HOUR

__all__ = ["OracleReport", "Violation", "check_merged_artifact", "check_scenario"]

#: Relative tolerance for float accumulations (charge sums differ only by
#: summation order between the ledger and the record stream).
REL_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug the scenario."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


@dataclass
class OracleReport:
    """The outcome of one oracle pass over a scenario result."""

    checks: dict[str, bool] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, invariant: str, ok: bool, detail: str = "") -> None:
        self.checks[invariant] = self.checks.get(invariant, True) and ok
        if not ok:
            self.violations.append(Violation(invariant, detail))

    def summary(self) -> str:
        lines = [
            f"{'ok' if passed else 'FAIL':4s} {invariant}"
            for invariant, passed in sorted(self.checks.items())
        ]
        return "\n".join(lines)


def _close(a: float, b: float, scale: float = 1.0) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), scale)


def check_conservation(result, report: OracleReport) -> None:
    """NU charged in the ledger ≡ NU recorded centrally; feeds drained.

    Under a packet-fault regime the lossless identity weakens to
    *conservation up to unrecovered records*: every charged NU appears
    either centrally or in a site ledger entry the audit could not (or was
    not allowed to) recover — and with reconciliation re-sends enabled, the
    strong identity must hold again.
    """
    charged = result.ledger.total_charged()
    recorded = result.central.total_nu()
    faulty = getattr(result, "amie_endpoint", None) is not None
    if not faulty:
        report.record(
            "conservation.ledger_vs_central",
            _close(charged, recorded),
            f"ledger charged {charged!r} NU but central recorded {recorded!r}",
        )
    else:
        published = sum(
            r.charged_nu for p in result.providers for r in p.feed.ledger
        )
        report.record(
            "conservation.ledger_vs_published",
            _close(charged, published),
            f"ledger charged {charged!r} NU but sites published {published!r}",
        )
        known = result.central.job_ids()
        missing_nu = sum(
            r.charged_nu
            for p in result.providers
            for r in p.feed.ledger
            if r.job_id not in known
        )
        report.record(
            "conservation.up_to_missing",
            _close(recorded + missing_nu, charged),
            f"central {recorded!r} + missing {missing_nu!r} NU != "
            f"charged {charged!r}",
        )
        reconciliation = result.reconciliation
        if reconciliation is not None and reconciliation.resend_enabled:
            report.record(
                "conservation.reconciled",
                reconciliation.total_unrecovered == 0
                and _close(charged, recorded),
                f"audit with re-sends left "
                f"{reconciliation.total_unrecovered} records unrecovered "
                f"(central {recorded!r} NU vs charged {charged!r})",
            )
    summed = sum(r.charged_nu for r in result.records)
    report.record(
        "conservation.record_sum",
        _close(summed, recorded),
        f"record charges sum to {summed!r} but central totals {recorded!r}",
    )
    for provider in result.providers:
        report.record(
            "conservation.feed_drained",
            provider.feed.buffered == 0,
            f"{provider.name} still buffers {provider.feed.buffered} records",
        )
        report.record(
            "conservation.records_emitted",
            provider.records_emitted == len(provider.scheduler.completed),
            f"{provider.name} emitted {provider.records_emitted} records for "
            f"{len(provider.scheduler.completed)} terminal jobs",
        )


def check_ingest_exchange(result, report: OracleReport) -> None:
    """Faulty-exchange bookkeeping must reconcile exactly (no silent loss).

    Lossless runs have no exchange state; every invariant passes vacuously.
    """
    endpoint = getattr(result, "amie_endpoint", None)
    if endpoint is None:
        for invariant in (
            "ingest.feed_counters",
            "ingest.endpoint_counters",
            "ingest.quarantine_structured",
            "ingest.audit_counters",
        ):
            report.record(invariant, True)
        return
    known = result.central.job_ids()
    for provider in result.providers:
        feed = provider.feed
        delivered = endpoint.delivered_records(feed.feed_id)
        unrecovered = sum(1 for r in feed.ledger if r.job_id not in known)
        report.record(
            "ingest.feed_counters",
            feed.records_published == len(feed.ledger)
            and feed.records_published == delivered + unrecovered,
            f"{feed.feed_id}: published {feed.records_published} records but "
            f"ledger holds {len(feed.ledger)}, delivered {delivered}, "
            f"unrecovered {unrecovered}",
        )
    report.record(
        "ingest.endpoint_counters",
        endpoint.packets_received
        == endpoint.packets_accepted
        + endpoint.packets_duplicate
        + endpoint.packets_quarantined,
        f"endpoint received {endpoint.packets_received} packets but "
        f"accepted {endpoint.packets_accepted} + duplicate "
        f"{endpoint.packets_duplicate} + quarantined "
        f"{endpoint.packets_quarantined}",
    )
    structured = all(
        q.reason in ("truncated", "corrupted") and q.detail and q.n_records >= 0
        for q in endpoint.quarantine
    )
    report.record(
        "ingest.quarantine_structured",
        structured and len(endpoint.quarantine) == endpoint.packets_quarantined,
        f"{len(endpoint.quarantine)} quarantine entries for "
        f"{endpoint.packets_quarantined} quarantined packets",
    )
    reconciliation = result.reconciliation
    audit_ok = reconciliation is not None and all(
        audit.published == audit.delivered + audit.unrecovered
        and audit.recovered <= audit.resent
        and (audit.unrecovered == 0 or not reconciliation.resend_enabled)
        for audit in reconciliation.audits
    )
    report.record(
        "ingest.audit_counters",
        audit_ok,
        "reconciliation audit missing or internally inconsistent: "
        f"{reconciliation!r}",
    )


def check_no_double_charge(result, report: OracleReport) -> None:
    """One record per job; charges never exceed the machine's nominal rate."""
    records = result.records
    seen: set[int] = set()
    duplicates: set[int] = set()
    for record in records:
        if record.job_id in seen:
            duplicates.add(record.job_id)
        seen.add(record.job_id)
    report.record(
        "double_charge.unique_jobs",
        not duplicates,
        f"jobs recorded more than once: {sorted(duplicates)[:5]}",
    )
    rates = {p.name: p.cluster.nu_per_core_hour for p in result.providers}
    for record in records:
        rate = rates.get(record.resource)
        if rate is None:
            report.record(
                "double_charge.known_resource",
                False,
                f"job {record.job_id} charged on unknown resource "
                f"{record.resource!r}",
            )
            continue
        nominal = record.cores * record.elapsed / HOUR * rate
        if record.charged_nu < -REL_TOL or (
            record.charged_nu > nominal * (1 + REL_TOL) + REL_TOL
        ):
            report.record(
                "double_charge.nominal_bound",
                False,
                f"job {record.job_id} charged {record.charged_nu} NU, "
                f"nominal at most {nominal}",
            )
    report.record("double_charge.known_resource", True)
    report.record("double_charge.nominal_bound", True)


def check_records_wellformed(result, report: OracleReport) -> None:
    """Timestamps ordered, occupancy bounded, accounts real."""
    horizon = result.config.horizon if result.config is not None else None
    for record in result.records:
        ordered = record.submit_time <= record.end_time and (
            record.start_time is None
            or record.submit_time <= record.start_time <= record.end_time
        )
        if not ordered:
            report.record(
                "records.timestamps_ordered",
                False,
                f"job {record.job_id}: submit={record.submit_time} "
                f"start={record.start_time} end={record.end_time}",
            )
        if horizon is not None and record.end_time > horizon + REL_TOL:
            report.record(
                "records.within_horizon",
                False,
                f"job {record.job_id} ends at {record.end_time}, "
                f"horizon {horizon}",
            )
        if record.elapsed > record.requested_walltime * (1 + REL_TOL):
            report.record(
                "records.occupancy_bounded",
                False,
                f"job {record.job_id} occupied {record.elapsed}s against a "
                f"{record.requested_walltime}s request",
            )
        if record.account not in result.ledger:
            report.record(
                "records.known_account",
                False,
                f"job {record.job_id} charged to unknown account "
                f"{record.account!r}",
            )
        if record.cores < 1:
            report.record(
                "records.positive_cores",
                False,
                f"job {record.job_id} recorded {record.cores} cores",
            )
    for invariant in (
        "records.timestamps_ordered",
        "records.within_horizon",
        "records.occupancy_bounded",
        "records.known_account",
        "records.positive_cores",
    ):
        report.record(invariant, True)


def check_classifier_sanity(result, report: OracleReport) -> None:
    """The attribute classifier covers every record, exactly once."""
    records = result.records
    classification = AttributeClassifier().classify(records)
    labeled, total = classification.coverage(records)
    report.record(
        "classifier.total_coverage",
        labeled == total,
        f"classifier labeled {labeled} of {total} records",
    )
    label_jobs = sum(
        1 for r in records if r.job_id in classification.job_labels
    )
    report.record(
        "classifier.one_label_per_job",
        label_jobs == len(records)
        and len(classification.job_labels) >= len({r.job_id for r in records}),
        f"{label_jobs} labelled of {len(records)} records, "
        f"{len(classification.job_labels)} labels",
    )
    report.record(
        "classifier.identity_totals",
        sum(classification.users_by_modality().values())
        == classification.n_identities,
        f"primary-modality counts sum to "
        f"{sum(classification.users_by_modality().values())} for "
        f"{classification.n_identities} identities",
    )
    valid = all(
        isinstance(m, Modality) for m in classification.job_labels.values()
    )
    report.record(
        "classifier.valid_labels", valid, "non-Modality label emitted"
    )


def check_bounded_lost_work(result, report: OracleReport) -> None:
    """Outages kill at most a machine's worth of work, consistently counted."""
    nodes = {p.name: p.cluster.nodes for p in result.providers}
    cores = {p.name: p.cluster.total_cores for p in result.providers}
    lost_by_site: dict[str, int] = {}
    for injector in result.injectors:
        for event in injector.outages:
            cap = nodes.get(event.site, 0)
            if not (0 <= event.jobs_killed <= cap):
                report.record(
                    "lost_work.kills_bounded",
                    False,
                    f"{event.kind} outage at {event.site} t={event.start} "
                    f"killed {event.jobs_killed} jobs on a {cap}-node machine",
                )
            if event.kind == "full":
                lost_by_site[event.site] = (
                    lost_by_site.get(event.site, 0) + event.jobs_killed
                )
        site = injector.provider.name
        event_kills = sum(e.jobs_killed for e in injector.outages)
        if injector.jobs_killed != event_kills:
            report.record(
                "lost_work.counter_consistent",
                False,
                f"{site} injector counts {injector.jobs_killed} kills but "
                f"its events sum to {event_kills}",
            )
    for provider in result.providers:
        expected = lost_by_site.get(provider.name, 0)
        if provider.jobs_lost_to_outages != expected:
            report.record(
                "lost_work.site_counter",
                False,
                f"{provider.name} reports {provider.jobs_lost_to_outages} "
                f"jobs lost but full-outage events sum to {expected}",
            )
    # Work killed at any single instant cannot exceed the machine.
    outage_starts = sorted(
        {
            (e.site, e.start)
            for injector in result.injectors
            for e in injector.outages
        }
    )
    for site, start in outage_starts:
        killed_cores = sum(
            r.cores
            for r in result.records
            if r.resource == site
            and r.final_state.value == "failed"
            and r.end_time == start
        )
        if killed_cores > cores.get(site, 0):
            report.record(
                "lost_work.cores_bounded",
                False,
                f"outage at {site} t={start} ended jobs totalling "
                f"{killed_cores} cores on a {cores.get(site, 0)}-core machine",
            )
    for invariant in (
        "lost_work.kills_bounded",
        "lost_work.counter_consistent",
        "lost_work.site_counter",
        "lost_work.cores_bounded",
    ):
        report.record(invariant, True)


def check_metrics_registry(result, report: OracleReport) -> None:
    """The metric registry and the component attributes are the same cells.

    Every counter a component exposes as an attribute (gateway submissions,
    injector kills, ingest packet ledgers, feed publish counts) must read
    back identically through the run-wide :class:`MetricsRegistry` — the
    migration onto the registry is only safe if no component secretly kept a
    shadow int.  Results with no registry (hand-built in tests) pass
    vacuously.
    """
    registry = getattr(result, "metrics", None)
    if registry is None:
        report.record("metrics.registry_consistent", True)
        return
    expected: list[tuple[str, int]] = []
    for name, gateway in getattr(result, "gateways", {}).items():
        expected += [
            (f"gateway.{name}.jobs_submitted", gateway.jobs_submitted),
            (f"gateway.{name}.jobs_tagged", gateway.jobs_tagged),
            (f"gateway.{name}.requests_queued", gateway.requests_queued),
            (f"gateway.{name}.requests_shed", gateway.requests_shed),
            (f"gateway.{name}.backlog_submitted", gateway.backlog_submitted),
        ]
    for injector in getattr(result, "injectors", []):
        site = injector.provider.name
        expected += [
            (f"resilience.{site}.jobs_killed", injector.jobs_killed),
            (f"resilience.{site}.requeued", injector.requeued),
        ]
    endpoint = getattr(result, "amie_endpoint", None)
    if endpoint is not None:
        expected += [
            ("ingest.packets_received", endpoint.packets_received),
            ("ingest.packets_accepted", endpoint.packets_accepted),
            ("ingest.packets_duplicate", endpoint.packets_duplicate),
            ("ingest.packets_quarantined", endpoint.packets_quarantined),
            ("ingest.records_accepted", endpoint.records_accepted),
            ("ingest.records_duplicate", endpoint.records_duplicate),
        ]
        for provider in result.providers:
            feed = provider.feed
            scope = f"amie.{feed.feed_id}"
            expected += [
                (f"{scope}.batches_sent", feed.batches_sent),
                (f"{scope}.retransmits", feed.retransmits),
                (f"{scope}.records_published", feed.records_published),
                (
                    f"{scope}.transport.packets_sent",
                    feed.transport.packets_sent,
                ),
                (
                    f"{scope}.transport.packets_dropped",
                    feed.transport.packets_dropped,
                ),
            ]
    for name, value in expected:
        if name not in registry:
            report.record(
                "metrics.registry_consistent",
                False,
                f"{name} missing from the registry",
            )
        elif registry.value(name) != value:
            report.record(
                "metrics.registry_consistent",
                False,
                f"{name}: registry reads {registry.value(name)}, "
                f"component attribute reads {value}",
            )
    report.record("metrics.registry_consistent", True)


def check_scenario(result) -> OracleReport:
    """Run every invariant over one :class:`ScenarioResult`."""
    report = OracleReport()
    check_conservation(result, report)
    check_ingest_exchange(result, report)
    check_no_double_charge(result, report)
    check_records_wellformed(result, report)
    check_classifier_sanity(result, report)
    check_bounded_lost_work(result, report)
    check_metrics_registry(result, report)
    return report


def check_merged_artifact(artifact) -> OracleReport:
    """Invariants for a (possibly cell-merged) :class:`CampaignArtifact`.

    Merged artifacts carry no live simulator state, so the full scenario
    oracle cannot run; these are the properties the merge step itself must
    preserve — the measurement experiments and AMIE reconciliation consume
    the artifact assuming all of them hold:

    * **merge-order** — records sorted by ``(end_time, job_id)``, the
      canonical accounting-stream order every cell emits and the merge
      re-establishes globally;
    * **unique-job-ids** — cell renumbering kept job ids globally unique
      (a stride collision would silently double-count usage);
    * **truth-coverage** — every record's job id has a modality label in
      ``job_truth`` (the classifier's ground truth survived the merge);
    * **artifact-wellformed** — timestamps ordered and charges non-negative
      per record;
    * **conservation** — summed record charges match the artifact's
      ``total_nu`` (cell totals were summed, not dropped or doubled);
    * **identity-closure** — ``active_identities`` is a subset of the
      identity-truth keys (set unions stayed within the labelled universe).
    """
    report = OracleReport()

    records = artifact.records
    order = [(r.end_time, r.job_id) for r in records]
    report.record(
        "merge-order",
        order == sorted(order),
        "records not sorted by (end_time, job_id)",
    )

    job_ids = [r.job_id for r in records]
    dupes = len(job_ids) - len(set(job_ids))
    report.record(
        "unique-job-ids", dupes == 0, f"{dupes} duplicate job id(s) after merge"
    )

    unlabelled = [jid for jid in job_ids if jid not in artifact.job_truth]
    report.record(
        "truth-coverage",
        not unlabelled,
        f"{len(unlabelled)} record(s) missing from job_truth "
        f"(first: {unlabelled[:3]})",
    )

    for record in records:
        if record.start_time is not None and not (
            record.submit_time <= record.start_time <= record.end_time
        ):
            report.record(
                "artifact-wellformed",
                False,
                f"job {record.job_id}: timestamps out of order",
            )
            break
        if record.charged_nu < 0:
            report.record(
                "artifact-wellformed",
                False,
                f"job {record.job_id}: negative charge {record.charged_nu}",
            )
            break
    else:
        report.record("artifact-wellformed", True)

    charged = sum(r.charged_nu for r in records)
    report.record(
        "conservation",
        _close(charged, artifact.total_nu, scale=max(abs(charged), 1.0)),
        f"sum(charged_nu)={charged:.6f} != total_nu={artifact.total_nu:.6f}",
    )

    strays = set(artifact.active_identities) - set(artifact.identity_truth)
    report.record(
        "identity-closure",
        not strays,
        f"{len(strays)} active identity(ies) missing from identity_truth",
    )
    return report
