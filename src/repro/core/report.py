"""Rendering tables and figure series as text.

Benchmarks print the regenerated tables/figures through these helpers so
`pytest benchmarks/ --benchmark-only` output doubles as the experiment
report (captured into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.modalities import MODALITY_ORDER, MODALITY_TAXONOMY, Modality

__all__ = [
    "ascii_table",
    "counters_footer",
    "series_block",
    "modality_table",
    "taxonomy_table",
]


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width table with a rule under the header."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def counters_footer(counters: Mapping[str, object]) -> str:
    """Event counters as one deterministic footer line.

    Insertion order is preserved (callers list counters in a fixed order),
    so the line is byte-stable across worker counts and resumes as long as
    the counts themselves are.
    """
    body = ", ".join(f"{name}={value}" for name, value in counters.items())
    return f"[counters: {body}]"


def series_block(
    title: str, series: Mapping[str, Sequence[tuple[float, float]]]
) -> str:
    """Figure data as labelled ``x y`` columns (one block per series)."""
    lines = [title]
    for name in series:
        lines.append(f"# series: {name}")
        for x, y in series[name]:
            lines.append(f"{x:g}\t{y:g}")
    return "\n".join(lines)


def modality_table(
    columns: Mapping[str, Mapping[Modality, object]],
    title: str = "",
    fmt: str = "{}",
) -> str:
    """One row per modality, one column per named measurement."""
    headers = ["modality", *columns.keys()]
    rows = []
    for modality in MODALITY_ORDER:
        row: list[object] = [MODALITY_TAXONOMY[modality].label]
        for name in columns:
            value = columns[name].get(modality, "")
            row.append(fmt.format(value) if value != "" else "")
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def taxonomy_table() -> str:
    """The taxonomy itself (the paper's definitional table)."""
    headers = ["modality", "objective", "access", "measurable signals"]
    rows = [
        [
            desc.label,
            desc.objective,
            desc.access,
            "; ".join(desc.signals),
        ]
        for desc in (MODALITY_TAXONOMY[m] for m in MODALITY_ORDER)
    ]
    return ascii_table(headers, rows, title="TeraGrid usage-modality taxonomy")
