"""R1 — Seed sensitivity of the headline table.

Every other experiment reports one seed; R1 re-measures T1's instrumented
user counts across independent seeds and reports the replicate spread, so
EXPERIMENTS.md can state which digits of the headline table are stable.

Shape expectation: the per-modality counts vary by at most a few users
across seeds (activity, not population, is the random part — the population
counts themselves are deterministic at fixed scale), and the dominance
ordering BATCH > EXPLORATORY > GATEWAY > ENSEMBLE > VIZ >= COUPLED holds in
every replicate.

R1 is the blueprint replicate sweep: each seed is an independent simulation,
declared as one :class:`ExperimentTask` so the parallel runner can fan the
replicates out across worker processes.  ``run`` goes through the same
plan/execute/merge path serially, keeping the two execution modes
byte-identical.
"""

from __future__ import annotations

from repro.analysis import describe
from repro.core import AttributeClassifier
from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    campaign,
    campaign_key,
    register,
    register_campaigns,
    register_tasks,
    run_via_tasks,
)

__all__ = ["run"]

_DAYS = 45.0
_SEEDS = (1, 2, 3, 4, 5)
_POPULATION_SCALE = 0.05


def plan(
    days: float = _DAYS,
    seeds: tuple[int, ...] = _SEEDS,
    population_scale: float = _POPULATION_SCALE,
) -> list[ExperimentTask]:
    return [
        ExperimentTask(
            experiment_id="R1",
            index=index,
            params={
                "days": days,
                "seed": int(seed),
                "population_scale": population_scale,
            },
            seed=int(seed),
        )
        for index, seed in enumerate(seeds)
    ]


def execute(params: dict) -> dict:
    """One replicate: simulate a campaign at one seed, count users."""
    result = campaign(
        days=params["days"],
        seed=params["seed"],
        population_scale=params["population_scale"],
    )
    counts = AttributeClassifier().classify(result.records).users_by_modality()
    values = [counts[m] for m in MODALITY_ORDER]
    return {
        "counts": {m.value: counts[m] for m in MODALITY_ORDER},
        "ordering_ok": all(a >= b for a, b in zip(values, values[1:])),
    }


def merge(
    partials: list[dict],
    days: float = _DAYS,
    seeds: tuple[int, ...] = _SEEDS,
    population_scale: float = _POPULATION_SCALE,
) -> ExperimentOutput:
    replicates: dict[str, list[int]] = {m.value: [] for m in MODALITY_ORDER}
    orderings_ok = 0
    for partial in partials:
        orderings_ok += bool(partial["ordering_ok"])
        for modality in MODALITY_ORDER:
            replicates[modality.value].append(partial["counts"][modality.value])

    rows = []
    data = {}
    for modality in MODALITY_ORDER:
        stats = describe(replicates[modality.value])
        rows.append(
            [
                modality.value,
                f"{stats.mean:.1f}",
                f"{stats.minimum:.0f}-{stats.maximum:.0f}",
                f"{stats.std:.2f}",
            ]
        )
        data[modality.value] = {
            "mean": stats.mean,
            "min": stats.minimum,
            "max": stats.maximum,
            "std": stats.std,
            "values": replicates[modality.value],
        }
    text = ascii_table(
        ["modality", "mean users", "range", "std"],
        rows,
        title=(
            f"R1 — Measured users per modality across seeds {list(seeds)} "
            f"({days:g} days; dominance ordering held in "
            f"{orderings_ok}/{len(seeds)} replicates)"
        ),
    )
    data["orderings_ok"] = orderings_ok
    data["n_seeds"] = len(seeds)
    return ExperimentOutput(
        experiment_id="R1",
        title="Seed sensitivity of the headline user counts",
        text=text,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """Each R1 replicate simulates its own campaign at one seed."""
    return [
        campaign_key(
            days=params["days"],
            seed=params["seed"],
            population_scale=params["population_scale"],
        )
    ]


register_tasks("R1", plan=plan, execute=execute, merge=merge)
register_campaigns("R1", _campaigns)


@register("R1")
def run(
    days: float = _DAYS,
    seeds: tuple[int, ...] = _SEEDS,
    population_scale: float = _POPULATION_SCALE,
) -> ExperimentOutput:
    return run_via_tasks(
        "R1", days=days, seeds=seeds, population_scale=population_scale
    )
