"""Cross-site resource selection (the "which machine?" decision).

TeraGrid offered users tools to pick a machine for minimum time-to-start
(Yoshimoto & Sivagnanam, *TeraGrid resource selection tools*).  The
metascheduler implements the strategies compared in experiment F5:

* ``RANDOM`` — uniform choice (the null strategy);
* ``ROUND_ROBIN`` — rotate through sites;
* ``LEAST_LOADED`` — minimize queued work per node, *as published by the
  information service* (so staleness hurts);
* ``PREDICTED_START`` — probe each site's scheduler for the job's earliest
  feasible start (a fresh reservation-style probe, the strongest tool).
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, Sequence

import numpy as np

from repro.infra.infoservice import InformationService
from repro.infra.job import Job
from repro.infra.site import ResourceProvider

__all__ = ["Metascheduler", "SelectionStrategy"]


class SelectionStrategy(enum.Enum):
    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"
    PREDICTED_START = "predicted_start"


class Metascheduler:
    """Selects a site per job and forwards the submission."""

    def __init__(
        self,
        providers: Sequence[ResourceProvider],
        strategy: SelectionStrategy,
        rng: Optional[np.random.Generator] = None,
        info_service: Optional[InformationService] = None,
    ) -> None:
        self.providers = list(providers)
        if not self.providers:
            raise ValueError("metascheduler needs at least one provider")
        self.strategy = strategy
        self.rng = rng
        self.info_service = info_service
        self._rr = itertools.cycle(range(len(self.providers)))
        self.selections: dict[str, int] = {}
        if strategy is SelectionStrategy.RANDOM and rng is None:
            raise ValueError("RANDOM strategy requires an rng")
        if strategy is SelectionStrategy.LEAST_LOADED and info_service is None:
            raise ValueError("LEAST_LOADED strategy requires an info service")

    # -- selection ----------------------------------------------------------
    def _eligible(self, job: Job) -> list[ResourceProvider]:
        fits = [
            p for p in self.providers if job.cores <= p.cluster.total_cores
        ]
        if not fits:
            raise ValueError(
                f"job {job.job_id} ({job.cores} cores) fits on no site"
            )
        return fits

    def select(self, job: Job) -> ResourceProvider:
        """Choose the site for ``job`` under the configured strategy."""
        eligible = self._eligible(job)
        if self.strategy is SelectionStrategy.RANDOM:
            assert self.rng is not None
            choice = eligible[int(self.rng.integers(len(eligible)))]
        elif self.strategy is SelectionStrategy.ROUND_ROBIN:
            while True:
                candidate = self.providers[next(self._rr)]
                if candidate in eligible:
                    choice = candidate
                    break
        elif self.strategy is SelectionStrategy.LEAST_LOADED:
            assert self.info_service is not None
            def load(provider: ResourceProvider) -> float:
                snap = self.info_service.query(provider.name)
                return snap["pending_node_seconds"] / snap["total_nodes"]
            choice = min(eligible, key=lambda p: (load(p), p.name))
        elif self.strategy is SelectionStrategy.PREDICTED_START:
            choice = min(
                eligible,
                key=lambda p: (p.scheduler.earliest_start(job), p.name),
            )
        else:  # pragma: no cover - enum is closed
            raise AssertionError(self.strategy)
        self.selections[choice.name] = self.selections.get(choice.name, 0) + 1
        return choice

    def submit(self, job: Job) -> ResourceProvider:
        """Select a site and submit; returns the chosen provider."""
        provider = self.select(job)
        provider.submit(job)
        return provider
