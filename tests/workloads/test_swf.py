"""Tests for SWF export/import."""

import io

import pytest

from repro.infra.job import JobState
from repro.users.population import PopulationSpec
from repro.workloads import records_to_swf, run_scenario, swf_to_records


def test_swf_round_trip_preserves_structure():
    result = run_scenario(days=5, seed=6, population=PopulationSpec(scale=0.02))
    records = result.records
    buffer = io.StringIO()
    assert records_to_swf(records, buffer) == len(records)
    buffer.seek(0)
    parsed = swf_to_records(buffer)
    assert len(parsed) == len(records)
    original = {r.job_id: r for r in records}
    for record in parsed:
        source = original[record.job_id]
        assert record.user == source.user
        assert record.resource == source.resource
        assert record.cores == source.cores
        assert record.submit_time == pytest.approx(source.submit_time, abs=1.0)
        if source.ran:
            assert record.start_time == pytest.approx(source.start_time, abs=1.5)
            assert record.elapsed == pytest.approx(source.elapsed, abs=1.5)
        assert record.attributes == source.attributes


def test_swf_round_trip_preserves_terminal_states():
    result = run_scenario(days=5, seed=6, population=PopulationSpec(scale=0.02))
    buffer = io.StringIO()
    records_to_swf(result.records, buffer)
    buffer.seek(0)
    parsed = {r.job_id: r for r in swf_to_records(buffer)}
    for record in result.records:
        round_tripped = parsed[record.job_id].final_state
        if record.final_state is JobState.COMPLETED:
            assert round_tripped is JobState.COMPLETED
        elif record.final_state is JobState.FAILED:
            assert round_tripped is JobState.FAILED
        else:
            # killed/cancelled share SWF status 5
            assert round_tripped is JobState.CANCELLED


def test_swf_output_is_sorted_by_submit_time():
    result = run_scenario(days=5, seed=6, population=PopulationSpec(scale=0.02))
    buffer = io.StringIO()
    records_to_swf(result.records, buffer)
    submits = [
        int(line.split()[1])
        for line in buffer.getvalue().splitlines()
        if line and not line.startswith(";")
    ]
    assert submits == sorted(submits)


def test_swf_rejects_malformed_lines():
    with pytest.raises(ValueError):
        swf_to_records(io.StringIO("1 2 3\n"))


def test_swf_parses_foreign_trace_without_comments():
    line = "7 100 50 3600 64 -1 -1 64 7200 -1 1 3 -1 -1 1 1 -1 -1\n"
    (record,) = swf_to_records(io.StringIO(line))
    assert record.job_id == 7
    assert record.user == "user3"
    assert record.resource == "resource1"
    assert record.cores == 64
    assert record.start_time == 150.0
    assert record.elapsed == 3600.0
    assert record.final_state is JobState.COMPLETED
    assert record.attributes == {}
