"""A2 (ablation) — Reactive vs sticky shadow reservations.

The F4 capability comparison rests on one mechanism: whether the head's
reservation moves earlier when jobs complete ahead of their walltime bounds.
This ablation isolates it on a plain workload (no heroes): sticky
reservations idle the machine between the actual drain and the bound-based
reserved start.  Shape expectation: reactive EASY dominates sticky EASY on
both utilization and waits, with the gap growing as walltime requests get
looser.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import ascii_table
from repro.experiments.base import ExperimentOutput, register
from repro.experiments.f3_wait_times import _feeder, single_site_workload
from repro.infra.cluster import Cluster
from repro.infra.scheduler import EasyBackfillScheduler
from repro.infra.units import DAY, HOUR
from repro.sim import RandomStreams, Simulator

__all__ = ["run"]


def _measure(sticky: bool, pad: tuple[float, float], days: float, seed: int,
             load: float):
    sim = Simulator()
    cluster = Cluster("mach", nodes=48, cores_per_node=8)
    scheduler = EasyBackfillScheduler(sim, cluster, sticky_shadow=sticky)
    rng = RandomStreams(seed).stream("a2-workload")
    arrivals = single_site_workload(
        rng, cluster, days, load=load, walltime_pad=pad,
        runtime_median=3 * HOUR,
    )
    sim.process(_feeder(sim, scheduler, arrivals), name="feeder")
    horizon = days * DAY
    sim.run(until=horizon)
    finished = [j for j in scheduler.completed if j.start_time is not None]
    delivered = sum(
        cluster.nodes_for(j.cores) * (min(j.end_time, horizon) - j.start_time)
        for j in finished
    )
    # Wait statistics only over jobs submitted in the first half of the
    # horizon: under a growing backlog (sticky mode), late submissions are
    # right-censored and would bias the comparison.
    early = [j for j in finished if j.submit_time <= horizon / 2]
    waits = [j.wait_time / HOUR for j in early]
    return {
        "utilization": delivered / (cluster.nodes * horizon),
        "median_wait_h": float(np.median(waits)) if waits else 0.0,
        "n_finished": len(finished),
    }


@register("A2")
def run(days: float = 14.0, seed: int = 29, load: float = 0.9) -> ExperimentOutput:
    rows = []
    data = {}
    for pad in [(1.5, 2.0), (3.0, 5.0)]:
        label = f"{pad[0]:.1f}-{pad[1]:.1f}x"
        reactive = _measure(False, pad, days, seed, load)
        sticky = _measure(True, pad, days, seed, load)
        rows.append(
            [
                label,
                f"{100 * reactive['utilization']:.1f}%",
                f"{100 * sticky['utilization']:.1f}%",
                f"{reactive['median_wait_h']:.2f}h",
                f"{sticky['median_wait_h']:.2f}h",
                f"{reactive['n_finished']}/{sticky['n_finished']}",
            ]
        )
        data[label] = {"reactive": reactive, "sticky": sticky}
    text = ascii_table(
        ["walltime pad", "util (reactive)", "util (sticky)",
         "median wait (reactive)", "median wait (sticky)",
         "jobs finished (R/S)"],
        rows,
        title=(
            f"A2 — Reactive vs sticky shadow reservations "
            f"({days:g} days at load {load:.0%})"
        ),
    )
    return ExperimentOutput(
        experiment_id="A2",
        title="Reservation-style ablation (reactive vs sticky shadows)",
        text=text,
        data=data,
    )
