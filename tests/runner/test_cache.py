"""Tests for the on-disk result cache and its key scheme."""

import pickle

import pytest

from repro.runner.cache import ResultCache, code_version, default_cache_dir


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


def test_round_trip(cache):
    cache.put("T1", {"days": 5.0}, 1, {"answer": 42})
    hit, value = cache.get("T1", {"days": 5.0}, 1)
    assert hit and value == {"answer": 42}
    assert cache.stats.hits == 1 and cache.stats.writes == 1


def test_miss_on_empty_cache(cache):
    hit, value = cache.get("T1", {"days": 5.0}, 1)
    assert not hit and value is None
    assert cache.stats.misses == 1


def test_key_depends_on_every_component(cache):
    base = cache.key("T1", {"days": 5.0}, 1)
    assert cache.key("T2", {"days": 5.0}, 1) != base
    assert cache.key("T1", {"days": 6.0}, 1) != base
    assert cache.key("T1", {"days": 5.0}, 2) != base
    other_version = ResultCache(root=cache.root, version="deadbeef")
    assert other_version.key("T1", {"days": 5.0}, 1) != base


def test_key_is_insensitive_to_dict_ordering(cache):
    a = cache.key("T1", {"days": 5.0, "seed": 3}, 1)
    b = cache.key("T1", {"seed": 3, "days": 5.0}, 1)
    assert a == b


def test_key_distinguishes_tuple_knob_values(cache):
    a = cache.key("R1", {"seeds": (1, 2)}, 1)
    b = cache.key("R1", {"seeds": (1, 3)}, 1)
    assert a != b


def test_corrupt_entry_is_a_miss_and_removed(cache):
    cache.put("T1", {}, 1, "value")
    (entry,) = cache.entries()
    entry.write_bytes(b"not a pickle")
    hit, value = cache.get("T1", {}, 1)
    assert not hit and value is None
    assert cache.entries() == []


def test_clear_removes_everything(cache):
    for seed in range(3):
        cache.put("T1", {}, seed, seed)
    assert len(cache.entries()) == 3
    assert cache.clear() == 3
    assert cache.entries() == []
    assert cache.size_bytes() == 0


def test_put_overwrites_atomically(cache):
    cache.put("T1", {}, 1, "old")
    cache.put("T1", {}, 1, "new")
    hit, value = cache.get("T1", {}, 1)
    assert hit and value == "new"
    # No leftover temp files from the write-and-rename protocol.
    assert [p for p in cache.root.iterdir() if p.suffix == ".tmp"] == []


def test_entries_are_loadable_pickles(cache):
    cache.put("T1", {"days": 1.0}, 7, {"rows": [1, 2, 3]})
    (entry,) = cache.entries()
    with entry.open("rb") as handle:
        assert pickle.load(handle) == {"rows": [1, 2, 3]}


def test_code_version_is_stable_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"
