"""Tests for fields, profiles and population construction."""

import numpy as np
import pytest

import repro.infra as I
from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.allocations import AllocationType
from repro.sim import Simulator
from repro.users.fields import FIELDS_OF_SCIENCE, FIELD_WEIGHTS, sample_field
from repro.users.population import (
    BASE_USER_COUNTS,
    Population,
    PopulationSpec,
    build_population,
)
from repro.users.profiles import DEFAULT_PROFILES, BehaviorProfile
from repro.infra.units import HOUR


def test_field_weights_normalized():
    assert sum(FIELD_WEIGHTS) == pytest.approx(1.0)
    assert len(FIELD_WEIGHTS) == len(FIELDS_OF_SCIENCE)


def test_sample_field_returns_known_fields():
    rng = np.random.default_rng(0)
    for _ in range(50):
        assert sample_field(rng) in FIELDS_OF_SCIENCE


def test_default_profiles_cover_all_modalities():
    assert set(DEFAULT_PROFILES) == set(Modality)


def test_profiles_encode_modality_contrasts():
    batch = DEFAULT_PROFILES[Modality.BATCH]
    exploratory = DEFAULT_PROFILES[Modality.EXPLORATORY]
    coupled = DEFAULT_PROFILES[Modality.COUPLED]
    assert exploratory.runtime_median < batch.runtime_median / 10
    assert exploratory.failure_prob > 3 * batch.failure_prob
    assert coupled.min_cores > batch.min_cores
    assert coupled.think_time_mean > batch.think_time_mean


def test_profile_validation():
    base = DEFAULT_PROFILES[Modality.BATCH]
    with pytest.raises(ValueError):
        BehaviorProfile(
            modality=Modality.BATCH,
            think_time_mean=0.0,
            jobs_per_session=(1, 2),
            min_cores=1,
            max_cores=8,
            mean_log2_cores=2,
            sigma_log2_cores=1,
            runtime_median=HOUR,
            runtime_sigma=1.0,
            runtime_min=60.0,
            runtime_max=2 * HOUR,
            walltime_pad=2.0,
            failure_prob=0.1,
        )
    with pytest.raises(ValueError):
        BehaviorProfile(
            modality=Modality.BATCH,
            think_time_mean=base.think_time_mean,
            jobs_per_session=(3, 2),
            min_cores=1,
            max_cores=8,
            mean_log2_cores=2,
            sigma_log2_cores=1,
            runtime_median=HOUR,
            runtime_sigma=1.0,
            runtime_min=60.0,
            runtime_max=2 * HOUR,
            walltime_pad=2.0,
            failure_prob=0.1,
        )


def test_spec_user_counts_scale_and_floor():
    spec = PopulationSpec(scale=0.01)
    counts = spec.user_counts()
    for modality in MODALITY_ORDER:
        assert counts[modality] >= 1
    assert counts[Modality.BATCH] == round(BASE_USER_COUNTS[Modality.BATCH] * 0.01)


def test_spec_explicit_counts_override():
    spec = PopulationSpec(counts={Modality.BATCH: 3})
    counts = spec.user_counts()
    assert counts[Modality.BATCH] == 3
    assert counts[Modality.GATEWAY] == 0


def test_spec_scale_validation():
    with pytest.raises(ValueError):
        PopulationSpec(scale=0.0).user_counts()


def make_providers():
    sim = Simulator()
    ledger = I.AllocationLedger()
    central = I.CentralAccountingDB()
    providers = [
        I.ResourceProvider(
            sim, I.Cluster(name, nodes=nodes, cores_per_node=8), ledger, central
        )
        for name, nodes in [("big", 64), ("small", 8)]
    ]
    return providers, ledger


def test_build_population_accounts_and_ground_truth():
    providers, ledger = make_providers()
    spec = PopulationSpec(scale=0.02, n_gateways=2)
    population = build_population(
        spec, np.random.default_rng(3), providers, ledger
    )
    counts = population.true_user_counts()
    assert counts == spec.user_counts()
    # Non-gateway users have personal accounts; gateway users do not.
    for user in population.users:
        if user.modality is Modality.GATEWAY:
            assert user.gateway in population.gateway_names
            assert user.account.startswith("TG-COMM-")
            assert ":" in user.identity
        else:
            assert user.gateway is None
            allocation = ledger.get(user.account)
            assert user.user_id in allocation.users
            expected_kind = (
                AllocationType.STARTUP
                if user.modality is Modality.EXPLORATORY
                else AllocationType.RESEARCH
            )
            assert allocation.kind is expected_kind
    # Community accounts exist with the gateway community user on them.
    for gateway, (community_user, account) in population.community_accounts.items():
        allocation = ledger.get(account)
        assert allocation.kind is AllocationType.COMMUNITY
        assert community_user in allocation.users


def test_build_population_home_sites_weighted_by_size():
    providers, ledger = make_providers()
    spec = PopulationSpec(scale=0.5, n_gateways=1)
    population = build_population(
        spec, np.random.default_rng(5), providers, ledger
    )
    big = sum(1 for u in population.users if u.home_site == "big")
    small = sum(1 for u in population.users if u.home_site == "small")
    assert big > 3 * small  # 8x the cores -> strongly preferred


def test_truth_by_identity_unique():
    providers, ledger = make_providers()
    population = build_population(
        PopulationSpec(scale=0.05), np.random.default_rng(1), providers, ledger
    )
    truth = population.truth_by_identity
    assert len(truth) == len(population)


def test_build_population_validation():
    providers, ledger = make_providers()
    with pytest.raises(ValueError):
        build_population(PopulationSpec(), np.random.default_rng(0), [], ledger)
    with pytest.raises(ValueError):
        build_population(
            PopulationSpec(n_gateways=0), np.random.default_rng(0), providers, ledger
        )
