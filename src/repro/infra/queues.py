"""Named batch queues and routing.

TeraGrid sites partitioned their schedulers into queues — ``normal``,
``long``, ``wide`` (capability), ``interactive`` — each with walltime/size
limits and a priority treatment.  The queue a job lands in is recorded in
accounting (it is one of the structural signals the measurement system can
use: the viz modality is detectable through the interactive queue even
without the proposed attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.units import DAY, HOUR

__all__ = ["QueueSpec", "QueueSet", "default_queues"]


@dataclass(frozen=True)
class QueueSpec:
    """One named queue: admission limits and a priority treatment."""

    name: str
    max_walltime: float
    max_cores: int
    priority_boost: float = 0.0

    def admits(self, job: Job) -> bool:
        return job.walltime <= self.max_walltime and job.cores <= self.max_cores

    def __post_init__(self) -> None:
        if self.max_walltime <= 0 or self.max_cores < 1:
            raise ValueError(f"invalid limits for queue {self.name!r}")


class QueueSet:
    """A site's queues plus the routing rule.

    Routing is by declaration order: the first queue that admits the job
    wins, with interactive jobs steered to the interactive queue when one
    exists.  A job no queue admits is rejected at submission — exactly what
    ``qsub`` would do.
    """

    def __init__(self, queues: list[QueueSpec]) -> None:
        if not queues:
            raise ValueError("a queue set needs at least one queue")
        names = [q.name for q in queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names in {names}")
        self.queues = list(queues)
        self._by_name = {q.name: q for q in queues}

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> QueueSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no queue named {name!r}") from None

    def route(self, job: Job) -> QueueSpec:
        """The queue this job runs in; raises ValueError if none admits it."""
        if job.is_interactive and "interactive" in self._by_name:
            interactive = self._by_name["interactive"]
            if interactive.admits(job):
                return interactive
        for queue in self.queues:
            if queue.name == "interactive":
                continue  # never route batch work to the interactive queue
            if queue.admits(job):
                return queue
        raise ValueError(
            f"no queue admits job {job.job_id} "
            f"({job.cores} cores, {job.walltime / HOUR:.1f}h walltime)"
        )


def default_queues(cluster: Cluster) -> QueueSet:
    """The canonical TG-site queue structure, scaled to the machine.

    * ``interactive`` — short, small, strongly boosted;
    * ``normal`` — up to a day, up to half the machine;
    * ``wide`` — bigger than half the machine (capability work), modest boost
      (sites wanted big jobs to move);
    * ``long`` — up to a week for jobs that cannot checkpoint, no boost.
    """
    half = max(cluster.total_cores // 2, 1)
    return QueueSet(
        [
            QueueSpec(
                name="interactive",
                max_walltime=12 * HOUR,
                max_cores=max(cluster.cores_per_node * 4, 1),
                priority_boost=100.0,
            ),
            QueueSpec(
                name="normal",
                max_walltime=24 * HOUR,
                max_cores=half,
            ),
            QueueSpec(
                name="wide",
                max_walltime=24 * HOUR,
                max_cores=cluster.total_cores,
                priority_boost=10.0,
            ),
            QueueSpec(
                name="long",
                max_walltime=7 * DAY,
                max_cores=half,
            ),
            # Big *and* long: the by-request queue every site kept around.
            QueueSpec(
                name="special",
                max_walltime=7 * DAY,
                max_cores=cluster.total_cores,
            ),
        ]
    )
